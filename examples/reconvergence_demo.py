"""Dynamic reconvergence prediction vs compiler postdominators.

Trains the Collins-style reconvergence predictor on a workload's
retirement stream, compares its learned reconvergence points against
the compiler's immediate postdominators, and then measures the
Figure 12 experiment on that workload: spawning from predicted
reconvergence points vs compiler-generated ipdoms.

Run with::

    python examples/reconvergence_demo.py
    python examples/reconvergence_demo.py --workload twolf
"""

import argparse

from repro.experiments import ExperimentRunner, REC_PRED_SPEC
from repro.reconvergence import resolve_reconvergence_targets
from repro.workloads import WORKLOAD_NAMES


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=WORKLOAD_NAMES, default="crafty")
    parser.add_argument("--scale", type=float, default=0.5)
    arguments = parser.parse_args(argv)

    runner = ExperimentRunner(scale=arguments.scale)
    prepared = runner.workload(arguments.workload)

    _, _, predictor = resolve_reconvergence_targets(prepared.trace, runner.config)

    ipdoms = {
        point.trigger_pc: point.spawn_pc
        for point in prepared.spawn_analysis.postdominator_points
    }
    print("{}: {} branches observed, {} trained".format(
        arguments.workload, predictor.branch_count(), predictor.trained_branches))
    print("agreement with compiler ipdoms (trained branches): {:.0%}".format(
        predictor.accuracy_against(ipdoms)))
    print()
    print("branch        predicted     compiler ipdom")
    for trigger_pc in sorted(ipdoms):
        predicted = predictor.predict(trigger_pc)
        marker = ""
        if predicted is None:
            shown = "(not learned)"
        else:
            shown = "{:#x}".format(predicted)
            marker = "  <- match" if predicted == ipdoms[trigger_pc] else "  <- differs"
        print("{:#12x}  {:>13s}  {:#14x}{}".format(
            trigger_pc, shown, ipdoms[trigger_pc], marker))
    print()

    rec_pred = runner.speedup(arguments.workload, REC_PRED_SPEC)
    postdoms = runner.speedup(arguments.workload, "postdoms")
    print("speedup over superscalar:  rec_pred {:+.1f}%   postdoms {:+.1f}%".format(
        rec_pred, postdoms))
    print("(Figure 12: the dynamic predictor approaches, but does not quite")
    print(" match, compiler-generated immediate postdominator information.)")


if __name__ == "__main__":
    main()
