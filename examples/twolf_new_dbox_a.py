"""Section 2.3 walkthrough: loop spawns from postdominators in twolf.

Reproduces the analysis of the paper's Figure 6 (the ``new_dbox_a``
loop nest): prints the kernel's spawn points by category, then shows
that loop fall-through and hammock spawning perform similarly to, or
better than, loop-iteration spawning — the section's conclusion.

Run with::

    python examples/twolf_new_dbox_a.py
"""

from collections import Counter

from repro.polyflow import PAPER_CONFIG, PolyFlowCore, simulate_superscalar, speedup_percent
from repro.spawn import profile_spawn_points
from repro.workloads import prepare_workload

POLICIES = ("loop", "loopFT", "hammock", "loop+loopFT", "postdoms")


def main():
    prepared = prepare_workload("twolf", scale=0.5)
    analysis = prepared.spawn_analysis

    print("twolf (new_dbox_a-style loop nest): {} dynamic instructions".format(
        len(prepared.trace)))
    print()
    print("Spawn points by category (cf. Figure 6's annotations):")
    for point in analysis.postdominator_points:
        print("  {:#x} -> {:#x}  [{}]".format(
            point.trigger_pc, point.spawn_pc, point.category))
    print("Loop-iteration spawn points (header -> latch, Section 2.3):")
    for point in analysis.loop_points:
        print("  {:#x} -> {:#x}  [loop]".format(point.trigger_pc, point.spawn_pc))
    print()

    baseline = simulate_superscalar(prepared.trace)
    print("Superscalar baseline: IPC {:.2f}".format(baseline.ipc))
    print()
    print("{:14s} {:>9s} {:>8s} {:>14s}".format(
        "policy", "speedup", "spawns", "by category"))
    profile = profile_spawn_points(
        prepared.trace,
        list(analysis.postdominator_points) + list(analysis.loop_points),
    )
    for spec in POLICIES:
        policy = analysis.policy(spec)
        hints = profile.hint_table(policy)
        stats = PolyFlowCore(prepared.trace, PAPER_CONFIG, hints).run()
        categories = Counter(
            {str(category): count for category, count in stats.spawns_by_category.items()}
        )
        print("{:14s} {:+8.1f}% {:8d}   {}".format(
            spec,
            speedup_percent(stats, baseline),
            stats.total_spawns,
            dict(categories),
        ))
    print()
    print("Section 2.3: \"loop fall-through spawns and hammock spawns perform")
    print("similarly, or better than, loop spawns on twolf.\"")


if __name__ == "__main__":
    main()
