"""Quickstart: the paper's running example (Figures 1-4), end to end.

Builds the loop-with-hammock control flow graph of Figure 1, computes
its postdominator tree (Figure 2) and control dependence graph
(Figure 3), classifies the control-equivalent spawn points, and then
runs the PolyFlow timing model against the superscalar baseline to show
control-equivalent spawning in action (Figure 4's fetch choices).

Run with::

    python examples/quickstart.py
"""

from repro.analysis import compute_control_dependence, compute_postdominator_tree
from repro.cfg import build_program_cfgs, cfg_to_dot
from repro.isa import assemble
from repro.polyflow import MachineConfig, simulate, simulate_superscalar, speedup_percent
from repro.sim import run_program
from repro.spawn import SpawnAnalysis, profile_spawn_points

# The flow graph of Figure 1: a loop containing an if-then-else.  Block
# A falls through to B; B branches to C or D; both join at E; E falls
# through to F, which loops back to A or exits.  The branch data is
# random, so B's branch is hard to predict.
SOURCE = """
    block_a:
        lw   r2, 0(r9)       # A: load this iteration's condition
        addi r9, r9, 8
    block_b:
        bne  r2, r0, block_d # B: the hammock branch
    block_c:
        addi r3, r3, 1       # C: then-arm work
        slli r5, r3, 1
        xor  r3, r3, r5
        add  r6, r6, r5
        or   r7, r7, r5
        and  r8, r8, r5
        xor  r6, r6, r3
        add  r7, r7, r3
        j    block_e
    block_d:
        addi r3, r3, 3       # D: else-arm work
        srli r5, r3, 1
        or   r3, r3, r5
        sub  r6, r6, r5
        xor  r7, r7, r5
        or   r8, r8, r5
        add  r6, r6, r3
        xor  r7, r7, r3
    block_e:
        add  r4, r4, r3      # E: the join (ipdom of B)
    block_f:
        addi r10, r10, -1    # F: the loop branch
        bne  r10, r0, block_a
        halt
"""

HEADER = """
    .text
    main:
        la   r9, bits
        li   r10, 400
"""

DATA = """
    .data
    bits: .word {}
"""


def main():
    import random

    rng = random.Random(7)
    bits = ", ".join(str(rng.randrange(2)) for _ in range(512))
    program = assemble(HEADER + SOURCE + DATA.format(bits))

    # --- static analysis: Figures 1-3 -------------------------------------
    trace = run_program(program)
    cfgs = build_program_cfgs(program)
    cfg = cfgs.cfg_of_entry(program.entry_point)
    print("Control flow graph (Figure 1), as DOT:")
    print(cfg_to_dot(cfg))
    print()

    pdom = compute_postdominator_tree(cfg)
    print("Immediate postdominators (Figure 2: parent = ipdom):")
    for block in cfg.blocks:
        parent = pdom.parent_or_none(block.index)
        label = "EXIT" if parent is None or cfg.is_exit(parent) else "B{}".format(parent)
        print("  B{} @{:#x} -> {}".format(block.index, block.start_pc, label))
    print()

    cdg = compute_control_dependence(cfg, pdom)
    print("Control dependences (Figure 3):")
    for block in cfg.blocks:
        controllers = sorted(cdg.controllers_of(block.index))
        if controllers:
            print("  B{} depends on branches in {}".format(
                block.index, ", ".join("B{}".format(c) for c in controllers)))
    print()

    # --- spawn points -------------------------------------------------------
    analysis = SpawnAnalysis(cfgs)
    print("Control-equivalent spawn points:")
    for point in analysis.postdominator_points:
        print("  {:#x} -> {:#x}  [{}]".format(point.trigger_pc, point.spawn_pc, point.category))
    print()

    # --- timing: control-equivalent spawning vs superscalar ----------------
    config = MachineConfig(min_spawn_distance=2)
    policy = analysis.policy("postdoms")
    profile = profile_spawn_points(trace, policy.points)
    hints = profile.hint_table(policy, min_loop_task_size=4)
    baseline = simulate_superscalar(trace)
    polyflow = simulate(trace, config, hints)
    print("Superscalar: {} cycles (IPC {:.2f})".format(baseline.cycles, baseline.ipc))
    print("PolyFlow:    {} cycles (IPC {:.2f}), {} spawns, {:.1f} mean tasks".format(
        polyflow.cycles, polyflow.ipc, polyflow.total_spawns, polyflow.mean_active_tasks))
    print("Speedup from control-equivalent spawning: {:+.1f}%".format(
        speedup_percent(polyflow, baseline)))
    print()

    # --- Figure 4: a dynamic fetch ordering ---------------------------------
    from repro.polyflow import TimelineTracer

    tracer = TimelineTracer(trace, config, hints)
    tracer.run()
    print("A dynamic fetch ordering (Figure 4): rows are tasks, oldest first;")
    print("each letter is a fetched static instruction, '.' is an idle bucket.")
    print(tracer.render_timeline(start_cycle=40, end_cycle=140, bucket=2))


if __name__ == "__main__":
    main()
