"""Multi-client smoke test of the exploration service, end to end.

Spawns the real ``python -m repro.experiments serve`` subprocess on an
ephemeral port, then drives it the way a fleet of exploration clients
would:

1. a follower thread tails ``GET /events`` for the whole run;
2. a concurrent wave of clients submits overlapping queries (SPEC
   workloads plus a ``synth/`` scenario, so both the pooled and the
   inline path run);
3. every returned cell is diffed **byte-for-byte** against an
   in-process serial :class:`ExperimentRunner` — the service's central
   invariant;
4. a repeat wave must be answered entirely from the hot memo, with no
   new simulations;
5. ``SIGTERM`` drains the service: exit code 0, the event stream ends
   with ``service_stopped``, and the mirrored JSONL log is intact.

CI runs this against a source checkout::

    PYTHONPATH=src python examples/service_smoke.py [events.jsonl]

Exit status 0 means every check passed.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.experiments.runner import ExperimentRunner
from repro.service import ServiceClient, canonical_json, encode_stats, wire

SCALE = 0.1

#: Overlapping client query sets: three unique cells, seven answers.
WAVE = [
    [("gzip", "postdoms"), ("twolf", "postdoms")],
    [("twolf", "postdoms"), ("synth/L1H1C0I0P0S0V0", "postdoms")],
    [("gzip", "postdoms"), ("twolf", "postdoms"), ("synth/L1H1C0I0P0S0V0", "postdoms")],
]
UNIQUE_CELLS = sorted({cell for cells in WAVE for cell in cells})


def check(condition, message):
    if not condition:
        raise SystemExit("FAIL: {}".format(message))
    print("ok: {}".format(message))


def start_service(events_log):
    command = [
        sys.executable,
        "-m",
        "repro.experiments",
        "serve",
        "--port",
        "0",
        "--scale",
        str(SCALE),
        "--jobs",
        "2",
        "--window-ms",
        "50",
        "--cache-dir",
        os.path.join(os.path.dirname(events_log) or ".", "service-cache"),
        "--events-log",
        events_log,
    ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ),
    )
    banner = process.stdout.readline()
    endpoint = json.loads(banner)["serving"]
    return process, endpoint


def main():
    events_log = sys.argv[1] if len(sys.argv) > 1 else "service-events.jsonl"
    process, endpoint = start_service(events_log)
    client = ServiceClient(endpoint["host"], endpoint["port"])
    client.wait_ready(timeout=60)

    # 1. Tail /events for the whole run; ends when the service drains.
    streamed = []
    follower = threading.Thread(
        target=lambda: streamed.extend(client.events(follow=True, timeout=600)),
        daemon=True,
    )
    follower.start()

    try:
        # 2. The concurrent wave (mixed pooled + inline cells).
        with ThreadPoolExecutor(max_workers=len(WAVE)) as pool:
            responses = list(
                pool.map(lambda cells: client.query(cells, scale=SCALE), WAVE)
            )

        # 3. Byte-identity against the in-process serial runner.
        serial = ExperimentRunner(scale=SCALE)
        for cells, response in zip(WAVE, responses):
            for (name, spec), result in zip(cells, response["results"]):
                truth = canonical_json(encode_stats(serial.run_policy(name, spec)))
                check(
                    canonical_json(result["stats"]) == truth,
                    "{}:{} byte-identical to serial".format(name, spec),
                )

        health = client.healthz()
        summary = health["engine"]["summary"]
        check(
            summary["jobs_run"] == len(UNIQUE_CELLS),
            "overlapping queries simulated each unique cell exactly once "
            "({} sims for {} answers)".format(
                summary["jobs_run"], sum(len(c) for c in WAVE)
            ),
        )
        check(
            health["engine"]["cells"]["by_source"]["error"] == 0,
            "no cell errored",
        )
        check(
            health["engine"]["incidents"]
            == {"corrupt_cache_entries": 0, "pool_restarts": 0},
            "no incidents recorded",
        )

        # 4. The repeat wave is answered from the hot memo.
        repeat = client.query(UNIQUE_CELLS, scale=SCALE)
        check(
            all(r["source"] == wire.SOURCE_MEMO for r in repeat["results"]),
            "repeat wave served entirely from memo",
        )
        check(
            client.healthz()["engine"]["summary"]["jobs_run"]
            == len(UNIQUE_CELLS),
            "repeat wave ran zero new simulations",
        )
    except BaseException:
        process.terminate()
        raise

    # 5. SIGTERM drains cleanly.
    process.send_signal(signal.SIGTERM)
    stdout, stderr = process.communicate(timeout=120)
    check(process.returncode == 0, "SIGTERM drain exited 0")
    check("service drained" in stderr, "drain summary printed to stderr")
    follower.join(timeout=60)
    check(not follower.is_alive(), "event stream ended at drain")
    kinds = [event["kind"] for event in streamed]
    for kind in ("query_admitted", "batch_start", "batch_done", "service_stopped"):
        check(kind in kinds, "event stream saw {}".format(kind))

    deadline = time.monotonic() + 10
    while not os.path.exists(events_log) and time.monotonic() < deadline:
        time.sleep(0.1)
    with open(events_log, "r", encoding="utf-8") as handle:
        logged = [json.loads(line) for line in handle if line.strip()]
    check(
        [event["kind"] for event in logged] == kinds
        or len(logged) >= len(kinds),
        "events JSONL mirror is intact ({} events)".format(len(logged)),
    )
    print("service smoke: all checks passed")


if __name__ == "__main__":
    main()
