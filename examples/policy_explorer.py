"""Explore any workload under any spawn policy.

A small command-line tool over the public API: build a workload, run
the superscalar baseline and a set of spawn policies, and print the
machine statistics that explain the speedups (spawn counts by category,
violation squashes, diverted instructions, mean active tasks).

Run with::

    python examples/policy_explorer.py mcf
    python examples/policy_explorer.py twolf --policies loop hammock postdoms
    python examples/policy_explorer.py vortex --scale 0.25 --jobs 4
"""

import argparse

from repro.experiments import (
    REC_PRED_SPEC,
    SUPERSCALAR_SPEC,
    ParallelExperimentRunner,
)
from repro.workloads import WORKLOAD_NAMES

DEFAULT_POLICIES = ("loop", "loopFT", "procFT", "hammock", "other", "postdoms", REC_PRED_SPEC)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", choices=WORKLOAD_NAMES)
    parser.add_argument("--policies", nargs="+", default=list(DEFAULT_POLICIES))
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--limits",
        action="store_true",
        help="also print the Lam-Wilson-style ILP limit study",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the policy runs (default 1 = serial)",
    )
    arguments = parser.parse_args(argv)

    runner = ParallelExperimentRunner(scale=arguments.scale, jobs=arguments.jobs)
    name = arguments.workload
    prepared = runner.workload(name)
    runner.prefetch(
        [(name, SUPERSCALAR_SPEC)]
        + [(name, spec) for spec in arguments.policies]
    )
    baseline = runner.baseline(name)

    print("{}: {} dynamic instructions, {} procedures".format(
        name, len(prepared.trace), len(prepared.cfgs)))
    print("superscalar baseline: {} cycles, IPC {:.2f}, "
          "{:.1%} branch mispredict rate".format(
              baseline.cycles, baseline.ipc, baseline.branch_mispredict_rate))
    print()
    header = "{:16s} {:>8s} {:>7s} {:>7s} {:>8s} {:>8s} {:>6s}".format(
        "policy", "speedup", "spawns", "squash", "diverted", "icstall", "tasks")
    print(header)
    print("-" * len(header))
    for spec in arguments.policies:
        stats = runner.run_policy(name, spec)
        print("{:16s} {:+7.1f}% {:7d} {:7d} {:8d} {:8d} {:6.2f}".format(
            spec,
            runner.speedup(name, spec),
            stats.total_spawns,
            stats.violation_squashes,
            stats.diverted_instructions,
            stats.icache_stall_cycles,
            stats.mean_active_tasks,
        ))

    if arguments.limits:
        from repro.sim import limit_study_for_workload

        result = limit_study_for_workload(prepared)
        print()
        print("ILP limit study (unit latency, unbounded resources):")
        print("  dataflow only:          {:6.1f}".format(result.dataflow))
        print("  single flow (gshare):   {:6.1f}".format(result.single_flow))
        print("  control independence:   {:6.1f}  ({:.2f}x the single flow)".format(
            result.control_independence, result.control_independence_gain))


if __name__ == "__main__":
    main()
