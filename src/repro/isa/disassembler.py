"""Render decoded instructions back to assembly text."""

from repro.isa.instructions import (
    ALU_RRI_OPCODES,
    ALU_RRR_OPCODES,
    LOAD_OPCODES,
    STORE_OPCODES,
    Opcode,
    format_register,
)

_MNEMONICS = {
    Opcode.ADD: "add",
    Opcode.SUB: "sub",
    Opcode.MUL: "mul",
    Opcode.AND: "and",
    Opcode.OR: "or",
    Opcode.XOR: "xor",
    Opcode.SLT: "slt",
    Opcode.SLL: "sll",
    Opcode.SRL: "srl",
    Opcode.ADDI: "addi",
    Opcode.ANDI: "andi",
    Opcode.ORI: "ori",
    Opcode.XORI: "xori",
    Opcode.SLTI: "slti",
    Opcode.SLLI: "slli",
    Opcode.SRLI: "srli",
    Opcode.LUI: "lui",
    Opcode.LW: "lw",
    Opcode.LH: "lh",
    Opcode.LB: "lb",
    Opcode.SW: "sw",
    Opcode.SH: "sh",
    Opcode.SB: "sb",
    Opcode.BEQ: "beq",
    Opcode.BNE: "bne",
    Opcode.BGEZ: "bgez",
    Opcode.BGTZ: "bgtz",
    Opcode.BLEZ: "blez",
    Opcode.BLTZ: "bltz",
    Opcode.J: "j",
    Opcode.JAL: "jal",
    Opcode.JR: "jr",
    Opcode.JALR: "jalr",
    Opcode.NOP: "nop",
    Opcode.HALT: "halt",
}


def disassemble(instruction):
    """Render one :class:`~repro.isa.instructions.Instruction` as text.

    Branch and jump targets are rendered as absolute hex addresses.
    """
    opcode = instruction.opcode
    mnemonic = _MNEMONICS[opcode]
    if opcode in ALU_RRR_OPCODES:
        return "{} {}, {}, {}".format(
            mnemonic,
            format_register(instruction.rd),
            format_register(instruction.rs),
            format_register(instruction.rt),
        )
    if opcode in ALU_RRI_OPCODES:
        return "{} {}, {}, {}".format(
            mnemonic,
            format_register(instruction.rd),
            format_register(instruction.rs),
            instruction.imm,
        )
    if opcode == Opcode.LUI:
        return "lui {}, {}".format(format_register(instruction.rd), instruction.imm)
    if opcode in LOAD_OPCODES:
        return "{} {}, {}({})".format(
            mnemonic,
            format_register(instruction.rd),
            instruction.imm,
            format_register(instruction.rs),
        )
    if opcode in STORE_OPCODES:
        return "{} {}, {}({})".format(
            mnemonic,
            format_register(instruction.rt),
            instruction.imm,
            format_register(instruction.rs),
        )
    if opcode in (Opcode.BEQ, Opcode.BNE):
        return "{} {}, {}, {:#x}".format(
            mnemonic,
            format_register(instruction.rs),
            format_register(instruction.rt),
            instruction.target,
        )
    if opcode in (Opcode.BGEZ, Opcode.BGTZ, Opcode.BLEZ, Opcode.BLTZ):
        return "{} {}, {:#x}".format(
            mnemonic, format_register(instruction.rs), instruction.target
        )
    if opcode in (Opcode.J, Opcode.JAL):
        return "{} {:#x}".format(mnemonic, instruction.target)
    if opcode in (Opcode.JR, Opcode.JALR):
        return "{} {}".format(mnemonic, format_register(instruction.rs))
    return mnemonic  # NOP / HALT


def disassemble_program(program, start_pc=None, count=None):
    """Yield ``(pc, text)`` pairs for a program's instructions."""
    emitted = 0
    for instruction in program.instructions:
        if start_pc is not None and instruction.pc < start_pc:
            continue
        if count is not None and emitted >= count:
            return
        emitted += 1
        yield instruction.pc, disassemble(instruction)
