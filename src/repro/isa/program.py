"""Program container: assembled text, symbols, and initial memory image."""

from repro.errors import ExecutionError
from repro.isa.instructions import INSTRUCTION_BYTES

#: Default base address of the text segment.
TEXT_BASE = 0x9000

#: Default base address of the data segment.
DATA_BASE = 0x100000


class Program:
    """An assembled program.

    Attributes:
        instructions: List of :class:`~repro.isa.instructions.Instruction`
            in text order.
        symbols: Mapping from label name to absolute address (text labels
            map into the text segment, data labels into the data segment).
        data_image: Mapping from absolute byte address to initial byte
            value for the data segment.
        entry_point: PC of the first instruction to execute.
    """

    def __init__(self, instructions, symbols=None, data_image=None, entry_point=None):
        self.instructions = list(instructions)
        self.symbols = dict(symbols or {})
        self.data_image = dict(data_image or {})
        if not self.instructions:
            raise ExecutionError("a program must contain at least one instruction")
        self.text_base = self.instructions[0].pc
        self.entry_point = entry_point if entry_point is not None else self.text_base
        self._by_pc = {inst.pc: inst for inst in self.instructions}
        if len(self._by_pc) != len(self.instructions):
            raise ExecutionError("duplicate PCs in program text")
        # Memoized content key; the assembler seeds it with the source
        # digest so downstream caches never re-hash the source.
        self._content_digest = None

    def __len__(self):
        return len(self.instructions)

    def content_digest(self):
        """Memoized SHA-256 content key of this program.

        Seeded by the assembler with the digest of the assembly source
        (see :func:`repro.analysis.pipeline.source_digest`), so every
        content-keyed cache — analyses, results, compiled block
        tables — shares one hash computation per program.  A program
        built directly from instructions (tests, generators) computes
        a canonical rendering on first use instead.
        """
        digest = self._content_digest
        if digest is None:
            import hashlib

            hasher = hashlib.sha256()
            for instruction in self.instructions:
                hasher.update(repr(instruction).encode("utf-8"))
            hasher.update(repr(sorted(self.data_image.items())).encode("utf-8"))
            hasher.update(str(self.entry_point).encode("utf-8"))
            digest = hasher.hexdigest()
            self._content_digest = digest
        return digest

    def __iter__(self):
        return iter(self.instructions)

    def fetch(self, pc):
        """Return the instruction at ``pc``.

        Raises:
            ExecutionError: If ``pc`` does not address an instruction.
        """
        instruction = self._by_pc.get(pc)
        if instruction is None:
            raise ExecutionError("fetch from invalid PC {:#x}".format(pc))
        return instruction

    def contains_pc(self, pc):
        """Return whether ``pc`` addresses an instruction of this program."""
        return pc in self._by_pc

    def address_of(self, label):
        """Return the address bound to ``label``.

        Raises:
            KeyError: If the label is not defined.
        """
        return self.symbols[label]

    def label_at(self, address):
        """Return some label bound to ``address``, or ``None``."""
        for name, bound in self.symbols.items():
            if bound == address:
                return name
        return None

    def text_end(self):
        """Return the first address past the text segment."""
        return self.instructions[-1].pc + INSTRUCTION_BYTES

    def static_instruction_count(self):
        """Return the number of static instructions."""
        return len(self.instructions)
