"""A small two-pass assembler for the repro ISA.

The assembler accepts a conventional MIPS-flavoured syntax::

    .text
    main:
        li    r1, 100
        la    r2, table
    loop:
        lw    r3, 0(r2)
        addi  r2, r2, 8
        addi  r1, r1, -1
        bne   r1, r0, loop
        halt
    .data
    table: .word 1, 2, 3
    buffer: .space 64

Supported directives: ``.text``, ``.data``, ``.word`` (8-byte values),
``.byte``, ``.space N``.  Supported pseudo-instructions: ``li``, ``la``,
``move`` and ``nop``.  Comments start with ``#`` or ``;`` and commas
between operands are optional.
"""

import hashlib
import re

from repro.errors import AssemblyError
from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    NUM_REGISTERS,
    REGISTER_ALIASES,
    WORD_BYTES,
    Instruction,
    Opcode,
)
from repro.isa.program import DATA_BASE, TEXT_BASE, Program

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\(([\w$]+)\)$")

_BRANCH_ONE_SOURCE = {
    "bgez": Opcode.BGEZ,
    "bgtz": Opcode.BGTZ,
    "blez": Opcode.BLEZ,
    "bltz": Opcode.BLTZ,
}

_MNEMONICS_RRR = {
    "add": Opcode.ADD,
    "addu": Opcode.ADD,
    "daddu": Opcode.ADD,
    "sub": Opcode.SUB,
    "subu": Opcode.SUB,
    "mul": Opcode.MUL,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "slt": Opcode.SLT,
    "sll": Opcode.SLL,
    "srl": Opcode.SRL,
}

_MNEMONICS_RRI = {
    "addi": Opcode.ADDI,
    "addiu": Opcode.ADDI,
    "andi": Opcode.ANDI,
    "ori": Opcode.ORI,
    "xori": Opcode.XORI,
    "slti": Opcode.SLTI,
    "slli": Opcode.SLLI,
    "srli": Opcode.SRLI,
}

_MNEMONICS_LOAD = {"lw": Opcode.LW, "lh": Opcode.LH, "lb": Opcode.LB}
_MNEMONICS_STORE = {"sw": Opcode.SW, "sh": Opcode.SH, "sb": Opcode.SB}


def parse_register(token, line_number=None):
    """Parse a register operand (``r0``..``r31`` or an alias)."""
    name = token.lower().lstrip("$")
    if name in REGISTER_ALIASES:
        return REGISTER_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < NUM_REGISTERS:
            return index
    raise AssemblyError("invalid register {!r}".format(token), line_number)


def _parse_integer(token, line_number=None):
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError("invalid integer {!r}".format(token), line_number)


class _Line:
    """A tokenized source line: optional labels plus one statement."""

    __slots__ = ("number", "labels", "mnemonic", "operands", "raw")

    def __init__(self, number, labels, mnemonic, operands, raw):
        self.number = number
        self.labels = labels
        self.mnemonic = mnemonic
        self.operands = operands
        self.raw = raw


def _tokenize(source):
    """Split assembly source into :class:`_Line` records."""
    lines = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not text:
            continue
        labels = []
        while True:
            head, colon, rest = text.partition(":")
            if not colon or " " in head or "\t" in head:
                break
            if not _LABEL_RE.match(head):
                raise AssemblyError("invalid label {!r}".format(head), number)
            labels.append(head)
            text = rest.strip()
            if not text:
                break
        if not text:
            if labels:
                lines.append(_Line(number, labels, None, [], raw))
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [op for op in re.split(r"[,\s]+", operand_text.strip()) if op]
        lines.append(_Line(number, labels, mnemonic, operands, raw))
    return lines


class Assembler:
    """Two-pass assembler producing a :class:`~repro.isa.program.Program`."""

    def __init__(self, text_base=TEXT_BASE, data_base=DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source, entry_label=None):
        """Assemble ``source`` text into a :class:`Program`.

        Args:
            source: Assembly source text.
            entry_label: Optional label to use as the entry point; defaults
                to the first text instruction.

        Raises:
            AssemblyError: On any syntax or semantic error.
        """
        lines = _tokenize(source)
        symbols = self._first_pass(lines)
        instructions, data_image = self._second_pass(lines, symbols)
        if not instructions:
            raise AssemblyError("program has no text segment")
        entry_point = None
        if entry_label is not None:
            if entry_label not in symbols:
                raise AssemblyError("entry label {!r} is undefined".format(entry_label))
            entry_point = symbols[entry_label]
        program = Program(instructions, symbols, data_image, entry_point)
        # Seed the program's memoized content key: the source plus the
        # assembly parameters fully determine the program, and every
        # content-keyed cache downstream reuses this one hash.
        hasher = hashlib.sha256(source.encode("utf-8"))
        hasher.update(
            "|{}|{}|{}".format(
                self.text_base, self.data_base, entry_point
            ).encode("utf-8")
        )
        program._content_digest = hasher.hexdigest()
        return program

    def _statement_size(self, line):
        """Return (segment_advance, is_text) for a statement in pass one."""
        mnemonic = line.mnemonic
        if mnemonic == ".word":
            return WORD_BYTES * max(len(line.operands), 1), False
        if mnemonic == ".byte":
            return max(len(line.operands), 1), False
        if mnemonic == ".space":
            return _parse_integer(line.operands[0], line.number), False
        return INSTRUCTION_BYTES, True

    def _first_pass(self, lines):
        symbols = {}
        text_cursor = self.text_base
        data_cursor = self.data_base
        in_data = False
        for line in lines:
            cursor = data_cursor if in_data else text_cursor
            for label in line.labels:
                if label in symbols:
                    raise AssemblyError("duplicate label {!r}".format(label), line.number)
                symbols[label] = cursor
            if line.mnemonic is None:
                continue
            if line.mnemonic == ".text":
                in_data = False
                continue
            if line.mnemonic == ".data":
                in_data = True
                continue
            size, is_text = self._statement_size(line)
            if is_text and in_data:
                raise AssemblyError("instruction in .data segment", line.number)
            if not is_text and not in_data:
                raise AssemblyError("data directive in .text segment", line.number)
            if in_data:
                data_cursor += size
            else:
                text_cursor += size
        return symbols

    def _second_pass(self, lines, symbols):
        instructions = []
        data_image = {}
        pc = self.text_base
        data_cursor = self.data_base
        in_data = False
        for line in lines:
            if line.mnemonic is None:
                continue
            if line.mnemonic == ".text":
                in_data = False
                continue
            if line.mnemonic == ".data":
                in_data = True
                continue
            if in_data:
                data_cursor = self._emit_data(line, symbols, data_image, data_cursor)
            else:
                for instruction in self._emit_instruction(line, pc, symbols):
                    instructions.append(instruction)
                    pc += INSTRUCTION_BYTES
        return instructions, data_image

    def _emit_data(self, line, symbols, image, cursor):
        if line.mnemonic == ".word":
            for token in line.operands:
                value = self._resolve_value(token, symbols, line.number)
                for offset in range(WORD_BYTES):
                    image[cursor + offset] = (value >> (8 * offset)) & 0xFF
                cursor += WORD_BYTES
            return cursor
        if line.mnemonic == ".byte":
            for token in line.operands:
                image[cursor] = self._resolve_value(token, symbols, line.number) & 0xFF
                cursor += 1
            return cursor
        if line.mnemonic == ".space":
            # Reserve addresses without materializing zero bytes: the
            # functional simulator reads absent bytes as zero, and large
            # sparse arenas (megabytes) stay cheap.
            size = _parse_integer(line.operands[0], line.number)
            return cursor + size
        raise AssemblyError("unknown directive {!r}".format(line.mnemonic), line.number)

    def _resolve_value(self, token, symbols, line_number):
        if token in symbols:
            return symbols[token]
        return _parse_integer(token, line_number)

    def _resolve_target(self, token, symbols, line_number):
        if token in symbols:
            return symbols[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblyError("undefined label {!r}".format(token), line_number)

    def _expect_operands(self, line, count):
        if len(line.operands) != count:
            raise AssemblyError(
                "{} expects {} operands, got {}".format(
                    line.mnemonic, count, len(line.operands)
                ),
                line.number,
            )

    def _emit_instruction(self, line, pc, symbols):
        mnemonic = line.mnemonic
        operands = line.operands
        number = line.number
        text = line.raw.strip()

        if mnemonic in _MNEMONICS_RRR:
            self._expect_operands(line, 3)
            rd = parse_register(operands[0], number)
            rs = parse_register(operands[1], number)
            rt = parse_register(operands[2], number)
            return [Instruction(pc, _MNEMONICS_RRR[mnemonic], rd=rd, rs=rs, rt=rt, text=text)]

        if mnemonic in _MNEMONICS_RRI:
            self._expect_operands(line, 3)
            rd = parse_register(operands[0], number)
            rs = parse_register(operands[1], number)
            imm = self._resolve_value(operands[2], symbols, number)
            return [Instruction(pc, _MNEMONICS_RRI[mnemonic], rd=rd, rs=rs, imm=imm, text=text)]

        if mnemonic == "lui":
            self._expect_operands(line, 2)
            rd = parse_register(operands[0], number)
            imm = self._resolve_value(operands[1], symbols, number)
            return [Instruction(pc, Opcode.LUI, rd=rd, imm=imm, text=text)]

        if mnemonic in ("li", "la"):
            self._expect_operands(line, 2)
            rd = parse_register(operands[0], number)
            imm = self._resolve_value(operands[1], symbols, number)
            return [Instruction(pc, Opcode.ADDI, rd=rd, rs=0, imm=imm, text=text)]

        if mnemonic == "move":
            self._expect_operands(line, 2)
            rd = parse_register(operands[0], number)
            rs = parse_register(operands[1], number)
            return [Instruction(pc, Opcode.ADD, rd=rd, rs=rs, rt=0, text=text)]

        if mnemonic in _MNEMONICS_LOAD:
            self._expect_operands(line, 2)
            rd = parse_register(operands[0], number)
            imm, rs = self._parse_mem_operand(operands[1], symbols, number)
            return [Instruction(pc, _MNEMONICS_LOAD[mnemonic], rd=rd, rs=rs, imm=imm, text=text)]

        if mnemonic in _MNEMONICS_STORE:
            self._expect_operands(line, 2)
            rt = parse_register(operands[0], number)
            imm, rs = self._parse_mem_operand(operands[1], symbols, number)
            return [Instruction(pc, _MNEMONICS_STORE[mnemonic], rs=rs, rt=rt, imm=imm, text=text)]

        if mnemonic in ("beq", "bne"):
            self._expect_operands(line, 3)
            opcode = Opcode.BEQ if mnemonic == "beq" else Opcode.BNE
            rs = parse_register(operands[0], number)
            rt = parse_register(operands[1], number)
            target = self._resolve_target(operands[2], symbols, number)
            return [Instruction(pc, opcode, rs=rs, rt=rt, target=target, text=text)]

        if mnemonic in _BRANCH_ONE_SOURCE:
            self._expect_operands(line, 2)
            rs = parse_register(operands[0], number)
            target = self._resolve_target(operands[1], symbols, number)
            return [
                Instruction(pc, _BRANCH_ONE_SOURCE[mnemonic], rs=rs, target=target, text=text)
            ]

        if mnemonic in ("j", "jal"):
            self._expect_operands(line, 1)
            opcode = Opcode.J if mnemonic == "j" else Opcode.JAL
            target = self._resolve_target(operands[0], symbols, number)
            rd = REGISTER_ALIASES["ra"] if opcode == Opcode.JAL else None
            return [Instruction(pc, opcode, rd=rd, target=target, text=text)]

        if mnemonic in ("jr", "jalr"):
            self._expect_operands(line, 1)
            opcode = Opcode.JR if mnemonic == "jr" else Opcode.JALR
            rs = parse_register(operands[0], number)
            rd = REGISTER_ALIASES["ra"] if opcode == Opcode.JALR else None
            return [Instruction(pc, opcode, rd=rd, rs=rs, text=text)]

        if mnemonic == "nop":
            return [Instruction(pc, Opcode.NOP, text=text)]

        if mnemonic == "halt":
            return [Instruction(pc, Opcode.HALT, text=text)]

        raise AssemblyError("unknown mnemonic {!r}".format(mnemonic), number)

    def _parse_mem_operand(self, token, symbols, line_number):
        match = _MEM_OPERAND_RE.match(token)
        if not match:
            raise AssemblyError(
                "invalid memory operand {!r}; expected off(reg)".format(token), line_number
            )
        displacement_token, base_token = match.groups()
        displacement = self._resolve_value(displacement_token, symbols, line_number)
        base = parse_register(base_token, line_number)
        return displacement, base


def assemble(source, entry_label=None, text_base=TEXT_BASE, data_base=DATA_BASE):
    """Convenience wrapper: assemble ``source`` with default bases."""
    return Assembler(text_base=text_base, data_base=data_base).assemble(source, entry_label)
