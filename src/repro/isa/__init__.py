"""MIPS-like 64-bit instruction set: opcodes, assembler, and programs."""

from repro.isa.assembler import Assembler, assemble, parse_register
from repro.isa.disassembler import disassemble, disassemble_program
from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    NUM_REGISTERS,
    WORD_BYTES,
    Instruction,
    Opcode,
    format_register,
)
from repro.isa.program import DATA_BASE, TEXT_BASE, Program

__all__ = [
    "Assembler",
    "assemble",
    "parse_register",
    "disassemble",
    "disassemble_program",
    "Instruction",
    "Opcode",
    "Program",
    "format_register",
    "INSTRUCTION_BYTES",
    "NUM_REGISTERS",
    "WORD_BYTES",
    "TEXT_BASE",
    "DATA_BASE",
]
