"""Instruction set definition for the repro MIPS-like 64-bit ISA.

The paper evaluates PolyFlow on a variant of the 64-bit MIPS ISA.  This
module defines a compact MIPS-flavoured instruction set that is rich
enough to express the control-flow idioms the paper's evaluation depends
on (conditional hammocks, nested loops, procedure calls, indirect jumps)
while staying small enough to simulate quickly.

Instructions are fixed-width: every instruction occupies
:data:`INSTRUCTION_BYTES` bytes of the text segment, and branch targets
are absolute PCs resolved at assembly time.
"""

import enum

#: Size of one instruction in the text segment, in bytes.
INSTRUCTION_BYTES = 4

#: Number of architectural integer registers.
NUM_REGISTERS = 32

#: Machine word size in bytes (the ISA is 64-bit).
WORD_BYTES = 8

#: Conventional register aliases, matching MIPS usage where it matters.
REGISTER_ALIASES = {
    "zero": 0,
    "sp": 29,
    "fp": 30,
    "ra": 31,
}


class Opcode(enum.IntEnum):
    """All opcodes in the ISA.

    The numeric values are contiguous so that simulators can use them to
    index dispatch tables.
    """

    # ALU register-register.
    ADD = 0
    SUB = 1
    MUL = 2
    AND = 3
    OR = 4
    XOR = 5
    SLT = 6
    SLL = 7
    SRL = 8
    # ALU register-immediate.
    ADDI = 9
    ANDI = 10
    ORI = 11
    XORI = 12
    SLTI = 13
    SLLI = 14
    SRLI = 15
    LUI = 16
    # Memory.
    LW = 17  # load 8-byte word
    LH = 18  # load 2-byte halfword (sign extended)
    LB = 19  # load 1-byte (sign extended)
    SW = 20  # store 8-byte word
    SH = 21  # store 2-byte halfword
    SB = 22  # store 1-byte
    # Conditional branches (PC-relative in spirit; targets are absolute).
    BEQ = 23
    BNE = 24
    BGEZ = 25
    BGTZ = 26
    BLEZ = 27
    BLTZ = 28
    # Unconditional control flow.
    J = 29  # direct jump
    JAL = 30  # direct call, link in ra
    JR = 31  # indirect jump / return
    JALR = 32  # indirect call, link in ra
    # Misc.
    NOP = 33
    HALT = 34


#: Opcodes that read two register sources and write a destination.
ALU_RRR_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SLT,
        Opcode.SLL,
        Opcode.SRL,
    }
)

#: Opcodes that read one register source plus an immediate.
ALU_RRI_OPCODES = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLTI,
        Opcode.SLLI,
        Opcode.SRLI,
    }
)

LOAD_OPCODES = frozenset({Opcode.LW, Opcode.LH, Opcode.LB})
STORE_OPCODES = frozenset({Opcode.SW, Opcode.SH, Opcode.SB})

#: Conditional branches: may or may not be taken.
CONDITIONAL_BRANCH_OPCODES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BGEZ, Opcode.BGTZ, Opcode.BLEZ, Opcode.BLTZ}
)

#: Branches comparing two registers.
TWO_SOURCE_BRANCH_OPCODES = frozenset({Opcode.BEQ, Opcode.BNE})

#: Direct unconditional transfers.
DIRECT_JUMP_OPCODES = frozenset({Opcode.J, Opcode.JAL})

#: Indirect transfers (target comes from a register).
INDIRECT_JUMP_OPCODES = frozenset({Opcode.JR, Opcode.JALR})

#: Calls: linking transfers that push a return address.
CALL_OPCODES = frozenset({Opcode.JAL, Opcode.JALR})

#: Every opcode that can end a basic block.
CONTROL_OPCODES = (
    CONDITIONAL_BRANCH_OPCODES
    | DIRECT_JUMP_OPCODES
    | INDIRECT_JUMP_OPCODES
    | frozenset({Opcode.HALT})
)

#: Byte width accessed by each memory opcode.
MEMORY_ACCESS_BYTES = {
    Opcode.LW: WORD_BYTES,
    Opcode.SW: WORD_BYTES,
    Opcode.LH: 2,
    Opcode.SH: 2,
    Opcode.LB: 1,
    Opcode.SB: 1,
}


class Instruction:
    """One decoded instruction.

    Attributes:
        pc: Absolute address of this instruction in the text segment.
        opcode: The :class:`Opcode`.
        rd: Destination register index, or ``None``.
        rs: First source register index, or ``None``.
        rt: Second source register index, or ``None``.
        imm: Immediate operand (also the load/store displacement), or 0.
        target: Absolute target PC for direct branches/jumps, or ``None``.
        text: The original assembly text, for diagnostics.
    """

    __slots__ = (
        "pc",
        "opcode",
        "rd",
        "rs",
        "rt",
        "imm",
        "target",
        "text",
        "is_conditional_branch",
        "is_direct_jump",
        "is_indirect_jump",
        "is_call",
        "is_return_like",
        "is_control",
        "is_load",
        "is_store",
        "is_mem",
        "latency_class",
    )

    def __init__(self, pc, opcode, rd=None, rs=None, rt=None, imm=0, target=None, text=""):
        self.pc = pc
        self.opcode = opcode
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.imm = imm
        self.target = target
        self.text = text
        # Pre-computed classification flags; these are read in the hot
        # loops of the simulators.
        self.is_conditional_branch = opcode in CONDITIONAL_BRANCH_OPCODES
        self.is_direct_jump = opcode in DIRECT_JUMP_OPCODES
        self.is_indirect_jump = opcode in INDIRECT_JUMP_OPCODES
        self.is_call = opcode in CALL_OPCODES
        self.is_return_like = opcode == Opcode.JR
        self.is_control = opcode in CONTROL_OPCODES
        self.is_load = opcode in LOAD_OPCODES
        self.is_store = opcode in STORE_OPCODES
        self.is_mem = self.is_load or self.is_store
        if opcode == Opcode.MUL:
            self.latency_class = "mul"
        elif self.is_load:
            self.latency_class = "load"
        else:
            self.latency_class = "alu"

    def source_registers(self):
        """Return the tuple of register indices this instruction reads."""
        sources = []
        if self.rs is not None:
            sources.append(self.rs)
        if self.rt is not None:
            sources.append(self.rt)
        return tuple(sources)

    def destination_register(self):
        """Return the register index written, or ``None``.

        Writes to register 0 are discarded by the ISA, so they are
        reported as ``None`` here.
        """
        if self.rd is None or self.rd == 0:
            return None
        return self.rd

    def fall_through_pc(self):
        """Return the address of the next sequential instruction."""
        return self.pc + INSTRUCTION_BYTES

    def __repr__(self):
        return "Instruction(pc={:#x}, {!r})".format(self.pc, self.text or self.opcode.name)


def format_register(index):
    """Render a register index as its canonical assembly name."""
    for alias, number in REGISTER_ALIASES.items():
        if number == index and alias in ("ra", "sp"):
            return alias
    return "r{}".format(index)
