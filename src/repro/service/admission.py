"""Batched admission control: the queue between clients and the grid.

Concurrent queries do not each pay a grid: they land in one bounded
queue, and the single batch-executor thread drains the *entire* queue
into one admission batch.  Two mechanisms produce the batching:

* **The admission window** — when the executor is idle, the first
  arrival opens a short window (``window_seconds``) during which
  every further arrival joins the same batch.  This is the classic
  inference-serving trade: a few milliseconds of added latency for the
  first client buys grid-level dedup and cost scheduling for all of
  them.

* **Natural coalescing under load** — while a batch executes, new
  arrivals accumulate in the queue; the next ``next_batch`` call takes
  them all.  The busier the service, the larger (and better-amortized)
  the batches, with no extra waiting.

Backpressure is explicit: a full queue rejects immediately with
:class:`QueueSaturated` (HTTP 429 plus a ``Retry-After`` hint) rather
than queueing unboundedly, and a draining service rejects with
:class:`ServiceDraining` (HTTP 503) while already-admitted queries run
to completion.
"""

import collections
import concurrent.futures
import threading
import time


class ServiceError(Exception):
    """Base class of service-side request failures."""


class QueueSaturated(ServiceError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, depth, retry_after):
        super().__init__(
            "admission queue saturated ({} queued); retry in {:.2f}s".format(
                depth, retry_after
            )
        )
        self.depth = depth
        self.retry_after = retry_after


class ServiceDraining(ServiceError):
    """The service is draining and no longer admits new queries."""

    def __init__(self):
        super().__init__("service is draining; new queries are refused")


class QueuedQuery:
    """One admitted query: its decoded cells, scale, and result future.

    The future is a :class:`concurrent.futures.Future` so the batch
    executor (a plain thread) can resolve it directly and the asyncio
    server can await it via :func:`asyncio.wrap_future`.
    """

    __slots__ = ("cells", "scale", "estimate", "future", "admitted_at")

    def __init__(self, cells, scale, estimate=False):
        self.cells = tuple(cells)
        self.scale = scale
        #: Estimate-mode queries are answered analytically (labeled
        #: ``source=estimated``) and never reach the simulation tiers.
        self.estimate = estimate
        self.future = concurrent.futures.Future()
        self.admitted_at = time.monotonic()


class AdmissionController:
    """Bounded admission queue with window-based batch formation."""

    def __init__(self, queue_depth=64, window_seconds=0.025, retry_after=0.5):
        self.queue_depth_limit = max(1, int(queue_depth))
        self.window_seconds = max(0.0, float(window_seconds))
        self.retry_after = float(retry_after)
        self._queue = collections.deque()
        self._cond = threading.Condition()
        self._draining = False
        #: Telemetry: admissions, saturation rejections, drain rejections.
        self.admitted = 0
        self.rejected_saturated = 0
        self.rejected_draining = 0
        self.batches_formed = 0

    @property
    def draining(self):
        return self._draining

    @property
    def queue_depth(self):
        with self._cond:
            return len(self._queue)

    def submit(self, query):
        """Admit ``query`` or raise the matching backpressure error."""
        with self._cond:
            if self._draining:
                self.rejected_draining += 1
                raise ServiceDraining()
            if len(self._queue) >= self.queue_depth_limit:
                self.rejected_saturated += 1
                raise QueueSaturated(len(self._queue), self.retry_after)
            self._queue.append(query)
            self.admitted += 1
            self._cond.notify_all()
        return query

    def next_batch(self):
        """Block for the next admission batch (``[]`` means: drained).

        Waits for the first queued query, sleeps the admission window
        so concurrent arrivals coalesce, then takes everything queued.
        During drain, remaining queued queries are still returned (they
        were admitted and must complete); only an empty queue ends the
        loop.
        """
        with self._cond:
            while not self._queue and not self._draining:
                self._cond.wait()
            if not self._queue:
                return []
        if self.window_seconds > 0.0:
            time.sleep(self.window_seconds)
        with self._cond:
            batch = list(self._queue)
            self._queue.clear()
            self.batches_formed += 1
            return batch

    def drain(self):
        """Stop admitting; wake the executor so it can finish and exit."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def snapshot(self):
        """Structured admission telemetry (for ``/healthz``)."""
        with self._cond:
            return {
                "queue_depth": len(self._queue),
                "queue_depth_limit": self.queue_depth_limit,
                "window_seconds": self.window_seconds,
                "retry_after": self.retry_after,
                "draining": self._draining,
                "admitted": self.admitted,
                "rejected_saturated": self.rejected_saturated,
                "rejected_draining": self.rejected_draining,
                "batches_formed": self.batches_formed,
            }
