"""The always-on exploration service: stdlib asyncio HTTP/JSON.

One :class:`ExplorationService` serves four endpoints over a tiny
HTTP/1.1 implementation on :func:`asyncio.start_server` (no runtime
dependencies):

``POST /query``
    Submit cells (see :mod:`repro.service.wire`); blocks until the
    admission batch containing them completes and returns the stats.
    A saturated queue answers ``429`` with a ``Retry-After`` header; a
    draining service answers ``503``.

``GET /healthz``
    Structured service state: admission telemetry, engine counters,
    the merged ``RunSummary`` fields (corrupt cache entries, pool
    restarts, scheduling telemetry), and drain status.

``GET /events``
    The JSONL progress stream (service events plus bridged simulation
    lifecycle events).  Streams live until the client disconnects or
    the service drains; ``?follow=0`` snapshots the current buffer and
    closes.

``POST /shutdown``
    Begin a graceful drain (the same path SIGTERM/SIGINT take):
    admitted queries complete, new ones are refused, event streams
    end, then the listener closes.

Request handling is asyncio; simulation happens on one dedicated
batch-executor thread, so the event loop stays responsive while grids
run and the engine's state is never touched concurrently.
"""

import asyncio
import json
import threading
import time

from repro.obs import EventJournal, service_event
from repro.service import wire
from repro.service.admission import (
    AdmissionController,
    QueuedQuery,
    QueueSaturated,
    ServiceDraining,
)
from repro.service.engine import ExplorationEngine

_JSON_HEADERS = (("Content-Type", "application/json"),)


class ExplorationService:
    """The long-lived policy-exploration server."""

    def __init__(
        self,
        host="127.0.0.1",
        port=0,
        engine=None,
        controller=None,
        journal=None,
        events_log=None,
        queue_depth=64,
        window_seconds=0.025,
        retry_after=0.5,
        **engine_kwargs,
    ):
        self.host = host
        self.port = port
        self._events_log_path = events_log
        self._events_log = None
        tee = None
        if events_log is not None:
            self._events_log = open(events_log, "w", encoding="utf-8")

            def tee(event, _stream=self._events_log):
                _stream.write(json.dumps(event, sort_keys=True) + "\n")
                _stream.flush()

        self.journal = journal if journal is not None else EventJournal(tee=tee)
        self.engine = (
            engine
            if engine is not None
            else ExplorationEngine(journal=self.journal, **engine_kwargs)
        )
        self.controller = (
            controller
            if controller is not None
            else AdmissionController(
                queue_depth=queue_depth,
                window_seconds=window_seconds,
                retry_after=retry_after,
            )
        )
        self._server = None
        self._executor = None
        self._loop = None
        self._closed = None
        self._shutdown_started = False
        self.started_at = None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self):
        """Bind the listener and start the batch-executor thread."""
        self._loop = asyncio.get_running_loop()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self._executor = threading.Thread(
            target=self._executor_loop, name="batch-executor", daemon=True
        )
        self._executor.start()
        self.journal.publish(
            service_event(
                "service_start",
                host=self.host,
                port=self.port,
                jobs=getattr(self.engine, "jobs", None),
                cache_dir=getattr(self.engine, "cache_dir", None),
            )
        )
        return self

    def _executor_loop(self):
        """Drain admission batches until the controller reports drained."""
        while True:
            batch = self.controller.next_batch()
            if not batch:
                return
            try:
                self.engine.execute_batch(batch)
            except BaseException as error:
                # A batch-executor crash must never strand clients:
                # fail every unresolved future with the cause.
                for query in batch:
                    if not query.future.done():
                        query.future.set_exception(error)
                self.journal.publish(
                    service_event("batch_failed", error=str(error))
                )

    async def shutdown(self):
        """Graceful drain: finish admitted work, then close everything."""
        if self._shutdown_started:
            await self._closed.wait()
            return
        self._shutdown_started = True
        self.journal.publish(service_event("service_draining"))
        self.controller.drain()
        if self._executor is not None:
            await asyncio.to_thread(self._executor.join)
        self.journal.publish(service_event("service_stopped"))
        self.journal.close()
        if self._events_log is not None:
            self._events_log.close()
        self._server.close()
        await self._server.wait_closed()
        self._closed.set()

    def request_shutdown(self):
        """Thread/signal-safe trigger for :meth:`shutdown`."""
        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(self.shutdown())
        )

    async def wait_closed(self):
        await self._closed.wait()

    # -- HTTP plumbing ------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, target, _ = request_line.decode("latin-1").split(None, 2)
            except ValueError:
                await self._respond(writer, 400, {"error": "malformed request"})
                return
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length:
                body = await reader.readexactly(length)
            path, _, query_string = target.partition("?")
            await self._route(writer, method.upper(), path, query_string, body)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            try:
                if not writer.is_closing():
                    writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, writer, method, path, query_string, body):
        if path == "/query" and method == "POST":
            await self._handle_query(writer, body)
        elif path == "/healthz" and method == "GET":
            await self._respond(writer, 200, self.healthz())
        elif path == "/events" and method == "GET":
            await self._handle_events(writer, query_string)
        elif path == "/shutdown" and method == "POST":
            await self._respond(writer, 202, {"status": "draining"})
            self._loop.create_task(self.shutdown())
        else:
            await self._respond(
                writer, 404, {"error": "no route {} {}".format(method, path)}
            )

    async def _respond(self, writer, status, payload, headers=()):
        body = wire.canonical_json(payload)
        reason = {
            200: "OK",
            202: "Accepted",
            400: "Bad Request",
            404: "Not Found",
            429: "Too Many Requests",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "Response")
        lines = ["HTTP/1.1 {} {}".format(status, reason)]
        for name, value in _JSON_HEADERS + tuple(headers):
            lines.append("{}: {}".format(name, value))
        lines.append("Content-Length: {}".format(len(body)))
        lines.append("Connection: close")
        writer.write("\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body)
        await writer.drain()

    # -- endpoints ----------------------------------------------------------------

    async def _handle_query(self, writer, body):
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            await self._respond(
                writer, 400, {"error": "invalid JSON: {}".format(error)}
            )
            return
        try:
            cells, scale = wire.decode_query(payload)
            estimate = wire.decode_estimate(payload)
        except wire.WireError as error:
            await self._respond(writer, 400, {"error": str(error)})
            return
        query = QueuedQuery(cells, scale, estimate=estimate)
        try:
            self.controller.submit(query)
        except QueueSaturated as error:
            self.journal.publish(
                service_event("query_rejected", reason="saturated")
            )
            await self._respond(
                writer,
                429,
                {"error": str(error), "retry_after": error.retry_after},
                headers=(("Retry-After", "{:.3f}".format(error.retry_after)),),
            )
            return
        except ServiceDraining as error:
            self.journal.publish(
                service_event("query_rejected", reason="draining")
            )
            await self._respond(writer, 503, {"error": str(error)})
            return
        self.journal.publish(
            service_event(
                "query_admitted",
                cells=len(cells),
                scale=scale,
                queue_depth=self.controller.queue_depth,
            )
        )
        try:
            response = await asyncio.wrap_future(query.future)
        except Exception as error:
            await self._respond(
                writer, 500, {"error": "batch execution failed: {}".format(error)}
            )
            return
        await self._respond(writer, 200, response)

    def healthz(self):
        """The structured service-state payload of ``GET /healthz``."""
        return {
            "status": "draining" if self.controller.draining else "ok",
            "schema": wire.WIRE_SCHEMA_VERSION,
            "uptime_seconds": (
                0.0 if self.started_at is None else time.time() - self.started_at
            ),
            "admission": self.controller.snapshot(),
            "engine": self.engine.snapshot(),
            "events": {
                "published": self.journal.published,
                "buffered_through": self.journal.end_seq,
            },
        }

    async def _handle_events(self, writer, query_string):
        follow = "follow=0" not in query_string
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        seq = 0
        try:
            while True:
                if follow:
                    events, seq = await asyncio.to_thread(
                        self.journal.wait_since, seq, 0.25
                    )
                else:
                    events, seq = self.journal.since(seq)
                for event in events:
                    writer.write(
                        json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
                    )
                if events:
                    await writer.drain()
                if not follow or (
                    self.journal.closed and seq >= self.journal.end_seq
                ):
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
