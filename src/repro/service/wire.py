"""Wire schema of the exploration service: JSON in, JSON out.

Schema — version 2
==================

A **query** submits one or more grid cells at one workload scale::

    {
      "cells": [
        {"workload": "gzip", "spec": "control-equivalent"},
        {"workload": "synth/L2H1C0I0P1S0V0", "spec": "superscalar"},
        {"workload": "mcf", "spec": "postdoms",
         "config": {"rob_entries": 256}}
      ],
      "scale": 0.5
    }

``spec`` accepts the same policy strings and aliases as the CLI
(``control-equivalent``, ``best-heuristic``, ``superscalar``, …);
``config`` is an optional dict of :class:`MachineConfig` field
overrides applied on top of the paper configuration.  Cells may also be
two-element ``[workload, spec]`` arrays.

The **response** is positionally aligned with the request cells::

    {
      "schema": 1,
      "scale": 0.5,
      "results": [
        {"workload": "gzip", "spec": "postdoms",
         "config_fingerprint": "…", "source": "simulated",
         "stats": { … SimStats.as_dict() … }},
        …
      ],
      "batch": {"queries": 3, "cells": 7, "unique_cells": 5,
                "memo_hits": 1, "cache_hits": 2, "simulated": 2}
    }

``source`` records how the cell was answered: ``memo`` (the server's
in-memory result memo), ``cache`` (the content-addressed on-disk
:class:`~repro.experiments.parallel.ResultCache`), ``simulated`` (a
fresh simulation, inline or pooled), ``estimated`` (the analytic
estimator — see below), or ``error`` (the cell failed — an ``error``
string replaces ``stats``).

Version 2 adds **estimate mode**: a query carrying ``"estimate":
true`` is answered entirely by the analytic estimator
(:mod:`repro.analysis.estimate`) — no simulation, no caches.  Each
result then carries an ``estimate`` object instead of ``stats``::

    {"workload": "gzip", "spec": "postdoms",
     "config_fingerprint": "…", "source": "estimated",
     "estimate": {"predicted_speedup": 31.2, "band": 52.7,
                  "baseline_cycles": 8143, "polyflow_cycles": 6205}}

``predicted_speedup`` is the estimator's speedup prediction in
percent, ``band`` its confidence half-width (the exact speedup lands
inside ``predicted_speedup ± band`` for roughly nine out of ten
catalog cells).  Estimated answers are labeled ``source=estimated``
end to end and are never byte-identical to simulation — clients that
need exact stats re-query without the flag.

**Byte identity** is the service's core invariant: ``stats`` is
exactly ``SimStats.as_dict()`` of the simulation the serial
:class:`~repro.experiments.runner.ExperimentRunner` would have run, so
:func:`canonical_json` of a service result equals :func:`canonical_json`
of the direct run, byte for byte, regardless of batching, caching, or
scheduling decisions.
"""

import collections
import dataclasses
import json

from repro.polyflow import PAPER_CONFIG
from repro.polyflow.config import MachineConfig
from repro.spawn import canonical_spec

#: Version of the request/response schema (bump on any field change).
WIRE_SCHEMA_VERSION = 2

#: Upper bound on cells per query; larger explorations should be
#: split into several queries (the admission batcher re-coalesces
#: them into one grid anyway).
MAX_CELLS_PER_QUERY = 256

#: Workload scales outside this range are rejected at the wire.
MAX_SCALE = 64.0

#: Result ``source`` labels.
SOURCE_MEMO = "memo"
SOURCE_CACHE = "cache"
SOURCE_SIMULATED = "simulated"
SOURCE_ESTIMATED = "estimated"
SOURCE_ERROR = "error"

#: One requested grid cell, decoded and canonicalized.
Cell = collections.namedtuple("Cell", ("workload", "spec", "config"))


class WireError(ValueError):
    """A malformed or invalid request (maps to HTTP 400)."""


def canonical_json(payload):
    """The canonical JSON bytes of ``payload`` (sorted keys, compact).

    Byte-identity assertions compare these bytes; two payloads are
    "the same result" exactly when their canonical JSON matches.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def encode_stats(stats):
    """The wire form of one ``SimStats``: its plain ``as_dict()``."""
    return stats.as_dict()


def encode_estimate(estimate):
    """The wire form of one analytic ``Estimate``."""
    return {
        "predicted_speedup": estimate.predicted_speedup,
        "band": estimate.band,
        "baseline_cycles": estimate.baseline_cycles,
        "polyflow_cycles": estimate.polyflow_cycles,
    }


_CONFIG_FIELDS = {field.name for field in dataclasses.fields(MachineConfig)}


def encode_config(config):
    """The overrides dict that :func:`decode_config` restores.

    Only fields differing from the paper configuration are included,
    so the default machine encodes as ``{}`` (clients may omit the
    ``config`` key entirely).
    """
    return {
        name: getattr(config, name)
        for name in sorted(_CONFIG_FIELDS)
        if getattr(config, name) != getattr(PAPER_CONFIG, name)
    }


def decode_config(payload):
    """A :class:`MachineConfig` from an overrides dict (or ``None``)."""
    if payload is None:
        return PAPER_CONFIG
    if not isinstance(payload, dict):
        raise WireError("cell config must be an object of field overrides")
    unknown = sorted(set(payload) - _CONFIG_FIELDS)
    if unknown:
        raise WireError(
            "unknown machine-config fields: {}".format(", ".join(unknown))
        )
    try:
        return dataclasses.replace(PAPER_CONFIG, **payload)
    except Exception as error:
        raise WireError("invalid machine config: {}".format(error))


def validate_workload(name):
    """``name`` if it is a known workload or valid synth/ code.

    Validation is cheap (a name lookup or a dial-code parse) so it can
    run at admission time, before the cell ever reaches the batch
    executor.
    """
    if not isinstance(name, str) or not name:
        raise WireError("cell workload must be a non-empty string")
    from repro.workloads import WORKLOAD_NAMES

    if name in WORKLOAD_NAMES:
        return name
    from repro.workloads.synth import CATALOG_PREFIX, Dials

    if name.startswith(CATALOG_PREFIX):
        try:
            Dials.from_code(name[len(CATALOG_PREFIX) :])
        except Exception as error:
            raise WireError("invalid synth scenario {!r}: {}".format(name, error))
        return name
    raise WireError(
        "unknown workload {!r}; choose from {} or a synth/ catalog "
        "name".format(name, WORKLOAD_NAMES)
    )


def decode_cell(raw):
    """One :class:`Cell` from its wire form (dict or 2-array)."""
    if isinstance(raw, (list, tuple)):
        if len(raw) != 2:
            raise WireError(
                "array cells must be [workload, spec], got {!r}".format(raw)
            )
        raw = {"workload": raw[0], "spec": raw[1]}
    if not isinstance(raw, dict):
        raise WireError("each cell must be an object or [workload, spec]")
    workload = validate_workload(raw.get("workload"))
    spec = raw.get("spec")
    if not isinstance(spec, str) or not spec.strip():
        raise WireError("cell spec must be a non-empty policy string")
    extra = sorted(set(raw) - {"workload", "spec", "config"})
    if extra:
        raise WireError("unknown cell fields: {}".format(", ".join(extra)))
    return Cell(workload, canonical_spec(spec), decode_config(raw.get("config")))


def decode_estimate(payload):
    """The query's estimate-mode flag (``False`` when omitted)."""
    estimate = payload.get("estimate", False) if isinstance(payload, dict) else False
    if not isinstance(estimate, bool):
        raise WireError("estimate must be a boolean")
    return estimate


def decode_query(payload):
    """``(cells, scale)`` from one decoded request body.

    Policy specs are canonicalized here, so admission-batch
    deduplication (and every cache underneath) is independent of which
    alias the client used.  The optional ``estimate`` flag is decoded
    separately by :func:`decode_estimate` (it is validated here so an
    ill-typed flag fails admission, not execution).
    """
    if not isinstance(payload, dict):
        raise WireError("request body must be a JSON object")
    raw_cells = payload.get("cells")
    if not isinstance(raw_cells, list) or not raw_cells:
        raise WireError("request must carry a non-empty 'cells' array")
    if len(raw_cells) > MAX_CELLS_PER_QUERY:
        raise WireError(
            "too many cells in one query ({} > {})".format(
                len(raw_cells), MAX_CELLS_PER_QUERY
            )
        )
    scale = payload.get("scale", 1.0)
    if isinstance(scale, bool) or not isinstance(scale, (int, float)):
        raise WireError("scale must be a number")
    scale = float(scale)
    if not 0.0 < scale <= MAX_SCALE:
        raise WireError(
            "scale must be in (0, {}], got {}".format(MAX_SCALE, scale)
        )
    decode_estimate(payload)
    unknown = sorted(set(payload) - {"cells", "scale", "estimate"})
    if unknown:
        raise WireError("unknown request fields: {}".format(", ".join(unknown)))
    return [decode_cell(raw) for raw in raw_cells], scale


def encode_query(cells, scale=1.0, estimate=False):
    """The request body for ``cells`` (dicts, tuples, or ``Cell``\\ s)."""
    encoded = []
    for cell in cells:
        if isinstance(cell, dict):
            encoded.append(cell)
            continue
        if isinstance(cell, Cell):
            entry = {"workload": cell.workload, "spec": cell.spec}
            overrides = encode_config(cell.config)
            if overrides:
                entry["config"] = overrides
            encoded.append(entry)
            continue
        workload, spec = cell
        encoded.append({"workload": workload, "spec": spec})
    payload = {"cells": encoded, "scale": scale}
    if estimate:
        payload["estimate"] = True
    return payload
