"""The exploration engine: batched grids over shared hot caches.

One :class:`ExplorationEngine` owns the service's entire simulation
state: a :class:`~repro.experiments.parallel.ParallelExperimentRunner`
per workload scale (all sharing one on-disk result/analysis cache
directory and the process-wide warm worker pool), plus the counters
``/healthz`` reports.  The batch executor thread calls
:meth:`execute_batch` with one admission batch at a time, so runner
state is never touched concurrently.

Execution of a batch is tiered, cheapest first:

1. **Memo** — cells already in a runner's in-memory result memo are
   answered immediately (the always-on process *is* the hot cache).
2. **Disk cache** — content-addressed ``ResultCache`` hits are loaded
   in the parent, never touching the pool.
3. **Simulation** — only genuinely missing cells reach
   ``prefetch``, which cost-schedules them inline or onto the warm
   worker pool.  Duplicate cells across the batch's queries collapse
   to one simulation.

Fault handling is two-layered: the parallel runner itself retries a
broken worker pool once (restarting the pool), and if a *batch-level*
prefetch still fails, the engine degrades to per-cell inline execution
so one poisoned cell (or a dead pool) cannot fail unrelated queries in
the same batch.  Every incident is surfaced as a structured
``RunSummary`` field and an ``incident`` progress event.
"""

import os
import threading
import time

from repro.experiments import scheduler
from repro.experiments.parallel import ParallelExperimentRunner
from repro.obs import EventBus, CallbackSink, fabric_event, service_event
from repro.service import wire

#: Per-simulation cap on bridged lifecycle events.  Inline simulations
#: stream their bus lifecycle events into the journal; past the cap a
#: single ``sim.truncated`` marker is published instead, keeping the
#: /events stream bounded for long workloads.
DEFAULT_SIM_EVENT_LIMIT = 64


class _ServiceRunner(ParallelExperimentRunner):
    """A parallel runner that bridges inline-simulation bus events.

    The ``_job_bus`` hook gives every *inline* simulation a fresh
    non-verbose :class:`EventBus` whose lifecycle events are forwarded
    (bounded, cell-tagged) into the service journal.  Pooled chunks run
    in worker processes and are reported at chunk granularity instead.
    A non-verbose bridge keeps ``bus.verbose`` False, so engine
    selection — and therefore the stats — is untouched.
    """

    #: Every inline simulation must own its bridging bus, so the
    #: lockstep batch (which carries no bus) is disabled inline;
    #: pooled chunks still batch in the workers.
    inline_batching = False

    def __init__(self, *args, journal=None, sim_event_limit=0, **kwargs):
        super().__init__(*args, **kwargs)
        self._journal = journal
        self._sim_event_limit = sim_event_limit

    def _job_bus(self, name, spec, config):
        if self._journal is None or self._sim_event_limit <= 0:
            return None
        bus = EventBus()
        budget = [self._sim_event_limit]

        def forward(event):
            if budget[0] == 0:
                return
            budget[0] -= 1
            payload = event.as_dict()
            if budget[0] == 0:
                payload = service_event(
                    "sim.truncated",
                    workload=name,
                    spec=spec,
                    limit=self._sim_event_limit,
                )
            else:
                payload = dict(payload)
                payload["kind"] = "sim." + payload["kind"]
                payload["workload"] = name
                payload["spec"] = spec
            self._journal.publish(payload)

        bus.attach(CallbackSink(forward), verbose=False)
        return bus

    def _fabric_event(self, kind, **fields):
        """Bridge fabric placement/incident telemetry into the journal."""
        if self._journal is not None:
            self._journal.publish(fabric_event(kind, **fields))


def merge_summary_dicts(summaries):
    """Sum a list of ``RunSummary.as_dict()`` payloads into one."""
    merged = {}
    for summary in summaries:
        for key, value in summary.items():
            if isinstance(value, (int, float)):
                if key == "pool_workers":
                    merged[key] = max(merged.get(key, 0), value)
                else:
                    merged[key] = merged.get(key, 0) + value
            elif isinstance(value, list):
                merged.setdefault(key, []).extend(value)
            elif isinstance(value, dict):
                bucket = merged.setdefault(key, {})
                for inner, count in value.items():
                    bucket[inner] = bucket.get(inner, 0) + count
    return merged


class ExplorationEngine:
    """Owns the per-scale runner fleet and executes admission batches."""

    def __init__(
        self,
        jobs=1,
        cache_dir=None,
        chunk=None,
        schedule=scheduler.SCHEDULE_COST,
        inline_threshold=None,
        cpus=None,
        journal=None,
        sim_event_limit=DEFAULT_SIM_EVENT_LIMIT,
        fabric_workers=0,
        fabric_store=None,
        fabric_transport="subprocess",
    ):
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.chunk = chunk
        self.schedule = schedule
        self.inline_threshold = inline_threshold
        self.cpus = cpus
        self.journal = journal
        self.sim_event_limit = sim_event_limit
        #: Fabric knobs, forwarded verbatim to every scale runner: the
        #: engine can target worker subprocesses and a shared artifact
        #: store instead of (only) the local warm pool.
        self.fabric_workers = fabric_workers
        self.fabric_store = fabric_store
        self.fabric_transport = fabric_transport
        self._runners = {}
        self._lock = threading.Lock()
        #: Batch/query/cell telemetry for ``/healthz``.
        self.batches_executed = 0
        self.queries_served = 0
        self.queries_failed = 0
        self.cells_served = 0
        self.cells_deduped = 0
        #: Unique per-batch cell outcomes by source; duplicates of a
        #: cell *within* one batch collapse to a single outcome, so the
        #: counts total ``cells_served - cells_deduped`` (the work the
        #: engine actually performed, not the answers it handed out).
        self.cells_by_source = {
            wire.SOURCE_MEMO: 0,
            wire.SOURCE_CACHE: 0,
            wire.SOURCE_SIMULATED: 0,
            wire.SOURCE_ESTIMATED: 0,
            wire.SOURCE_ERROR: 0,
        }
        self.batches_degraded = 0

    def _publish(self, event):
        if self.journal is not None:
            self.journal.publish(event)

    def runner_for(self, scale):
        """The (created-on-demand) runner serving ``scale``."""
        with self._lock:
            runner = self._runners.get(scale)
            if runner is None:
                runner = _ServiceRunner(
                    scale=scale,
                    jobs=self.jobs,
                    cache_dir=self.cache_dir,
                    chunk=self.chunk,
                    schedule=self.schedule,
                    inline_threshold=self.inline_threshold,
                    cpus=self.cpus,
                    journal=self.journal,
                    sim_event_limit=self.sim_event_limit,
                    fabric_workers=self.fabric_workers,
                    fabric_store=self.fabric_store,
                    fabric_transport=self.fabric_transport,
                )
                self._runners[scale] = runner
            return runner

    # -- batch execution ----------------------------------------------------------

    def execute_batch(self, batch):
        """Run one admission batch and resolve every query future.

        Cells are deduplicated across the whole batch per scale, then
        executed tier-by-tier (memo, disk cache, simulation).  Every
        future is resolved — with a response, or with the error that
        made its query unanswerable.
        """
        started = time.perf_counter()
        self.batches_executed += 1
        groups = {}
        total_cells = 0
        for query in batch:
            if query.estimate:
                # Estimate-mode queries never join the simulation
                # tiers; they are answered analytically below.
                continue
            runner = self.runner_for(query.scale)
            group = groups.setdefault(query.scale, {})
            for cell in query.cells:
                total_cells += 1
                key = self._cell_key(runner, cell)
                group.setdefault(key, cell)
        unique_cells = sum(len(group) for group in groups.values())
        self.cells_deduped += total_cells - unique_cells
        self._publish(
            service_event(
                "batch_start",
                queries=len(batch),
                cells=total_cells,
                unique_cells=unique_cells,
                scales=sorted(groups),
            )
        )

        outcomes = {}
        for scale, group in sorted(groups.items()):
            outcomes[scale] = self._execute_group(scale, group)

        # Counters and the batch_done event must be final before any
        # client unblocks: a client that answers and immediately reads
        # /events or /healthz sees its own batch accounted for.
        responses = {}
        failures = {}
        for index, query in enumerate(batch):
            if query.future.done():
                continue
            try:
                if query.estimate:
                    responses[index] = self._build_estimate_response(
                        query, batch_size=len(batch)
                    )
                else:
                    responses[index] = self._build_response(
                        query, outcomes[query.scale], batch_size=len(batch)
                    )
                self.queries_served += 1
                self.cells_served += len(query.cells)
            except Exception as error:  # pragma: no cover - defensive
                self.queries_failed += 1
                failures[index] = error

        self._publish(
            service_event(
                "batch_done",
                queries=len(batch),
                unique_cells=unique_cells,
                wall_seconds=round(time.perf_counter() - started, 6),
            )
        )

        for index, query in enumerate(batch):
            if index in responses:
                query.future.set_result(responses[index])
            elif index in failures:
                query.future.set_exception(failures[index])

    def _cell_key(self, runner, cell):
        return runner._result_key(
            cell.workload, cell.spec, cell.config, runner.config.max_spawn_distance
        )

    def _probe_source(self, runner, cell, key):
        """Pre-execution source guess: memo, disk cache, or pending."""
        if key in runner._results:
            return wire.SOURCE_MEMO
        if runner.cache is not None:
            digest = runner._job_digest(
                cell.workload, cell.spec, cell.config, runner.config.max_spawn_distance
            )
            if os.path.exists(runner.cache.path(digest)):
                return wire.SOURCE_CACHE
        return wire.SOURCE_SIMULATED

    def _execute_group(self, scale, group):
        """Execute one scale's deduplicated cells; returns per-key outcome.

        The outcome maps each cell key to ``(source, stats_or_error)``.
        A batch-level prefetch failure degrades to per-cell inline
        execution so independent cells still succeed.
        """
        runner = self.runner_for(scale)
        sources = {
            key: self._probe_source(runner, cell, key)
            for key, cell in group.items()
        }
        corrupt_before = len(runner.summary.corrupt_entries)
        restarts_before = runner.summary.pool_restarts
        errors = {}
        pending = [
            (cell.workload, cell.spec, cell.config)
            for key, cell in group.items()
            if sources[key] != wire.SOURCE_MEMO
        ]
        try:
            runner.prefetch(pending)
        except Exception as error:
            self.batches_degraded += 1
            self._publish(
                service_event(
                    "batch_degraded", scale=scale, reason=str(error)
                )
            )
            for key, cell in group.items():
                if key in runner._results:
                    continue
                try:
                    runner.run_with_config(cell.workload, cell.spec, cell.config)
                except Exception as cell_error:
                    errors[key] = str(cell_error)

        self._report_incidents(runner, scale, corrupt_before, restarts_before)

        outcome = {}
        for key, cell in group.items():
            if key in errors or key not in runner._results:
                message = errors.get(key, "cell was not materialized")
                outcome[key] = (wire.SOURCE_ERROR, message)
                self.cells_by_source[wire.SOURCE_ERROR] += 1
                self._publish(
                    service_event(
                        "cell_error",
                        workload=cell.workload,
                        spec=cell.spec,
                        scale=scale,
                        error=message,
                    )
                )
                continue
            source = sources[key]
            if source == wire.SOURCE_CACHE and self._entry_was_corrupt(
                runner, cell
            ):
                # The probed disk entry turned out corrupt and was
                # re-simulated; label the answer honestly.
                source = wire.SOURCE_SIMULATED
            outcome[key] = (source, runner._results[key])
            self.cells_by_source[source] += 1
        return outcome

    def _entry_was_corrupt(self, runner, cell):
        if runner.cache is None:
            return False
        digest = runner._job_digest(
            cell.workload, cell.spec, cell.config, runner.config.max_spawn_distance
        )
        return runner.cache.path(digest) in runner.summary.corrupt_entries

    def _report_incidents(self, runner, scale, corrupt_before, restarts_before):
        for path in runner.summary.corrupt_entries[corrupt_before:]:
            self._publish(
                service_event(
                    "incident", type="corrupt_cache_entry", scale=scale, path=path
                )
            )
        restarts = runner.summary.pool_restarts - restarts_before
        for _ in range(restarts):
            self._publish(
                service_event("incident", type="pool_restart", scale=scale)
            )

    def _build_response(self, query, outcome, batch_size):
        runner = self.runner_for(query.scale)
        results = []
        counts = {
            wire.SOURCE_MEMO: 0,
            wire.SOURCE_CACHE: 0,
            wire.SOURCE_SIMULATED: 0,
            wire.SOURCE_ERROR: 0,
        }
        from repro.polyflow.config import config_fingerprint

        for cell in query.cells:
            key = self._cell_key(runner, cell)
            source, payload = outcome[key]
            counts[source] += 1
            entry = {
                "workload": cell.workload,
                "spec": cell.spec,
                "config_fingerprint": config_fingerprint(cell.config),
                "source": source,
            }
            if source == wire.SOURCE_ERROR:
                entry["error"] = payload
            else:
                entry["stats"] = wire.encode_stats(payload)
            results.append(entry)
        return {
            "schema": wire.WIRE_SCHEMA_VERSION,
            "scale": query.scale,
            "results": results,
            "batch": {
                "queries": batch_size,
                "cells": len(query.cells),
                "memo_hits": counts[wire.SOURCE_MEMO],
                "cache_hits": counts[wire.SOURCE_CACHE],
                "simulated": counts[wire.SOURCE_SIMULATED],
                "estimated": 0,
                "errors": counts[wire.SOURCE_ERROR],
            },
        }

    def _build_estimate_response(self, query, batch_size):
        """Answer one estimate-mode query analytically (no simulation)."""
        from repro.analysis.estimate import estimate_speedup
        from repro.polyflow.config import config_fingerprint

        runner = self.runner_for(query.scale)
        results = []
        estimated = errors = 0
        for cell in query.cells:
            entry = {
                "workload": cell.workload,
                "spec": cell.spec,
                "config_fingerprint": config_fingerprint(cell.config),
            }
            try:
                estimate = estimate_speedup(
                    cell.workload, cell.spec, query.scale, cell.config
                )
            except Exception as error:
                entry["source"] = wire.SOURCE_ERROR
                entry["error"] = str(error)
                errors += 1
                self.cells_by_source[wire.SOURCE_ERROR] += 1
            else:
                entry["source"] = wire.SOURCE_ESTIMATED
                entry["estimate"] = wire.encode_estimate(estimate)
                estimated += 1
                self.cells_by_source[wire.SOURCE_ESTIMATED] += 1
            results.append(entry)
        if estimated:
            runner.summary.record_estimated(estimated)
        return {
            "schema": wire.WIRE_SCHEMA_VERSION,
            "scale": query.scale,
            "results": results,
            "batch": {
                "queries": batch_size,
                "cells": len(query.cells),
                "memo_hits": 0,
                "cache_hits": 0,
                "simulated": 0,
                "estimated": estimated,
                "errors": errors,
            },
        }

    # -- telemetry ----------------------------------------------------------------

    def summary_dict(self):
        """The merged ``RunSummary.as_dict()`` across every scale runner."""
        with self._lock:
            runners = list(self._runners.values())
        return merge_summary_dicts([r.summary.as_dict() for r in runners])

    def snapshot(self):
        """The engine fragment of ``/healthz``."""
        summary = self.summary_dict()
        store_root = self.fabric_store
        if store_root is not None and not isinstance(store_root, str):
            store_root = getattr(store_root, "root", str(store_root))
        return {
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "fabric": {
                "workers": self.fabric_workers,
                "transport": self.fabric_transport,
                "store": store_root,
            },
            "scales": sorted(self._runners),
            "batches": {
                "executed": self.batches_executed,
                "degraded": self.batches_degraded,
            },
            "queries": {
                "served": self.queries_served,
                "failed": self.queries_failed,
            },
            "cells": {
                "served": self.cells_served,
                "deduped": self.cells_deduped,
                "by_source": dict(self.cells_by_source),
            },
            "incidents": {
                "corrupt_cache_entries": summary.get("corrupt_cache_entries", 0),
                "pool_restarts": summary.get("pool_restarts", 0),
            },
            "pool_starts": scheduler.pool_starts(),
            "summary": summary,
        }
