"""Stdlib client for the exploration service.

:class:`ServiceClient` speaks the wire schema over
:class:`http.client.HTTPConnection` — one connection per request, which
matches the server's ``Connection: close`` discipline.  Backpressure is
first-class: a saturated server raises :class:`ServiceSaturated`
carrying the server's ``Retry-After`` hint, and :meth:`query` can
honour it automatically (``retries``).
"""

import http.client
import json
import random
import time

from repro.service import wire

#: Ceiling on the jittered backoff above the server's hint.  The hint
#: itself is always honoured — a server declaring a 2-minute window
#: closed must not be retried after 30 seconds.
RETRY_DELAY_CAP = 30.0


def retry_delay(hint, previous=None, rng=None):
    """One decorrelated-jitter retry delay honouring ``Retry-After``.

    A fixed backoff synchronizes clients: N of them rejected by one
    admission window all sleep the same hint and thunder-herd the next
    window together.  Decorrelated jitter (AWS architecture blog's
    variant) spreads them out: each delay is drawn uniformly from
    ``[hint, max(hint, 3 * previous)]``, so retries never undercut the
    server's hint, desynchronize immediately, and back off
    geometrically on repeated rejections.  :data:`RETRY_DELAY_CAP`
    bounds only the jittered growth — the returned delay is never below
    ``hint``, even when the hint itself exceeds the cap.

    ``rng`` is the uniform sampler (injectable for tests); ``previous``
    is the prior attempt's delay, ``None`` on the first.
    """
    draw = rng if rng is not None else random.uniform
    previous = hint if previous is None else previous
    jittered = min(RETRY_DELAY_CAP, draw(hint, max(hint, 3.0 * previous)))
    return max(hint, jittered)


class ServiceResponseError(Exception):
    """A non-success HTTP response from the service."""

    def __init__(self, status, detail):
        super().__init__("service responded {}: {}".format(status, detail))
        self.status = status
        self.detail = detail


class ServiceSaturated(ServiceResponseError):
    """HTTP 429 — admission queue full; retry after ``retry_after``."""

    def __init__(self, detail, retry_after):
        super().__init__(429, detail)
        self.retry_after = retry_after


class ServiceQueryError(ServiceResponseError):
    """A query answered 200 but one or more cells carry an error."""

    def __init__(self, errors):
        super().__init__(
            200, "{} cell(s) failed: {}".format(len(errors), "; ".join(errors))
        )
        self.errors = errors


class ServiceClient:
    """A client bound to one service endpoint."""

    def __init__(self, host="127.0.0.1", port=0, timeout=120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method, path, payload=None, timeout=None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = wire.canonical_json(payload)
                headers = {"Content-Type": "application/json"}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return response.status, dict(response.getheaders()), data
        finally:
            connection.close()

    @staticmethod
    def _decode(data):
        return json.loads(data.decode("utf-8")) if data else None

    def query_raw(self, cells, scale=1.0, estimate=False):
        """One ``POST /query``; returns ``(status, headers, payload)``."""
        status, headers, data = self._request(
            "POST", "/query", wire.encode_query(cells, scale, estimate=estimate)
        )
        return status, headers, self._decode(data)

    def query(self, cells, scale=1.0, retries=0, allow_errors=False, estimate=False):
        """Submit ``cells`` and return the decoded response.

        Retries up to ``retries`` times on 429, sleeping a
        decorrelated-jitter delay seeded by the server's
        ``Retry-After`` hint between attempts (see
        :func:`retry_delay`).  Raises
        :class:`ServiceQueryError` when any cell failed, unless
        ``allow_errors`` is set (degraded batches then surface per-cell
        errors in the returned payload instead).  With ``estimate`` the
        cells are answered analytically (``source=estimated``, an
        ``estimate`` object instead of ``stats``).
        """
        attempts = 0
        delay = None
        while True:
            status, headers, payload = self.query_raw(
                cells, scale, estimate=estimate
            )
            if status == 429:
                retry_after = float(
                    headers.get("Retry-After")
                    or (payload or {}).get("retry_after", 0.5)
                )
                if attempts >= retries:
                    raise ServiceSaturated(
                        (payload or {}).get("error", "saturated"), retry_after
                    )
                attempts += 1
                delay = retry_delay(retry_after, delay)
                time.sleep(delay)
                continue
            if status != 200:
                raise ServiceResponseError(
                    status, (payload or {}).get("error", "unexpected response")
                )
            if not allow_errors:
                errors = [
                    "{}/{}: {}".format(r["workload"], r["spec"], r["error"])
                    for r in payload["results"]
                    if r["source"] == wire.SOURCE_ERROR
                ]
                if errors:
                    raise ServiceQueryError(errors)
            return payload

    def healthz(self):
        """The decoded ``GET /healthz`` payload."""
        status, _, data = self._request("GET", "/healthz")
        payload = self._decode(data)
        if status != 200:
            raise ServiceResponseError(status, payload)
        return payload

    def wait_ready(self, timeout=30.0, interval=0.05):
        """Poll ``/healthz`` until the service answers (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (OSError, ServiceResponseError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    def shutdown(self):
        """Ask the service to drain (``POST /shutdown``)."""
        status, _, data = self._request("POST", "/shutdown")
        payload = self._decode(data)
        if status != 202:
            raise ServiceResponseError(status, payload)
        return payload

    def events(self, follow=False, timeout=None):
        """Iterate the ``GET /events`` JSONL stream as dicts.

        With ``follow`` the iterator runs until the service drains (or
        the read times out); without it, the currently buffered events
        are yielded and the stream closes.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            connection.request(
                "GET", "/events" if follow else "/events?follow=0"
            )
            response = connection.getresponse()
            if response.status != 200:
                raise ServiceResponseError(response.status, response.read())
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()
