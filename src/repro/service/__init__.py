"""Always-on policy-exploration service.

Turns the warm worker pool, batched grid scheduler, and
content-addressed caches of :mod:`repro.experiments` into a long-lived
asyncio service: clients submit ``(workload, policy-spec,
machine-config, scale)`` cells over local HTTP/JSON, concurrent
requests coalesce into one cost-scheduled grid, cache hits are
answered inline without pool dispatch, progress streams as JSONL, and
saturation produces explicit backpressure (HTTP 429 + ``Retry-After``)
instead of unbounded queueing.

Layering::

    client.ServiceClient ── HTTP/JSON ──► server.ExplorationService
                                              │  admission.AdmissionController
                                              ▼
                                          engine.ExplorationEngine
                                              │  (per-scale ParallelExperimentRunner)
                                              ▼
                              experiments.scheduler (warm pool, cost chunks)

Results are byte-identical to the direct serial
:class:`~repro.experiments.runner.ExperimentRunner` — batching,
caching, and fault recovery are invisible in the stats.
"""

from repro.service.admission import (
    AdmissionController,
    QueuedQuery,
    QueueSaturated,
    ServiceDraining,
    ServiceError,
)
from repro.service.client import (
    ServiceClient,
    ServiceQueryError,
    ServiceResponseError,
    ServiceSaturated,
)
from repro.service.engine import ExplorationEngine, merge_summary_dicts
from repro.service.server import ExplorationService
from repro.service.wire import (
    MAX_CELLS_PER_QUERY,
    WIRE_SCHEMA_VERSION,
    Cell,
    WireError,
    canonical_json,
    decode_config,
    decode_query,
    encode_config,
    encode_query,
    encode_stats,
)

__all__ = [
    "AdmissionController",
    "Cell",
    "ExplorationEngine",
    "ExplorationService",
    "MAX_CELLS_PER_QUERY",
    "QueueSaturated",
    "QueuedQuery",
    "ServiceClient",
    "ServiceDraining",
    "ServiceError",
    "ServiceQueryError",
    "ServiceResponseError",
    "ServiceSaturated",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "canonical_json",
    "decode_config",
    "decode_query",
    "encode_config",
    "encode_query",
    "encode_stats",
    "merge_summary_dicts",
]
