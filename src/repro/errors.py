"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single exception type at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AssemblyError(ReproError):
    """Raised when assembly text cannot be assembled into a program."""

    def __init__(self, message, line_number=None):
        if line_number is not None:
            message = "line {}: {}".format(line_number, message)
        super().__init__(message)
        self.line_number = line_number


class ExecutionError(ReproError):
    """Raised when the functional simulator encounters an illegal state."""


class CFGError(ReproError):
    """Raised when a control flow graph is malformed or a query is invalid."""


class AnalysisError(ReproError):
    """Raised when a static analysis cannot be computed."""


class ConfigurationError(ReproError):
    """Raised when a machine or experiment configuration is inconsistent."""


class SimulationError(ReproError):
    """Raised when the cycle-level simulator reaches an inconsistent state."""
