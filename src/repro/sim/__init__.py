"""Functional (architectural) simulation and dynamic traces."""

from repro.sim.functional import (
    DEFAULT_MAX_INSTRUCTIONS,
    FunctionalSimulator,
    MachineState,
    run_program,
)
from repro.sim.limits import LimitStudyResult, limit_study, limit_study_for_workload
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "FunctionalSimulator",
    "MachineState",
    "run_program",
    "Trace",
    "TraceRecord",
    "DEFAULT_MAX_INSTRUCTIONS",
    "LimitStudyResult",
    "limit_study",
    "limit_study_for_workload",
]
