"""Functional (architectural) simulation and dynamic traces."""

from repro.sim.functional import (
    DEFAULT_MAX_INSTRUCTIONS,
    FunctionalSimulator,
    MachineState,
    run_program,
)
from repro.sim.limits import LimitStudyResult, limit_study, limit_study_for_workload
from repro.sim.predecode import DecodedTrace, decode_program, decode_trace
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "FunctionalSimulator",
    "MachineState",
    "run_program",
    "Trace",
    "TraceRecord",
    "DecodedTrace",
    "decode_trace",
    "decode_program",
    "DEFAULT_MAX_INSTRUCTIONS",
    "LimitStudyResult",
    "limit_study",
    "limit_study_for_workload",
]
