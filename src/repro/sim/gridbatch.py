"""Tier B of the grid execution stack: the grid-batch lockstep runner.

The per-cell dispatch path pays fixed costs once per grid cell: a
``build_core`` (hint-table materialization, block-table binding), a
warm-cache replay over the whole trace, and — on the pooled path — a
pickle round-trip per chunk.  For the synthesized catalog those fixed
costs rival the simulations themselves: thousands of *same-scale*
cells, each retiring a few thousand instructions.

This module batches them.  :func:`run_batch` takes one chunk of plain
cells (no metrics, no trace file, no event bus — exactly the cells the
event-calendar kernel accepts) and:

* **shares warm state per trace** — the first cell of each
  (workload, machine geometry) group runs the O(trace) warm-cache
  replay via :meth:`~repro.polyflow.core.PolyFlowCore.prewarm`; its
  siblings adopt the resulting hierarchy snapshot with
  :meth:`~repro.polyflow.core.PolyFlowCore.install_warm_state`, which
  is byte-identical to replaying on their own;
* **advances live cells in lockstep** — every cell's
  :meth:`~repro.polyflow.core.PolyFlowCore.run_incremental` generator
  is stepped round-robin, :data:`DEFAULT_STRIDE` calendar events at a
  time, and finished cells retire from the rotation immediately (a
  straggler never holds idle siblings' memory live longer than its own
  run);
* **keeps per-cell accounting exact** — each generator step advances
  exactly one cell, so wall-clock seconds and block-cache counter
  movement are measured around the steps themselves rather than
  apportioned from a batch total.

Statistics are **byte-identical** to the per-cell path: the lockstep
driver only changes *when* each cell's next slice of work runs, never
what it computes (pinned by the property tests in
``tests/properties/test_gridbatch_identity.py``).

The runner is on by default behind the ``REPRO_GRIDBATCH`` environment
flag (``0`` disables it); cells that carry observability instruments
always take the per-cell path, batch or no batch.
"""

import os
import time

#: Event-calendar steps each cell advances per lockstep turn.  Large
#: enough that generator suspension cost is noise, small enough that a
#: 50-cell batch rotates several times per typical catalog trace.
DEFAULT_STRIDE = 4096

#: Fewer plain cells than this run per-cell: batching cannot amortize
#: anything over a single simulation.
MIN_BATCH_CELLS = 2

#: Traces shorter than this warm lazily even when siblings share the
#: trace: the warm-cache replay is O(trace) but a snapshot restore is
#: O(cache geometry) (~0.4ms on the paper configuration), so sharing
#: only wins once the replay dwarfs the restore.  Measured crossover
#: on the paper geometry is in the low thousands of instructions.
WARM_SHARE_MIN_TRACE = 4096


def gridbatch_enabled():
    """Whether the grid-batch runner is enabled (``REPRO_GRIDBATCH``).

    On by default; set ``REPRO_GRIDBATCH=0`` to force the per-cell
    dispatch path (the identity tests and the benchmark's per-cell
    baseline leg do).
    """
    return os.environ.get("REPRO_GRIDBATCH", "1") != "0"


def batchable(emit_metrics, trace_file=None, bus=None):
    """Whether one cell may join a lockstep batch.

    Instrumented cells (metrics aggregators, lifecycle trace files,
    caller-provided buses) keep the per-cell path: their sinks assume
    one simulation owns the process-global observability stream at a
    time.
    """
    return not emit_metrics and trace_file is None and bus is None


class _BatchCell:
    """One in-flight cell: its core, generator, and accounting."""

    __slots__ = ("core", "generator", "seconds", "blocks", "stats")

    def __init__(self, core, generator, seconds, blocks):
        self.core = core
        self.generator = generator
        self.seconds = seconds
        self.blocks = blocks
        self.stats = None


def _merge_blocks(into, delta):
    for key, value in delta.items():
        into[key] = into.get(key, 0) + value


def run_batch(jobs, scale, stride=DEFAULT_STRIDE):
    """Run plain cells in lockstep; one outcome tuple per job, aligned.

    ``jobs`` is a list of ``(name, spec, config, profile_distance)``
    tuples; the return value is the aligned list of
    ``(stats, None, seconds, blocks)`` outcomes —  the same shape
    :func:`repro.experiments.scheduler.execute_job` reports for a
    plain cell, so callers book batch results through the exact same
    path.
    """
    from repro.experiments.runner import build_core
    from repro.polyflow.config import config_fingerprint
    from repro.sim.blocks import cache_counters, counters_delta

    cells = []
    keys = []
    for name, spec, config, profile_distance in jobs:
        started = time.perf_counter()
        before = cache_counters()
        core = build_core(name, spec, scale, config, profile_distance)
        keys.append((name, config_fingerprint(core.config)))
        cells.append(
            _BatchCell(
                core,
                core.run_incremental(stride),
                time.perf_counter() - started,
                counters_delta(before),
            )
        )

    # One warm-cache replay per (trace, machine geometry) *group*: the
    # first cell replays via prewarm and its siblings adopt the LRU
    # snapshot, which restores byte-identical state.  A cell with no
    # sibling — or one whose trace is too short for the replay to cost
    # more than a snapshot restore — warms lazily inside its first
    # lockstep step instead: snapshotting a hierarchy nobody reuses
    # (or one cheaper to rebuild than restore) is pure overhead.
    key_counts = {}
    for key in keys:
        key_counts[key] = key_counts.get(key, 0) + 1
    warm_snapshots = {}
    for key, cell in zip(keys, cells):
        if key_counts[key] < 2 or len(cell.core.trace) < WARM_SHARE_MIN_TRACE:
            continue
        started = time.perf_counter()
        snapshot = warm_snapshots.get(key)
        if snapshot is None:
            warm_snapshots[key] = cell.core.prewarm()
        else:
            cell.core.install_warm_state(snapshot)
        cell.seconds += time.perf_counter() - started

    # Lockstep rotation: pop, advance one stride, re-append while live.
    # Steps are sequential, so measuring around each step attributes
    # seconds and block-counter movement to exactly one cell.
    live = list(cells)
    while live:
        still_running = []
        for cell in live:
            started = time.perf_counter()
            before = cache_counters()
            try:
                next(cell.generator)
            except StopIteration:
                cell.stats = cell.core.stats
            else:
                still_running.append(cell)
            cell.seconds += time.perf_counter() - started
            _merge_blocks(cell.blocks, counters_delta(before))
        live = still_running
    return [(cell.stats, None, cell.seconds, cell.blocks) for cell in cells]
