"""Dynamic trace records produced by the functional simulator.

The cycle-level PolyFlow model is trace-driven: the functional simulator
executes the program architecturally and emits one :class:`TraceRecord`
per committed instruction.  Each record carries the information the
timing model needs:

* the static :class:`~repro.isa.instructions.Instruction`,
* the dynamic control-flow outcome (``next_pc``, ``taken``),
* the memory footprint of loads/stores (word-granularity chunk keys),
* exact producer edges: for every source register (and for the memory
  value read by a load) the sequence number of the producing dynamic
  instruction, or ``-1`` when the value predates the trace.

The paper's simulator is execution-driven but also trace-assisted ("the
Task Spawn Unit uses a trace to ensure that tasks are not spawned too
far into the future"); see DESIGN.md section 6 for why a trace-driven
timing model preserves the evaluated behaviour.
"""


class TraceRecord:
    """One committed dynamic instruction."""

    __slots__ = (
        "seq",
        "inst",
        "next_pc",
        "taken",
        "mem_keys",
        "mem_dep",
        "reg_deps",
    )

    def __init__(self, seq, inst, next_pc, taken, mem_keys, mem_dep, reg_deps):
        self.seq = seq
        self.inst = inst
        self.next_pc = next_pc
        self.taken = taken
        #: Tuple of word-aligned chunk keys (address >> 3) touched by a
        #: memory access; empty for non-memory instructions.
        self.mem_keys = mem_keys
        #: Sequence number of the youngest store this load reads from,
        #: or -1 (also -1 for non-loads).
        self.mem_dep = mem_dep
        #: Tuple of producer sequence numbers, one per source register
        #: (-1 when the register was last written before the trace began).
        self.reg_deps = reg_deps

    @property
    def pc(self):
        """Address of the instruction."""
        return self.inst.pc

    def __repr__(self):
        return "TraceRecord(seq={}, pc={:#x})".format(self.seq, self.inst.pc)


class Trace:
    """A committed-path dynamic trace plus cross-record indexes."""

    def __init__(self, records, halted):
        self.records = records
        #: Whether the program reached HALT (as opposed to hitting the
        #: instruction budget).
        self.halted = halted
        self._decoded = None

    def decoded(self):
        """The flat :class:`~repro.sim.predecode.DecodedTrace` view.

        Computed on first use and shared by every timing simulation of
        this trace (the records are immutable once emitted).
        """
        if self._decoded is None:
            from repro.sim.predecode import decode_trace

            self._decoded = decode_trace(self)
        return self._decoded

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def dynamic_pcs(self):
        """Yield the PC of every committed instruction, in order."""
        for record in self.records:
            yield record.inst.pc

    def slice_after(self, skip):
        """A new trace dropping the first ``skip`` records (fast-forward).

        Sequence numbers are rebased to zero; producer edges that point
        into the dropped prefix become -1 (the value is architecturally
        available before the measured region begins, exactly like the
        paper's fast-forwarded initialization phase).
        """
        if skip <= 0:
            return Trace(list(self.records), self.halted)
        sliced = []
        for record in self.records[skip:]:
            reg_deps = tuple(
                producer - skip if producer >= skip else -1
                for producer in record.reg_deps
            )
            mem_dep = record.mem_dep - skip if record.mem_dep >= skip else -1
            sliced.append(
                TraceRecord(
                    record.seq - skip,
                    record.inst,
                    record.next_pc,
                    record.taken,
                    record.mem_keys,
                    mem_dep,
                    reg_deps,
                )
            )
        return Trace(sliced, self.halted)

    def index_of_first(self, pc, after=-1):
        """Index of the first committed instance of ``pc`` past ``after``,
        or -1 when it never commits again."""
        for index in range(after + 1, len(self.records)):
            if self.records[index].inst.pc == pc:
                return index
        return -1

    def instruction_mix(self):
        """Return counts of {'load','store','branch','call','other'}."""
        mix = {"load": 0, "store": 0, "branch": 0, "call": 0, "other": 0}
        for record in self.records:
            inst = record.inst
            if inst.is_load:
                mix["load"] += 1
            elif inst.is_store:
                mix["store"] += 1
            elif inst.is_conditional_branch:
                mix["branch"] += 1
            elif inst.is_call:
                mix["call"] += 1
            else:
                mix["other"] += 1
        return mix
