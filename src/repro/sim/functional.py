"""Architectural (functional) simulator for the repro ISA.

Executes a :class:`~repro.isa.program.Program` to completion (or to an
instruction budget) and produces the committed-path
:class:`~repro.sim.trace.Trace` that drives the timing models.  The
paper's simulator compares out-of-order results against an architectural
simulator at retirement; here the architectural simulator is the single
source of truth and the timing models replay its trace.
"""

from repro.errors import ExecutionError
from repro.isa.instructions import INSTRUCTION_BYTES, NUM_REGISTERS, Opcode
from repro.sim.trace import Trace, TraceRecord

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63

#: Default cap on executed instructions, to catch runaway programs.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


def _to_signed(value):
    """Interpret a 64-bit pattern as a signed integer."""
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        return value - (1 << 64)
    return value


class MachineState:
    """Architectural register file and byte-addressed memory."""

    def __init__(self, program):
        self.registers = [0] * NUM_REGISTERS
        self.memory = dict(program.data_image)
        self.pc = program.entry_point

    def read_register(self, index):
        """Return the 64-bit value of register ``index``."""
        return self.registers[index]

    def write_register(self, index, value):
        """Write ``value`` to register ``index`` (writes to r0 discard)."""
        if index != 0:
            self.registers[index] = value & _WORD_MASK

    def load(self, address, nbytes, signed=True):
        """Load ``nbytes`` little-endian bytes from ``address``."""
        memory = self.memory
        value = 0
        for offset in range(nbytes):
            value |= memory.get(address + offset, 0) << (8 * offset)
        if signed and value & (1 << (8 * nbytes - 1)):
            value -= 1 << (8 * nbytes)
        return value & _WORD_MASK

    def store(self, address, value, nbytes):
        """Store the low ``nbytes`` bytes of ``value`` at ``address``."""
        memory = self.memory
        for offset in range(nbytes):
            memory[address + offset] = (value >> (8 * offset)) & 0xFF


def _chunk_keys(address, nbytes):
    """Word-aligned chunk keys covering [address, address + nbytes)."""
    first = address >> 3
    last = (address + nbytes - 1) >> 3
    if first == last:
        return (first,)
    return tuple(range(first, last + 1))


class FunctionalSimulator:
    """Executes programs and emits committed-path traces."""

    def __init__(self, program, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
        self.program = program
        self.max_instructions = max_instructions

    def run(self):
        """Execute the program and return its :class:`Trace`.

        Raises:
            ExecutionError: On an invalid PC, a memory access outside the
                positive address space, or other illegal behaviour.
        """
        program = self.program
        state = MachineState(program)
        registers = state.registers
        fetch = program.fetch

        records = []
        append = records.append
        reg_last_writer = [-1] * NUM_REGISTERS
        mem_last_writer = {}

        pc = state.pc
        seq = 0
        halted = False
        max_instructions = self.max_instructions

        while seq < max_instructions:
            inst = fetch(pc)
            opcode = inst.opcode
            next_pc = pc + INSTRUCTION_BYTES
            taken = False
            mem_keys = ()
            mem_dep = -1

            if opcode <= Opcode.SRL:  # ALU register-register
                a = registers[inst.rs]
                b = registers[inst.rt]
                if opcode == Opcode.ADD:
                    value = a + b
                elif opcode == Opcode.SUB:
                    value = a - b
                elif opcode == Opcode.MUL:
                    value = _to_signed(a) * _to_signed(b)
                elif opcode == Opcode.AND:
                    value = a & b
                elif opcode == Opcode.OR:
                    value = a | b
                elif opcode == Opcode.XOR:
                    value = a ^ b
                elif opcode == Opcode.SLT:
                    value = 1 if _to_signed(a) < _to_signed(b) else 0
                elif opcode == Opcode.SLL:
                    value = a << (b & 63)
                else:  # SRL
                    value = a >> (b & 63)
                if inst.rd:
                    registers[inst.rd] = value & _WORD_MASK
            elif opcode <= Opcode.SRLI:  # ALU register-immediate
                a = registers[inst.rs]
                imm = inst.imm
                if opcode == Opcode.ADDI:
                    value = a + imm
                elif opcode == Opcode.ANDI:
                    value = a & imm
                elif opcode == Opcode.ORI:
                    value = a | imm
                elif opcode == Opcode.XORI:
                    value = a ^ imm
                elif opcode == Opcode.SLTI:
                    value = 1 if _to_signed(a) < imm else 0
                elif opcode == Opcode.SLLI:
                    value = a << (imm & 63)
                else:  # SRLI
                    value = a >> (imm & 63)
                if inst.rd:
                    registers[inst.rd] = value & _WORD_MASK
            elif opcode == Opcode.LUI:
                if inst.rd:
                    registers[inst.rd] = (inst.imm << 16) & _WORD_MASK
            elif inst.is_load:
                address = (registers[inst.rs] + inst.imm) & _WORD_MASK
                nbytes = 8 if opcode == Opcode.LW else (2 if opcode == Opcode.LH else 1)
                value = state.load(address, nbytes)
                if inst.rd:
                    registers[inst.rd] = value
                mem_keys = _chunk_keys(address, nbytes)
                for key in mem_keys:
                    writer = mem_last_writer.get(key, -1)
                    if writer > mem_dep:
                        mem_dep = writer
            elif inst.is_store:
                address = (registers[inst.rs] + inst.imm) & _WORD_MASK
                nbytes = 8 if opcode == Opcode.SW else (2 if opcode == Opcode.SH else 1)
                state.store(address, registers[inst.rt], nbytes)
                mem_keys = _chunk_keys(address, nbytes)
                for key in mem_keys:
                    mem_last_writer[key] = seq
            elif inst.is_conditional_branch:
                a = _to_signed(registers[inst.rs])
                if opcode == Opcode.BEQ:
                    taken = registers[inst.rs] == registers[inst.rt]
                elif opcode == Opcode.BNE:
                    taken = registers[inst.rs] != registers[inst.rt]
                elif opcode == Opcode.BGEZ:
                    taken = a >= 0
                elif opcode == Opcode.BGTZ:
                    taken = a > 0
                elif opcode == Opcode.BLEZ:
                    taken = a <= 0
                else:  # BLTZ
                    taken = a < 0
                if taken:
                    next_pc = inst.target
            elif opcode == Opcode.J:
                next_pc = inst.target
                taken = True
            elif opcode == Opcode.JAL:
                registers[31] = next_pc
                next_pc = inst.target
                taken = True
            elif opcode == Opcode.JR:
                next_pc = registers[inst.rs]
                taken = True
            elif opcode == Opcode.JALR:
                target = registers[inst.rs]
                registers[31] = next_pc
                next_pc = target
                taken = True
            elif opcode == Opcode.NOP:
                pass
            elif opcode == Opcode.HALT:
                halted = True
            else:  # pragma: no cover - all opcodes handled above
                raise ExecutionError("unimplemented opcode {!r}".format(opcode))

            # Producer edges for the timing models.
            rs = inst.rs
            rt = inst.rt
            if rs is None:
                reg_deps = ()
            elif rt is None:
                reg_deps = (reg_last_writer[rs],)
            else:
                reg_deps = (reg_last_writer[rs], reg_last_writer[rt])

            append(TraceRecord(seq, inst, next_pc, taken, mem_keys, mem_dep, reg_deps))

            destination = inst.rd
            if destination:  # r0 writes are discarded
                reg_last_writer[destination] = seq

            if halted:
                seq += 1
                break
            pc = next_pc
            seq += 1

        self.final_state = state
        return Trace(records, halted)


def run_program(program, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
    """Execute ``program`` and return its committed-path :class:`Trace`."""
    return FunctionalSimulator(program, max_instructions).run()
