"""Architectural (functional) simulator for the repro ISA.

Executes a :class:`~repro.isa.program.Program` to completion (or to an
instruction budget) and produces the committed-path
:class:`~repro.sim.trace.Trace` that drives the timing models.  The
paper's simulator compares out-of-order results against an architectural
simulator at retirement; here the architectural simulator is the single
source of truth and the timing models replay its trace.

That single trace anchors the whole engine stack: the two functional
engines here (per-instruction and block-at-a-time) must emit identical
records, and downstream the timing side's staged, fused, and
event-calendar engines (:mod:`repro.polyflow.event_kernel`) must replay
those records into identical event streams.  The differential suites
pin every pairing, so any engine may be swapped per run without
observable effect.
"""

from repro.errors import ExecutionError
from repro.isa.instructions import INSTRUCTION_BYTES, NUM_REGISTERS, Opcode
from repro.sim.blocks import engine_enabled_default, program_blocks_for
from repro.sim.predecode import decode_program
from repro.sim.trace import Trace, TraceRecord

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63

# Plain-int opcode constants: the interpreter dispatches on these to
# avoid IntEnum comparison overhead in the per-instruction loop.  The
# Opcode values are contiguous, so range checks select operand classes.
_ADD = int(Opcode.ADD)
_SUB = int(Opcode.SUB)
_MUL = int(Opcode.MUL)
_AND = int(Opcode.AND)
_OR = int(Opcode.OR)
_XOR = int(Opcode.XOR)
_SLT = int(Opcode.SLT)
_SLL = int(Opcode.SLL)
_SRL = int(Opcode.SRL)
_ADDI = int(Opcode.ADDI)
_ANDI = int(Opcode.ANDI)
_ORI = int(Opcode.ORI)
_XORI = int(Opcode.XORI)
_SLTI = int(Opcode.SLTI)
_SLLI = int(Opcode.SLLI)
_SRLI = int(Opcode.SRLI)
_LUI = int(Opcode.LUI)
_LW = int(Opcode.LW)
_LH = int(Opcode.LH)
_LB = int(Opcode.LB)
_SW = int(Opcode.SW)
_SH = int(Opcode.SH)
_SB = int(Opcode.SB)
_BEQ = int(Opcode.BEQ)
_BNE = int(Opcode.BNE)
_BGEZ = int(Opcode.BGEZ)
_BGTZ = int(Opcode.BGTZ)
_BLEZ = int(Opcode.BLEZ)
_BLTZ = int(Opcode.BLTZ)
_J = int(Opcode.J)
_JAL = int(Opcode.JAL)
_JR = int(Opcode.JR)
_JALR = int(Opcode.JALR)
_NOP = int(Opcode.NOP)
_HALT = int(Opcode.HALT)

#: Default cap on executed instructions, to catch runaway programs.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


def _to_signed(value):
    """Interpret a 64-bit pattern as a signed integer."""
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        return value - (1 << 64)
    return value


class MachineState:
    """Architectural register file and byte-addressed memory."""

    def __init__(self, program):
        self.registers = [0] * NUM_REGISTERS
        self.memory = dict(program.data_image)
        self.pc = program.entry_point

    def read_register(self, index):
        """Return the 64-bit value of register ``index``."""
        return self.registers[index]

    def write_register(self, index, value):
        """Write ``value`` to register ``index`` (writes to r0 discard)."""
        if index != 0:
            self.registers[index] = value & _WORD_MASK

    def load(self, address, nbytes, signed=True):
        """Load ``nbytes`` little-endian bytes from ``address``."""
        memory = self.memory
        value = 0
        for offset in range(nbytes):
            value |= memory.get(address + offset, 0) << (8 * offset)
        if signed and value & (1 << (8 * nbytes - 1)):
            value -= 1 << (8 * nbytes)
        return value & _WORD_MASK

    def store(self, address, value, nbytes):
        """Store the low ``nbytes`` bytes of ``value`` at ``address``."""
        memory = self.memory
        for offset in range(nbytes):
            memory[address + offset] = (value >> (8 * offset)) & 0xFF


def _chunk_keys(address, nbytes):
    """Word-aligned chunk keys covering [address, address + nbytes)."""
    first = address >> 3
    last = (address + nbytes - 1) >> 3
    if first == last:
        return (first,)
    return tuple(range(first, last + 1))


class FunctionalSimulator:
    """Executes programs and emits committed-path traces."""

    def __init__(self, program, max_instructions=DEFAULT_MAX_INSTRUCTIONS, block_engine=None):
        self.program = program
        self.max_instructions = max_instructions
        self.block_engine = block_engine

    def run(self):
        """Execute the program and return its :class:`Trace`.

        The interpreter walks the pre-decoded flat operand records of
        :func:`~repro.sim.predecode.decode_program`, so the hot loop
        dispatches on plain ints and never touches instruction
        attributes.  With the block engine enabled (the default; see
        :mod:`repro.sim.blocks`), straight-line runs are executed from
        compiled per-PC blocks, eliding the per-instruction fetch
        lookup; the committed trace is identical either way.

        Raises:
            ExecutionError: On an invalid PC, a memory access outside the
                positive address space, or other illegal behaviour.
        """
        block_engine = self.block_engine
        if block_engine is None:
            block_engine = engine_enabled_default()
        if block_engine:
            return self._run_blocks()
        return self._run_instructions()

    def _run_instructions(self):
        """Per-instruction reference engine (block engine disabled)."""
        program = self.program
        state = MachineState(program)
        registers = state.registers
        decoded = decode_program(program)
        fetch_entry = decoded.get
        load = state.load
        store = state.store

        records = []
        append = records.append
        reg_last_writer = [-1] * NUM_REGISTERS
        mem_last_writer = {}
        last_mem_writer = mem_last_writer.get

        pc = state.pc
        seq = 0
        halted = False
        max_instructions = self.max_instructions

        while seq < max_instructions:
            entry = fetch_entry(pc)
            if entry is None:
                raise ExecutionError("fetch from invalid PC {:#x}".format(pc))
            opcode, rd, rs, rt, imm, target, nsrc, inst = entry
            next_pc = pc + INSTRUCTION_BYTES
            taken = False
            mem_keys = ()
            mem_dep = -1

            if opcode <= _SRL:  # ALU register-register
                a = registers[rs]
                b = registers[rt]
                if opcode == _ADD:
                    value = a + b
                elif opcode == _SUB:
                    value = a - b
                elif opcode == _MUL:
                    value = _to_signed(a) * _to_signed(b)
                elif opcode == _AND:
                    value = a & b
                elif opcode == _OR:
                    value = a | b
                elif opcode == _XOR:
                    value = a ^ b
                elif opcode == _SLT:
                    value = 1 if _to_signed(a) < _to_signed(b) else 0
                elif opcode == _SLL:
                    value = a << (b & 63)
                else:  # SRL
                    value = a >> (b & 63)
                if rd:
                    registers[rd] = value & _WORD_MASK
            elif opcode <= _SRLI:  # ALU register-immediate
                a = registers[rs]
                if opcode == _ADDI:
                    value = a + imm
                elif opcode == _ANDI:
                    value = a & imm
                elif opcode == _ORI:
                    value = a | imm
                elif opcode == _XORI:
                    value = a ^ imm
                elif opcode == _SLTI:
                    value = 1 if _to_signed(a) < imm else 0
                elif opcode == _SLLI:
                    value = a << (imm & 63)
                else:  # SRLI
                    value = a >> (imm & 63)
                if rd:
                    registers[rd] = value & _WORD_MASK
            elif opcode == _LUI:
                if rd:
                    registers[rd] = (imm << 16) & _WORD_MASK
            elif opcode <= _LB:  # loads
                address = (registers[rs] + imm) & _WORD_MASK
                nbytes = 8 if opcode == _LW else (2 if opcode == _LH else 1)
                value = load(address, nbytes)
                if rd:
                    registers[rd] = value
                first = address >> 3
                last = (address + nbytes - 1) >> 3
                mem_keys = (first,) if first == last else tuple(range(first, last + 1))
                for key in mem_keys:
                    writer = last_mem_writer(key, -1)
                    if writer > mem_dep:
                        mem_dep = writer
            elif opcode <= _SB:  # stores
                address = (registers[rs] + imm) & _WORD_MASK
                nbytes = 8 if opcode == _SW else (2 if opcode == _SH else 1)
                store(address, registers[rt], nbytes)
                first = address >> 3
                last = (address + nbytes - 1) >> 3
                mem_keys = (first,) if first == last else tuple(range(first, last + 1))
                for key in mem_keys:
                    mem_last_writer[key] = seq
            elif opcode <= _BLTZ:  # conditional branches
                if opcode == _BEQ:
                    taken = registers[rs] == registers[rt]
                elif opcode == _BNE:
                    taken = registers[rs] != registers[rt]
                else:
                    a = _to_signed(registers[rs])
                    if opcode == _BGEZ:
                        taken = a >= 0
                    elif opcode == _BGTZ:
                        taken = a > 0
                    elif opcode == _BLEZ:
                        taken = a <= 0
                    else:  # BLTZ
                        taken = a < 0
                if taken:
                    next_pc = target
            elif opcode == _J:
                next_pc = target
                taken = True
            elif opcode == _JAL:
                registers[31] = next_pc
                next_pc = target
                taken = True
            elif opcode == _JR:
                next_pc = registers[rs]
                taken = True
            elif opcode == _JALR:
                jump_to = registers[rs]
                registers[31] = next_pc
                next_pc = jump_to
                taken = True
            elif opcode == _NOP:
                pass
            elif opcode == _HALT:
                halted = True
            else:  # pragma: no cover - all opcodes handled above
                raise ExecutionError("unimplemented opcode {!r}".format(opcode))

            # Producer edges for the timing models.
            if nsrc == 0:
                reg_deps = ()
            elif nsrc == 1:
                reg_deps = (reg_last_writer[rs],)
            else:
                reg_deps = (reg_last_writer[rs], reg_last_writer[rt])

            append(TraceRecord(seq, inst, next_pc, taken, mem_keys, mem_dep, reg_deps))

            if rd:  # r0 writes are discarded
                reg_last_writer[rd] = seq

            if halted:
                seq += 1
                break
            pc = next_pc
            seq += 1

        self.final_state = state
        return Trace(records, halted)

    def _run_blocks(self):
        """Block-at-a-time engine: executes compiled straight-line
        blocks (:class:`~repro.sim.blocks.ProgramBlocks`), skipping the
        per-instruction fetch lookup.  Committed semantics — trace
        records, producer edges, halt/budget behaviour, and error
        messages — match :meth:`_run_instructions` exactly."""
        program = self.program
        state = MachineState(program)
        registers = state.registers
        block_at = program_blocks_for(program).block_at
        load = state.load
        store = state.store

        records = []
        append = records.append
        reg_last_writer = [-1] * NUM_REGISTERS
        mem_last_writer = {}
        last_mem_writer = mem_last_writer.get

        pc = state.pc
        seq = 0
        halted = False
        max_instructions = self.max_instructions

        while seq < max_instructions:
            block = block_at(pc)
            if block is None:
                raise ExecutionError("fetch from invalid PC {:#x}".format(pc))
            if seq + len(block) > max_instructions:
                block = block[: max_instructions - seq]
            for entry in block:
                opcode, rd, rs, rt, imm, target, nsrc, inst, next_pc = entry
                taken = False
                mem_keys = ()
                mem_dep = -1

                if opcode <= _SRL:  # ALU register-register
                    a = registers[rs]
                    b = registers[rt]
                    if opcode == _ADD:
                        value = a + b
                    elif opcode == _SUB:
                        value = a - b
                    elif opcode == _MUL:
                        value = _to_signed(a) * _to_signed(b)
                    elif opcode == _AND:
                        value = a & b
                    elif opcode == _OR:
                        value = a | b
                    elif opcode == _XOR:
                        value = a ^ b
                    elif opcode == _SLT:
                        value = 1 if _to_signed(a) < _to_signed(b) else 0
                    elif opcode == _SLL:
                        value = a << (b & 63)
                    else:  # SRL
                        value = a >> (b & 63)
                    if rd:
                        registers[rd] = value & _WORD_MASK
                elif opcode <= _SRLI:  # ALU register-immediate
                    a = registers[rs]
                    if opcode == _ADDI:
                        value = a + imm
                    elif opcode == _ANDI:
                        value = a & imm
                    elif opcode == _ORI:
                        value = a | imm
                    elif opcode == _XORI:
                        value = a ^ imm
                    elif opcode == _SLTI:
                        value = 1 if _to_signed(a) < imm else 0
                    elif opcode == _SLLI:
                        value = a << (imm & 63)
                    else:  # SRLI
                        value = a >> (imm & 63)
                    if rd:
                        registers[rd] = value & _WORD_MASK
                elif opcode == _LUI:
                    if rd:
                        registers[rd] = (imm << 16) & _WORD_MASK
                elif opcode <= _LB:  # loads
                    address = (registers[rs] + imm) & _WORD_MASK
                    nbytes = 8 if opcode == _LW else (2 if opcode == _LH else 1)
                    value = load(address, nbytes)
                    if rd:
                        registers[rd] = value
                    first = address >> 3
                    last = (address + nbytes - 1) >> 3
                    mem_keys = (first,) if first == last else tuple(range(first, last + 1))
                    for key in mem_keys:
                        writer = last_mem_writer(key, -1)
                        if writer > mem_dep:
                            mem_dep = writer
                elif opcode <= _SB:  # stores
                    address = (registers[rs] + imm) & _WORD_MASK
                    nbytes = 8 if opcode == _SW else (2 if opcode == _SH else 1)
                    store(address, registers[rt], nbytes)
                    first = address >> 3
                    last = (address + nbytes - 1) >> 3
                    mem_keys = (first,) if first == last else tuple(range(first, last + 1))
                    for key in mem_keys:
                        mem_last_writer[key] = seq
                elif opcode <= _BLTZ:  # conditional branches
                    if opcode == _BEQ:
                        taken = registers[rs] == registers[rt]
                    elif opcode == _BNE:
                        taken = registers[rs] != registers[rt]
                    else:
                        a = _to_signed(registers[rs])
                        if opcode == _BGEZ:
                            taken = a >= 0
                        elif opcode == _BGTZ:
                            taken = a > 0
                        elif opcode == _BLEZ:
                            taken = a <= 0
                        else:  # BLTZ
                            taken = a < 0
                    if taken:
                        next_pc = target
                elif opcode == _J:
                    next_pc = target
                    taken = True
                elif opcode == _JAL:
                    registers[31] = next_pc
                    next_pc = target
                    taken = True
                elif opcode == _JR:
                    next_pc = registers[rs]
                    taken = True
                elif opcode == _JALR:
                    jump_to = registers[rs]
                    registers[31] = next_pc
                    next_pc = jump_to
                    taken = True
                elif opcode == _NOP:
                    pass
                elif opcode == _HALT:
                    halted = True
                else:  # pragma: no cover - all opcodes handled above
                    raise ExecutionError("unimplemented opcode {!r}".format(opcode))

                # Producer edges for the timing models.
                if nsrc == 0:
                    reg_deps = ()
                elif nsrc == 1:
                    reg_deps = (reg_last_writer[rs],)
                else:
                    reg_deps = (reg_last_writer[rs], reg_last_writer[rt])

                append(TraceRecord(seq, inst, next_pc, taken, mem_keys, mem_dep, reg_deps))

                if rd:  # r0 writes are discarded
                    reg_last_writer[rd] = seq

                if halted:
                    seq += 1
                    break
                pc = next_pc
                seq += 1
            if halted:
                break

        self.final_state = state
        return Trace(records, halted)


def run_program(program, max_instructions=DEFAULT_MAX_INSTRUCTIONS, block_engine=None):
    """Execute ``program`` and return its committed-path :class:`Trace`."""
    return FunctionalSimulator(program, max_instructions, block_engine=block_engine).run()
