"""ILP limit study in the style of Lam and Wilson (ISCA-19, 1992).

The paper's related work motivates control-equivalent spawning with Lam
and Wilson's limit study: "exploiting control independence to fetch and
execute along multiple flows of control can expose large amounts of
instruction level parallelism, which is not possible for a superscalar
processor limited by branch prediction accuracy."

This module computes three instruction-level-parallelism limits over a
committed trace, with unit latencies and unbounded resources:

* **dataflow** — only true register/memory dependences constrain issue
  (an oracle for both branch prediction and control flow);
* **single flow** — one fetch stream steered by a real gshare
  predictor: a mispredicted branch stalls *everything* younger until it
  resolves;
* **control independence** — the same predictor, but a mispredict only
  delays the instructions between the branch and the next dynamic
  instance of its immediate postdominator; control-independent
  instructions past the reconvergence point proceed.

The expected ordering, which the tests assert and Lam and Wilson
observed, is ``single flow <= control independence <= dataflow``.
"""

from repro.frontend.branch_predictor import GsharePredictor


class LimitStudyResult:
    """ILP under the three fetch models."""

    def __init__(self, instructions, dataflow, single_flow, control_independence):
        self.instructions = instructions
        self.dataflow = dataflow
        self.single_flow = single_flow
        self.control_independence = control_independence

    @property
    def control_independence_gain(self):
        """ILP multiplier of control independence over a single flow."""
        if self.single_flow == 0:
            return 0.0
        return self.control_independence / self.single_flow

    def __repr__(self):
        return (
            "LimitStudyResult(dataflow={:.1f}, single_flow={:.1f}, "
            "control_independence={:.1f})".format(
                self.dataflow, self.single_flow, self.control_independence
            )
        )


def _dependence_finish_times(trace):
    """Unit-latency dataflow finish time of every record."""
    finish = [0] * len(trace)
    records = trace.records
    for index, record in enumerate(records):
        ready = 0
        for producer in record.reg_deps:
            if producer >= 0 and finish[producer] > ready:
                ready = finish[producer]
        mem_producer = record.mem_dep
        if mem_producer >= 0 and finish[mem_producer] > ready:
            ready = finish[mem_producer]
        finish[index] = ready + 1
    return finish


def _mispredicted_branches(trace, predictor=None):
    """Set of trace indices whose conditional branch mispredicts."""
    if predictor is None:
        predictor = GsharePredictor()
    mispredicted = set()
    for index, record in enumerate(trace.records):
        if record.inst.is_conditional_branch:
            if predictor.predict_and_update(record.inst.pc, record.taken) != record.taken:
                mispredicted.add(index)
    return mispredicted


def _reconvergence_indices(trace, ipdom_pc_by_branch_pc):
    """For each trace index, the index where its branch reconverges.

    Resolved on the committed trace (next dynamic instance of the
    branch's immediate postdominator PC), like the spawn unit does.
    """
    records = trace.records
    count = len(records)
    reconvergence = [count] * count
    last_seen = {}
    for index in range(count - 1, -1, -1):
        record = records[index]
        pc = record.inst.pc
        ipdom_pc = ipdom_pc_by_branch_pc.get(pc)
        if ipdom_pc is not None:
            reconvergence[index] = last_seen.get(ipdom_pc, count)
        last_seen[pc] = index
    return reconvergence


def limit_study(trace, ipdom_pc_by_branch_pc=None, mispredict_penalty=8):
    """Compute the three ILP limits for a trace.

    Args:
        trace: A committed :class:`~repro.sim.trace.Trace`.
        ipdom_pc_by_branch_pc: Mapping branch PC -> ipdom PC (from
            :func:`repro.spawn.classify.classify_program` points).
            When None, the control-independence model degenerates to
            the single-flow model.
        mispredict_penalty: Fetch-stall cycles per mispredict.

    Returns:
        A :class:`LimitStudyResult`.
    """
    count = len(trace)
    if count == 0:
        return LimitStudyResult(0, 0.0, 0.0, 0.0)
    records = trace.records

    # Dataflow limit.
    dataflow_finish = _dependence_finish_times(trace)
    dataflow_ilp = count / max(dataflow_finish)

    mispredicted = _mispredicted_branches(trace)

    # Single flow: every instruction after a mispredicted branch is
    # fetched no earlier than the branch's resolution plus the penalty.
    finish = [0] * count
    fetch_floor = 0
    for index, record in enumerate(records):
        ready = fetch_floor
        for producer in record.reg_deps:
            if producer >= 0 and finish[producer] > ready:
                ready = finish[producer]
        mem_producer = record.mem_dep
        if mem_producer >= 0 and finish[mem_producer] > ready:
            ready = finish[mem_producer]
        finish[index] = ready + 1
        if index in mispredicted:
            stall = finish[index] + mispredict_penalty
            if stall > fetch_floor:
                fetch_floor = stall
    single_flow_ilp = count / max(finish)

    # Control independence: the mispredict floor applies only up to the
    # branch's reconvergence point.
    if ipdom_pc_by_branch_pc:
        reconvergence = _reconvergence_indices(trace, ipdom_pc_by_branch_pc)
        finish = [0] * count
        # Active floors: (expires_at_index, floor_value); kept tiny.
        floors = []
        for index, record in enumerate(records):
            ready = 0
            for expires, floor in floors:
                if index < expires and floor > ready:
                    ready = floor
            for producer in record.reg_deps:
                if producer >= 0 and finish[producer] > ready:
                    ready = finish[producer]
            mem_producer = record.mem_dep
            if mem_producer >= 0 and finish[mem_producer] > ready:
                ready = finish[mem_producer]
            finish[index] = ready + 1
            if index in mispredicted:
                floors.append(
                    (reconvergence[index], finish[index] + mispredict_penalty)
                )
                if len(floors) > 16:
                    floors = [
                        (expires, floor)
                        for expires, floor in floors
                        if expires > index
                    ][-16:]
        control_independence_ilp = count / max(finish)
    else:
        control_independence_ilp = single_flow_ilp

    return LimitStudyResult(
        count, dataflow_ilp, single_flow_ilp, control_independence_ilp
    )


def limit_study_for_workload(prepared, mispredict_penalty=8):
    """Run the limit study on a prepared workload, using its compiler
    ipdom information for the control-independence model."""
    ipdoms = {
        point.trigger_pc: point.spawn_pc
        for point in prepared.spawn_analysis.postdominator_points
    }
    return limit_study(prepared.trace, ipdoms, mispredict_penalty)
