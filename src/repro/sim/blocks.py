"""Superblock segmentation: the block-at-a-time execution engine's tables.

Both simulation engines historically paid per-instruction Python
dispatch for every committed instruction, even though the committed
trace between a branch and its ipdom is straight-line and replayed
thousands of times across the experiment grid.  This module compiles
those straight-line regions once per program/trace into *block tables*
the hot loops can consume block-at-a-time:

* :class:`BlockTable` — per-trace-index tables for the timing kernel
  (:mod:`repro.polyflow.core`): the maximal straight-line *run* from
  every index (``batch_end``), the static register-consumer adjacency
  used for completion wake-up (``reg_consumers``), and per-superblock
  aggregates (instruction count, latency-class mix, memory-effect
  summary, event deltas).
* :class:`ProgramBlocks` — per-PC straight-line blocks of pre-decoded
  operand records for the functional interpreter
  (:mod:`repro.sim.functional`), so the architectural replay loop skips
  the per-instruction fetch-dict lookup.

A *superblock* is bounded by control transfers (any non-``KIND_PLAIN``
instruction), by I-cache line boundaries (so the timing engine's single
line probe at the block head covers the whole block), and — in the
per-core overlay built by :class:`~repro.polyflow.core.PolyFlowCore` —
by spawn-candidate PCs (the policy's ipdom reconvergence points), which
must take the per-instruction path so spawn decisions still fire.

Tables are **content-keyed**: they are memoized on the trace/program
objects held by :class:`~repro.analysis.pipeline.ProgramAnalyses`,
which :class:`~repro.analysis.pipeline.AnalysisCache` dedupes by source
digest and persists through its on-disk pickle layer — a warm worker
pool therefore inherits compiled tables instead of rebuilding them.
Module-level counters track table reuse; the parallel runner surfaces
them through ``RunSummary`` and ``MetricsAggregator``.

The engine is on by default and can be disabled process-wide with
``REPRO_BLOCK_ENGINE=0`` (the equivalence suites prove byte-identical
event streams and stats either way).
"""

import os

from repro.isa.instructions import INSTRUCTION_BYTES, Opcode
from repro.sim.predecode import LAT_ALU, LAT_LOAD, LAT_MUL, LAT_STORE

#: L1 I-cache line size of the default
#: :class:`~repro.memory.hierarchy.CacheHierarchy` (128-byte lines).
#: Superblocks never cross a line so the timing engine's single
#: line-address probe at the block head covers every instruction in it.
ICACHE_LINE_BYTES = 128

_LINE_SHIFT = ICACHE_LINE_BYTES.bit_length() - 1

#: Bump when the compiled table layout changes: persisted tables ride
#: inside analysis pickles, and a stale layout must read as a miss.
#: v2 added ``plain_end`` (the event kernel's next-event horizon).
BLOCK_FORMAT_VERSION = 2

#: Environment toggle: set to ``"0"`` to disable the block engine.
BLOCK_ENGINE_ENV = "REPRO_BLOCK_ENGINE"

#: Counter names reported by :func:`cache_counters`.
BLOCK_CACHE_KEYS = ("table_hits", "table_misses", "program_hits", "program_misses")

_COUNTERS = {key: 0 for key in BLOCK_CACHE_KEYS}

# Functional-side block enders: every opcode up to the last store falls
# through, as does NOP; branches, jumps, calls, returns and HALT end a
# straight-line block.
_LAST_PLAIN_OPCODE = int(Opcode.SB)
_NOP_OPCODE = int(Opcode.NOP)


def engine_enabled_default():
    """Whether cores default to the block engine (see BLOCK_ENGINE_ENV)."""
    return os.environ.get(BLOCK_ENGINE_ENV, "1") != "0"


def cache_counters():
    """Snapshot of the process-wide block-cache hit/miss counters."""
    return dict(_COUNTERS)


def counters_delta(before, after=None):
    """Counter movement between two :func:`cache_counters` snapshots."""
    if after is None:
        after = cache_counters()
    return {key: after[key] - before.get(key, 0) for key in BLOCK_CACHE_KEYS}


def reset_cache_counters():
    """Zero the block-cache counters (tests and fresh run summaries)."""
    for key in BLOCK_CACHE_KEYS:
        _COUNTERS[key] = 0


class BlockTable:
    """Compiled superblock tables of one committed trace.

    ``batch_end[i]`` is the end (exclusive) of the maximal straight-line
    run starting at trace index ``i``: every index in ``[i,
    batch_end[i])`` is ``KIND_PLAIN`` and shares ``i``'s I-cache line
    (``batch_end[i] == i`` when ``i`` itself is a control transfer).
    The backward-pass construction makes the table valid from *any*
    start index, so a task that stops fetching mid-block (budget or
    capacity) resumes with a correct run bound.

    ``reg_consumers[p]`` lists every trace index naming ``p`` as a
    source-register producer, one entry per dependence slot in trace
    order (an index consuming ``p`` through both sources appears
    twice) — the fused engine's completion wake-up walks this static
    adjacency instead of registering consumers in a dict per fetch.

    ``batch_deps[i]`` fuses the dependence sources of index ``i`` into
    one tuple ``(dep0, dep1, mem_dep-if-load-else--1)`` so the batched
    fetch loop performs a single indexed load per instruction instead
    of probing three parallel arrays plus the latency class.

    ``plain_end[i]`` is the end (exclusive) of the maximal run starting
    at ``i`` of single-cycle ALU instructions — no loads, stores or
    multiplies, so every position completes one cycle after issue and
    the run's next-event horizon is a constant.  The event kernel
    (:mod:`repro.polyflow.event_kernel`) issues such a run as one batch
    with a single range completion on its calendar; any memory or
    long-latency operation caps the run so the cache-access order stays
    cycle-exact.

    ``starts``/``aggregates`` summarize each superblock:
    ``aggregates[b]`` is ``(length, muls, loads, stores)`` for the
    block at ``starts[b]``.
    """

    __slots__ = (
        "length",
        "batch_end",
        "reg_consumers",
        "batch_deps",
        "plain_end",
        "starts",
        "aggregates",
        "version",
    )

    def __init__(
        self,
        length,
        batch_end,
        reg_consumers,
        batch_deps,
        plain_end,
        starts,
        aggregates,
    ):
        self.length = length
        self.batch_end = batch_end
        self.reg_consumers = reg_consumers
        self.batch_deps = batch_deps
        self.plain_end = plain_end
        self.starts = starts
        self.aggregates = aggregates
        self.version = BLOCK_FORMAT_VERSION

    def block_count(self):
        return len(self.starts)

    def issue_cost(self, block, mul_latency=1):
        """Summed issue latency of one block under ``mul_latency``
        (loads/stores modelled at their 1-cycle occupancy; memory
        latency is dynamic and not part of the static aggregate)."""
        length, muls, _loads, _stores = self.aggregates[block]
        return length + muls * (mul_latency - 1)

    def event_delta(self, block):
        """Scheduler events one block contributes (a ready and a
        completion per instruction)."""
        return 2 * self.aggregates[block][0]

    def next_event_horizon(self, block, mul_latency=1):
        """Earliest completion latency of one block issued in a cycle.

        The static lower bound on when the *first* functional-unit
        completion of the block lands on the event calendar: one cycle
        unless the block is multiplies only (loads and stores bound at
        their one-cycle L1-hit occupancy; the dynamic miss latency can
        only push completions later, never earlier).  This is the
        per-block composition contract between block-at-a-time fetch
        and the event kernel's time skip: a jump may never land inside
        a block's horizon.
        """
        length, muls, _loads, _stores = self.aggregates[block]
        if muls == length:
            return mul_latency
        return 1

    def describe(self):
        """Summary dict (diagnostics, docs, and the property tests)."""
        lengths = [aggregate[0] for aggregate in self.aggregates]
        mem_ops = sum(aggregate[2] + aggregate[3] for aggregate in self.aggregates)
        return {
            "instructions": self.length,
            "blocks": len(self.starts),
            "mean_block_length": (sum(lengths) / len(lengths)) if lengths else 0.0,
            "max_block_length": max(lengths, default=0),
            "mem_ops": mem_ops,
            "plain_instructions": sum(
                aggregate[0] - aggregate[1] - aggregate[2] - aggregate[3]
                for aggregate in self.aggregates
            ),
            "version": self.version,
        }


def build_block_table(decoded):
    """Compile the :class:`BlockTable` of one decoded trace (one pass
    each for runs, adjacency, and aggregates)."""
    count = decoded.length
    kinds = decoded.kind
    pcs = decoded.pc
    dep0 = decoded.dep0
    dep1 = decoded.dep1
    lats = decoded.lat

    batch_end = [0] * count
    for index in range(count - 1, -1, -1):
        if kinds[index]:
            batch_end[index] = index
            continue
        following = index + 1
        if (
            following < count
            and not kinds[following]
            and (pcs[following] >> _LINE_SHIFT) == (pcs[index] >> _LINE_SHIFT)
        ):
            batch_end[index] = batch_end[following]
        else:
            batch_end[index] = following

    consumer_lists = [None] * count
    for index in range(count):
        producer = dep0[index]
        if producer >= 0:
            bucket = consumer_lists[producer]
            if bucket is None:
                consumer_lists[producer] = [index]
            else:
                bucket.append(index)
        producer = dep1[index]
        if producer >= 0:
            bucket = consumer_lists[producer]
            if bucket is None:
                consumer_lists[producer] = [index]
            else:
                bucket.append(index)
    empty = ()
    reg_consumers = [tuple(bucket) if bucket else empty for bucket in consumer_lists]

    mem_dep = decoded.mem_dep
    batch_deps = [
        (
            dep0[index],
            dep1[index],
            mem_dep[index] if lats[index] == LAT_LOAD else -1,
        )
        for index in range(count)
    ]

    # Maximal single-cycle-ALU runs, bounded by the superblock run so a
    # plain run never crosses a control transfer or I-cache line (the
    # event kernel probes plain_end only at batch starts, but the
    # backward pass keeps it valid from any index).
    plain_end = [0] * count
    for index in range(count - 1, -1, -1):
        if lats[index] != LAT_ALU or kinds[index]:
            plain_end[index] = index
            continue
        following = index + 1
        if (
            following < count
            and batch_end[index] > following
            and lats[following] == LAT_ALU
        ):
            plain_end[index] = plain_end[following]
        else:
            plain_end[index] = following

    starts = []
    aggregates = []
    index = 0
    while index < count:
        end = batch_end[index]
        if end <= index:
            end = index + 1
        muls = 0
        loads = 0
        stores = 0
        for position in range(index, end):
            lat = lats[position]
            if lat == LAT_MUL:
                muls += 1
            elif lat == LAT_LOAD:
                loads += 1
            elif lat == LAT_STORE:
                stores += 1
        starts.append(index)
        aggregates.append((end - index, muls, loads, stores))
        index = end

    return BlockTable(
        count, batch_end, reg_consumers, batch_deps, plain_end, starts, aggregates
    )


def block_table_for(trace):
    """The (memoized) :class:`BlockTable` of ``trace``.

    The memo lives on the trace object itself, so every core built on
    the same trace — and every process unpickling the same
    :class:`~repro.analysis.pipeline.ProgramAnalyses` from the analysis
    cache's disk layer — shares one compiled table.
    """
    table = getattr(trace, "_block_table", None)
    if table is not None and table.version == BLOCK_FORMAT_VERSION:
        _COUNTERS["table_hits"] += 1
        return table
    _COUNTERS["table_misses"] += 1
    table = build_block_table(trace.decoded())
    trace._block_table = table
    return table


class ProgramBlocks:
    """Per-PC straight-line blocks for the functional interpreter.

    ``block_at(pc)`` returns a tuple of extended pre-decode records
    ``(opcode, rd, rs, rt, imm, target, nsrc, inst, fall_through)`` —
    the straight-line run starting at ``pc`` up to and including its
    first control transfer (or the last decodable instruction).  Blocks
    are built lazily per entry PC and memoized, so only PCs the program
    actually jumps to are compiled.
    """

    __slots__ = ("_decoded", "_blocks")

    def __init__(self, program):
        from repro.sim.predecode import decode_program

        self._decoded = decode_program(program)
        self._blocks = {}

    def block_at(self, pc):
        """The compiled block starting at ``pc`` (``None`` if ``pc``
        does not decode)."""
        block = self._blocks.get(pc)
        if block is None:
            block = self._build(pc)
            if block is not None:
                self._blocks[pc] = block
        return block

    def compiled_blocks(self):
        """How many entry PCs have been compiled so far."""
        return len(self._blocks)

    def _build(self, pc):
        fetch_entry = self._decoded.get
        entry = fetch_entry(pc)
        if entry is None:
            return None
        block = []
        while True:
            fall_through = pc + INSTRUCTION_BYTES
            block.append(entry + (fall_through,))
            opcode = entry[0]
            if opcode > _LAST_PLAIN_OPCODE and opcode != _NOP_OPCODE:
                break
            pc = fall_through
            entry = fetch_entry(pc)
            if entry is None:
                break
        return tuple(block)


def program_blocks_for(program):
    """The (memoized) :class:`ProgramBlocks` of ``program``."""
    blocks = getattr(program, "_program_blocks", None)
    if blocks is not None:
        _COUNTERS["program_hits"] += 1
        return blocks
    _COUNTERS["program_misses"] += 1
    blocks = ProgramBlocks(program)
    program._program_blocks = blocks
    return blocks
