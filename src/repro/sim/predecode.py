"""Pre-decoded instruction records: the simulation fast path.

The timing and functional simulators spend their lives in per-cycle /
per-instruction loops.  Walking ``record.inst.<attribute>`` chains and
comparing :class:`~repro.isa.instructions.Opcode` enum members on every
iteration dominates those loops, so this module lowers both
representations once, up front:

* :func:`decode_program` flattens each static
  :class:`~repro.isa.instructions.Instruction` into a plain tuple of
  ``int`` operands, consumed by the functional interpreter's dispatch
  loop (:mod:`repro.sim.functional`).
* :func:`decode_trace` lowers a committed
  :class:`~repro.sim.trace.Trace` into parallel flat arrays (one slot
  per trace index), consumed by the PolyFlow timing kernel's fetch /
  issue / commit loops and its dependence checks
  (:mod:`repro.polyflow.core`).

Both are pure views: they carry exactly the information the original
objects carry, so consuming them cannot change simulated behaviour —
the golden-trace and differential suites pin that equivalence byte for
byte.  Decoded forms are memoized on their source object
(``Trace.decoded()`` / the program's ``_decoded`` attribute), so one
decode is shared by every simulation of the same program or trace.
"""

from repro.isa.instructions import INSTRUCTION_BYTES, REGISTER_ALIASES

_RA = REGISTER_ALIASES["ra"]

# -- control-flow kinds (fetch-loop dispatch) ---------------------------------

#: No effect on the fetch stream.
KIND_PLAIN = 0
#: Conditional branch: consult gshare, stall on mispredict, stop on taken.
KIND_COND_BRANCH = 1
#: Direct call (JAL): push the return address, stop fetching.
KIND_CALL_DIRECT = 2
#: Indirect call (JALR): push, consult the indirect predictor, stop.
KIND_CALL_INDIRECT = 3
#: Return (JR through ``ra``): pop the return address stack, stop.
KIND_RETURN = 4
#: Indirect jump (JR through any other register): indirect predictor, stop.
KIND_SWITCH = 5
#: Direct jump (J): perfectly predicted taken transfer, stop.
KIND_DIRECT_JUMP = 6

# -- latency classes (issue-loop dispatch) ------------------------------------

LAT_ALU = 0
LAT_MUL = 1
LAT_LOAD = 2
LAT_STORE = 3


def control_kind(inst):
    """The fetch-loop ``KIND_*`` of one instruction.

    Mirrors the branch structure of the timing model's fetch stage: the
    call test precedes the return/direct-jump tests, so JAL classifies
    as a direct call (not a direct jump) and JALR as an indirect call.
    """
    if inst.is_conditional_branch:
        return KIND_COND_BRANCH
    if inst.is_call:
        return KIND_CALL_INDIRECT if inst.is_indirect_jump else KIND_CALL_DIRECT
    if inst.is_return_like:
        return KIND_RETURN if inst.rs == _RA else KIND_SWITCH
    if inst.is_direct_jump:
        return KIND_DIRECT_JUMP
    return KIND_PLAIN


def latency_class(inst):
    """The issue-loop ``LAT_*`` of one instruction."""
    if inst.is_load:
        return LAT_LOAD
    if inst.is_store:
        return LAT_STORE
    if inst.latency_class == "mul":
        return LAT_MUL
    return LAT_ALU


class DecodedTrace:
    """Flat per-trace-index arrays mirroring a committed trace.

    Every array has one slot per trace record.  Register/memory
    producer edges keep the record's semantics: ``dep0``/``dep1`` are
    the (up to two) source-register producer sequence numbers in
    rs-then-rt order, ``-1`` marking an absent source or a value that
    predates the trace.
    """

    __slots__ = (
        "length",
        "pc",
        "kind",
        "lat",
        "taken",
        "next_pc",
        "fall_through",
        "mem_addr",
        "mem_dep",
        "dep0",
        "dep1",
        "_lines_by_shift",
    )

    def __init__(self, length):
        self.length = length
        self.pc = [0] * length
        #: ``KIND_*`` control classification (bytearray: compact + fast).
        self.kind = bytearray(length)
        #: ``LAT_*`` latency classification.
        self.lat = bytearray(length)
        #: 1 when the dynamic branch was taken.
        self.taken = bytearray(length)
        self.next_pc = [0] * length
        self.fall_through = [0] * length
        #: Byte address of the first word a load/store touches (0 otherwise).
        self.mem_addr = [0] * length
        self.mem_dep = [-1] * length
        self.dep0 = [-1] * length
        self.dep1 = [-1] * length
        self._lines_by_shift = {}

    def icache_lines(self, offset_bits):
        """The I-cache line index of every pc (memoized per line size).

        A derived flat column: ``pc >> offset_bits`` for each slot.
        Every core over the same trace reads the identical line column,
        so it is computed once per (trace, line size) instead of once
        per core construction — the grid-batch runner simulates many
        cells of one trace and this was the largest repeated setup
        cost.
        """
        lines = self._lines_by_shift.get(offset_bits)
        if lines is None:
            lines = [pc >> offset_bits for pc in self.pc]
            self._lines_by_shift[offset_bits] = lines
        return lines


def decode_trace(trace):
    """Lower ``trace`` into a :class:`DecodedTrace` (one pass)."""
    records = trace.records
    decoded = DecodedTrace(len(records))
    pcs = decoded.pc
    kinds = decoded.kind
    lats = decoded.lat
    takens = decoded.taken
    next_pcs = decoded.next_pc
    fall_throughs = decoded.fall_through
    mem_addrs = decoded.mem_addr
    mem_deps = decoded.mem_dep
    dep0 = decoded.dep0
    dep1 = decoded.dep1
    for index, record in enumerate(records):
        inst = record.inst
        pcs[index] = inst.pc
        kinds[index] = control_kind(inst)
        lats[index] = latency_class(inst)
        if record.taken:
            takens[index] = 1
        next_pcs[index] = record.next_pc
        fall_throughs[index] = inst.pc + INSTRUCTION_BYTES
        if record.mem_keys:
            mem_addrs[index] = record.mem_keys[0] << 3
        mem_deps[index] = record.mem_dep
        reg_deps = record.reg_deps
        if reg_deps:
            dep0[index] = reg_deps[0]
            if len(reg_deps) > 1:
                dep1[index] = reg_deps[1]
    return decoded


# -- static program predecode (functional interpreter) ------------------------


def _source_count(inst):
    if inst.rs is None:
        return 0
    if inst.rt is None:
        return 1
    return 2


def decode_program(program):
    """Flat operand records for every static instruction of ``program``.

    Returns a dict mapping each text PC to the tuple::

        (opcode, rd, rs, rt, imm, target, nsrc, inst)

    where every operand is a plain ``int`` (absent operands decode to
    0 — each opcode's interpreter path only reads the operands the ISA
    defines for it, so the placeholder is never observable), ``nsrc``
    is the number of register sources for producer tracking, and
    ``inst`` is the original :class:`Instruction` for the emitted
    trace records.  Memoized on the program object.
    """
    decoded = getattr(program, "_decoded", None)
    if decoded is not None:
        return decoded
    decoded = {}
    for inst in program.instructions:
        decoded[inst.pc] = (
            int(inst.opcode),
            inst.rd if inst.rd is not None else 0,
            inst.rs if inst.rs is not None else 0,
            inst.rt if inst.rt is not None else 0,
            inst.imm,
            inst.target if inst.target is not None else 0,
            _source_count(inst),
            inst,
        )
    program._decoded = decoded
    return decoded
