"""Graphviz DOT export for CFGs, postdominator trees, and CDGs."""


def cfg_to_dot(cfg, labels=None):
    """Render a CFG as Graphviz DOT text.

    Args:
        cfg: The :class:`~repro.cfg.graph.ControlFlowGraph`.
        labels: Optional mapping from block index to display label;
            defaults to the block's start pc.
    """
    lines = ["digraph {} {{".format(cfg.name.replace(".", "_"))]
    lines.append('  node [shape=box, fontname="monospace"];')
    for block in cfg.blocks:
        if labels and block.index in labels:
            label = labels[block.index]
        else:
            label = "B{} @{:#x}".format(block.index, block.start_pc)
        lines.append('  n{} [label="{}"];'.format(block.index, label))
    lines.append('  exit [label="EXIT", shape=doublecircle];')
    for block in cfg.blocks:
        for successor in block.successors:
            lines.append("  n{} -> n{};".format(block.index, successor))
    for source in cfg.exit_predecessors:
        lines.append("  n{} -> exit;".format(source))
    lines.append("}")
    return "\n".join(lines)


def tree_to_dot(parent_map, name="tree", node_label=None):
    """Render a parent-pointer tree (e.g. a postdominator tree) as DOT.

    Args:
        parent_map: Mapping from node to its parent (roots map to None).
        name: Graph name.
        node_label: Optional callable rendering a node as a label.
    """
    if node_label is None:
        node_label = str
    lines = ["digraph {} {{".format(name)]
    for node in parent_map:
        lines.append('  n{} [label="{}"];'.format(node, node_label(node)))
    for node, parent in parent_map.items():
        if parent is not None:
            lines.append("  n{} -> n{};".format(parent, node))
    lines.append("}")
    return "\n".join(lines)
