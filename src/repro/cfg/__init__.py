"""Control flow graphs: basic blocks, per-procedure graphs, builders."""

from repro.cfg.basic_block import BasicBlock
from repro.cfg.builder import (
    JumpProfile,
    ProgramCFGs,
    build_cfg,
    build_program_cfgs,
    discover_procedure_entries,
)
from repro.cfg.dot import cfg_to_dot, tree_to_dot
from repro.cfg.graph import ControlFlowGraph

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "JumpProfile",
    "ProgramCFGs",
    "build_cfg",
    "build_program_cfgs",
    "discover_procedure_entries",
    "cfg_to_dot",
    "tree_to_dot",
]
