"""Control flow graph for one procedure.

The graph contains one node per basic block plus a single *virtual exit*
node.  Every block that leaves the procedure (returns, halts, or ends in
an unresolved indirect jump) gets an edge to the virtual exit, so that
postdominance is well defined even for procedures with several returns.
"""

from repro.errors import CFGError


class ControlFlowGraph:
    """A per-procedure CFG with a virtual exit node.

    Node identifiers are integers: ``0..len(blocks)-1`` are basic blocks
    and :attr:`exit_index` (``== len(blocks)``) is the virtual exit.
    """

    def __init__(self, blocks, entry_index, entry_pc=None, name=None):
        if not blocks:
            raise CFGError("a CFG must contain at least one basic block")
        self.blocks = list(blocks)
        self.entry_index = entry_index
        self.exit_index = len(self.blocks)
        self.entry_pc = entry_pc if entry_pc is not None else blocks[entry_index].start_pc
        self.name = name or "proc_{:x}".format(self.entry_pc)
        #: Block indices with an edge to the virtual exit.
        self.exit_predecessors = []
        self._block_by_start_pc = {block.start_pc: block for block in self.blocks}

    # -- construction helpers -------------------------------------------------

    def add_edge(self, source, destination):
        """Add a CFG edge between two block indices."""
        self.blocks[source].successors.append(destination)
        self.blocks[destination].predecessors.append(source)

    def add_exit_edge(self, source):
        """Connect a block to the virtual exit node."""
        self.exit_predecessors.append(source)

    # -- queries ---------------------------------------------------------------

    @property
    def node_count(self):
        """Number of nodes including the virtual exit."""
        return len(self.blocks) + 1

    def node_ids(self):
        """Return all node identifiers, blocks first, then the exit."""
        return range(self.node_count)

    def successors(self, node):
        """Successor node ids of ``node`` (exit edges included)."""
        if node == self.exit_index:
            return []
        block = self.blocks[node]
        if node in self.exit_predecessors:
            return list(block.successors) + [self.exit_index]
        return list(block.successors)

    def predecessors(self, node):
        """Predecessor node ids of ``node``."""
        if node == self.exit_index:
            return list(self.exit_predecessors)
        return list(self.blocks[node].predecessors)

    def block(self, node):
        """Return the :class:`BasicBlock` for a block node id."""
        if node == self.exit_index:
            raise CFGError("the virtual exit node has no basic block")
        return self.blocks[node]

    def block_starting_at(self, pc):
        """Return the block whose first instruction is at ``pc``, or None."""
        return self._block_by_start_pc.get(pc)

    def block_containing_pc(self, pc):
        """Return the block containing the instruction at ``pc``, or None."""
        for block in self.blocks:
            if block.start_pc <= pc <= block.end_pc:
                return block
        return None

    def is_exit(self, node):
        """Whether ``node`` is the virtual exit."""
        return node == self.exit_index

    def reverse_postorder(self):
        """Block ids in reverse postorder of a DFS from the entry.

        The virtual exit is included if reachable.  Unreachable nodes are
        omitted.
        """
        order = []
        visited = set()
        stack = [(self.entry_index, iter(self.successors(self.entry_index)))]
        visited.add(self.entry_index)
        while stack:
            node, successor_iter = stack[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(self.successors(successor))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def conditional_branch_blocks(self):
        """Yield blocks that end in a conditional branch."""
        for block in self.blocks:
            if block.ends_in_conditional_branch():
                yield block

    def edge_count(self):
        """Total number of edges, including edges to the virtual exit."""
        return sum(len(block.successors) for block in self.blocks) + len(
            self.exit_predecessors
        )

    def __repr__(self):
        return "ControlFlowGraph(name={!r}, blocks={}, edges={})".format(
            self.name, len(self.blocks), self.edge_count()
        )
