"""Basic blocks: maximal straight-line instruction sequences."""


class BasicBlock:
    """A basic block of a control flow graph.

    Attributes:
        index: Position of this block within its CFG (dense, 0-based).
        instructions: Instructions of the block, in address order.
        successors: Indices of successor blocks (CFG edges out).
        predecessors: Indices of predecessor blocks (CFG edges in).
    """

    __slots__ = ("index", "instructions", "successors", "predecessors")

    def __init__(self, index, instructions):
        self.index = index
        self.instructions = list(instructions)
        self.successors = []
        self.predecessors = []

    @property
    def start_pc(self):
        """Address of the first instruction."""
        return self.instructions[0].pc

    @property
    def end_pc(self):
        """Address of the last instruction."""
        return self.instructions[-1].pc

    @property
    def terminator(self):
        """The last instruction of the block."""
        return self.instructions[-1]

    def ends_in_conditional_branch(self):
        """Whether the block ends in a conditional branch."""
        return self.terminator.is_conditional_branch

    def ends_in_call(self):
        """Whether the block ends in a (direct or indirect) call."""
        return self.terminator.is_call

    def ends_in_indirect_jump(self):
        """Whether the block ends in a non-return indirect jump."""
        terminator = self.terminator
        return terminator.is_indirect_jump and not terminator.is_call

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return "BasicBlock(index={}, start={:#x}, len={})".format(
            self.index, self.start_pc, len(self.instructions)
        )
