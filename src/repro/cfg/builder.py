"""Build per-procedure control flow graphs from an assembled program.

The paper's analysis is *profile-driven*: the compiler's postdominator
analysis is computed over the control flow graph observed by profiling
(which resolves indirect-jump targets).  :class:`JumpProfile` carries
those observed targets; without one, non-return indirect jumps are
treated as procedure exits.

Conventions (matching the workloads in :mod:`repro.workloads`):

* ``jal``/``jalr`` are calls: intra-procedurally they fall through, and
  the callee entry starts a new procedure CFG.
* ``jr ra`` is a return (an edge to the virtual exit node).
* ``jr`` through any other register is an indirect jump (e.g. a switch
  dispatch); its successors come from the jump profile.
"""

from collections import defaultdict

from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph
from repro.errors import CFGError
from repro.isa.instructions import REGISTER_ALIASES

_RA = REGISTER_ALIASES["ra"]


def _is_return(instruction):
    """Whether ``instruction`` is a ``jr ra`` return."""
    return instruction.is_return_like and instruction.rs == _RA


def _is_switch_jump(instruction):
    """Whether ``instruction`` is a non-return, non-call indirect jump."""
    return instruction.is_return_like and instruction.rs != _RA


class JumpProfile:
    """Observed dynamic targets of indirect control transfers."""

    def __init__(self):
        #: pc of a ``jr`` switch -> sorted tuple of observed target pcs.
        self.indirect_targets = defaultdict(set)
        #: pc of a ``jalr`` call -> sorted tuple of observed callee entry pcs.
        self.indirect_call_targets = defaultdict(set)

    @classmethod
    def from_trace(cls, trace):
        """Collect indirect-jump and indirect-call targets from a trace."""
        profile = cls()
        for record in trace:
            inst = record.inst
            if _is_switch_jump(inst):
                profile.indirect_targets[inst.pc].add(record.next_pc)
            elif inst.is_indirect_jump and inst.is_call:
                profile.indirect_call_targets[inst.pc].add(record.next_pc)
        return profile

    def targets_of(self, pc):
        """Sorted observed targets of the switch jump at ``pc``."""
        return tuple(sorted(self.indirect_targets.get(pc, ())))

    def call_targets_of(self, pc):
        """Sorted observed callees of the indirect call at ``pc``."""
        return tuple(sorted(self.indirect_call_targets.get(pc, ())))


class ProgramCFGs:
    """All per-procedure CFGs of a program, with pc-based lookup."""

    def __init__(self, program, procedures):
        self.program = program
        #: Mapping from procedure entry pc to its CFG.
        self.procedures = procedures
        self._location_by_pc = {}
        for cfg in procedures.values():
            for block in cfg.blocks:
                for instruction in block.instructions:
                    self._location_by_pc[instruction.pc] = (cfg, block)

    def __iter__(self):
        return iter(self.procedures.values())

    def __len__(self):
        return len(self.procedures)

    def cfg_of_entry(self, entry_pc):
        """Return the CFG whose procedure entry is ``entry_pc``."""
        return self.procedures[entry_pc]

    def location_of_pc(self, pc):
        """Return ``(cfg, block)`` containing ``pc``, or ``(None, None)``."""
        return self._location_by_pc.get(pc, (None, None))


def _collect_leaders(program, jump_profile, procedure_entries):
    """Return the set of block-leader PCs for the whole text segment."""
    leaders = set(procedure_entries)
    leaders.add(program.entry_point)
    for instruction in program.instructions:
        if instruction.is_conditional_branch or instruction.is_direct_jump:
            if instruction.target is not None and program.contains_pc(instruction.target):
                leaders.add(instruction.target)
        if instruction.is_control:
            fall_through = instruction.fall_through_pc()
            if program.contains_pc(fall_through):
                leaders.add(fall_through)
        if jump_profile is not None and _is_switch_jump(instruction):
            for target in jump_profile.targets_of(instruction.pc):
                if program.contains_pc(target):
                    leaders.add(target)
    return leaders


def _partition_blocks(program, leaders):
    """Split the text segment into raw blocks keyed by start pc."""
    blocks_by_start = {}
    current = []
    for instruction in program.instructions:
        if instruction.pc in leaders and current:
            blocks_by_start[current[0].pc] = current
            current = []
        current.append(instruction)
        if instruction.is_control:
            blocks_by_start[current[0].pc] = current
            current = []
    if current:
        blocks_by_start[current[0].pc] = current
    return blocks_by_start


def _block_successor_pcs(program, instructions, jump_profile):
    """Return (successor_pcs, goes_to_exit) for a raw block."""
    terminator = instructions[-1]
    fall_through = terminator.fall_through_pc()
    if terminator.is_conditional_branch:
        successors = []
        if program.contains_pc(fall_through):
            successors.append(fall_through)
        if terminator.target is not None and program.contains_pc(terminator.target):
            successors.append(terminator.target)
        return successors, False
    if terminator.is_call:
        # Calls fall through intra-procedurally; the callee is a
        # separate CFG.
        if program.contains_pc(fall_through):
            return [fall_through], False
        return [], True
    if terminator.is_direct_jump:
        return [terminator.target], False
    if _is_return(terminator):
        return [], True
    if _is_switch_jump(terminator):
        targets = jump_profile.targets_of(terminator.pc) if jump_profile else ()
        targets = [t for t in targets if program.contains_pc(t)]
        return list(targets), not targets
    if terminator.is_control:  # HALT
        return [], True
    # Plain fall-through into the next leader.
    if program.contains_pc(fall_through):
        return [fall_through], False
    return [], True


def discover_procedure_entries(program, jump_profile=None):
    """Entry PCs of every procedure: program entry + all call targets."""
    entries = {program.entry_point}
    for instruction in program.instructions:
        if instruction.is_call and instruction.target is not None:
            if program.contains_pc(instruction.target):
                entries.add(instruction.target)
        if jump_profile is not None and instruction.is_call and instruction.is_indirect_jump:
            for target in jump_profile.call_targets_of(instruction.pc):
                if program.contains_pc(target):
                    entries.add(target)
    return entries


def build_procedure_cfg(program, entry_pc, blocks_by_start, jump_profile, name=None):
    """Build the CFG of the procedure entered at ``entry_pc``."""
    if entry_pc not in blocks_by_start:
        raise CFGError("procedure entry {:#x} is not a block leader".format(entry_pc))
    # Discover reachable raw blocks intra-procedurally.
    reachable = []
    seen = {entry_pc}
    worklist = [entry_pc]
    edges = {}
    exits = set()
    while worklist:
        start_pc = worklist.pop()
        instructions = blocks_by_start[start_pc]
        successor_pcs, goes_to_exit = _block_successor_pcs(
            program, instructions, jump_profile
        )
        reachable.append(start_pc)
        edges[start_pc] = successor_pcs
        if goes_to_exit:
            exits.add(start_pc)
        for successor_pc in successor_pcs:
            if successor_pc not in seen:
                seen.add(successor_pc)
                worklist.append(successor_pc)
    reachable.sort()
    index_of = {start_pc: index for index, start_pc in enumerate(reachable)}
    blocks = [
        BasicBlock(index, blocks_by_start[start_pc])
        for index, start_pc in enumerate(reachable)
    ]
    cfg = ControlFlowGraph(blocks, index_of[entry_pc], entry_pc, name=name)
    for start_pc in reachable:
        source = index_of[start_pc]
        for successor_pc in edges[start_pc]:
            cfg.add_edge(source, index_of[successor_pc])
        if start_pc in exits:
            cfg.add_exit_edge(source)
    return cfg


def build_program_cfgs(program, jump_profile=None, names=None):
    """Build CFGs for every procedure of ``program``.

    Args:
        program: The assembled :class:`~repro.isa.program.Program`.
        jump_profile: Optional :class:`JumpProfile` resolving indirect
            transfers (the "profile-driven" part of the paper's analysis).
        names: Optional mapping from entry pc to a human-readable
            procedure name.

    Returns:
        A :class:`ProgramCFGs` container.
    """
    entries = discover_procedure_entries(program, jump_profile)
    leaders = _collect_leaders(program, jump_profile, entries)
    blocks_by_start = _partition_blocks(program, leaders)
    procedures = {}
    for entry_pc in sorted(entries):
        name = None
        if names and entry_pc in names:
            name = names[entry_pc]
        elif program.label_at(entry_pc):
            name = program.label_at(entry_pc)
        procedures[entry_pc] = build_procedure_cfg(
            program, entry_pc, blocks_by_start, jump_profile, name=name
        )
    return ProgramCFGs(program, procedures)


def build_cfg(program, jump_profile=None):
    """Build the CFG of the procedure at the program entry point."""
    entries = discover_procedure_entries(program, jump_profile)
    leaders = _collect_leaders(program, jump_profile, entries)
    blocks_by_start = _partition_blocks(program, leaders)
    return build_procedure_cfg(program, program.entry_point, blocks_by_start, jump_profile)
