"""Cache models: set-associative caches and the Figure 8 hierarchy."""

from repro.memory.cache import Cache
from repro.memory.hierarchy import CacheHierarchy

__all__ = ["Cache", "CacheHierarchy"]
