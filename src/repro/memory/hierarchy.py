"""The Figure 8 cache hierarchy: split L1s over a unified L2.

Latencies follow the paper's parameters:

* L1 I-cache: 8KB, 2-way, 128-byte lines, 10-cycle miss;
* L1 D-cache: 16KB, 4-way, 64-byte lines, 10-cycle miss;
* L2: 512KB, 8-way, 128-byte lines, 100-cycle miss.

An L1 miss that hits in L2 costs the L1 miss penalty; an access that
also misses in L2 additionally pays the L2 miss penalty.
"""

from repro.memory.cache import Cache


class CacheHierarchy:
    """Shared two-level cache hierarchy with access latencies."""

    def __init__(
        self,
        l1i_size=8 * 1024,
        l1i_assoc=2,
        l1i_line=128,
        l1d_size=16 * 1024,
        l1d_assoc=4,
        l1d_line=64,
        l2_size=512 * 1024,
        l2_assoc=8,
        l2_line=128,
        l1_hit_latency=1,
        l1_miss_penalty=10,
        l2_miss_penalty=100,
    ):
        self.l1i = Cache(l1i_size, l1i_assoc, l1i_line, name="L1I")
        self.l1d = Cache(l1d_size, l1d_assoc, l1d_line, name="L1D")
        self.l2 = Cache(l2_size, l2_assoc, l2_line, name="L2")
        self.l1_hit_latency = l1_hit_latency
        self.l1_miss_penalty = l1_miss_penalty
        self.l2_miss_penalty = l2_miss_penalty

    def _access(self, l1, address):
        if l1.access(address):
            return self.l1_hit_latency
        if self.l2.access(address):
            return self.l1_hit_latency + self.l1_miss_penalty
        return self.l1_hit_latency + self.l1_miss_penalty + self.l2_miss_penalty

    def fetch_latency(self, pc):
        """Latency of an instruction fetch at ``pc``."""
        return self._access(self.l1i, pc)

    def data_latency(self, address):
        """Latency of a data access at ``address``."""
        return self._access(self.l1d, address)

    def snapshot_sets(self):
        """Per-level LRU state (see :meth:`Cache.snapshot_sets`)."""
        return (
            self.l1i.snapshot_sets(),
            self.l1d.snapshot_sets(),
            self.l2.snapshot_sets(),
        )

    def restore_sets(self, snapshot):
        """Install per-level LRU state captured by :meth:`snapshot_sets`."""
        l1i, l1d, l2 = snapshot
        self.l1i.restore_sets(l1i)
        self.l1d.restore_sets(l1d)
        self.l2.restore_sets(l2)

    def reset_statistics(self):
        """Zero all hit/miss counters."""
        self.l1i.reset_statistics()
        self.l1d.reset_statistics()
        self.l2.reset_statistics()

    def statistics(self):
        """Per-level (hits, misses) tuples."""
        return {
            "L1I": (self.l1i.hits, self.l1i.misses),
            "L1D": (self.l1d.hits, self.l1d.misses),
            "L2": (self.l2.hits, self.l2.misses),
        }
