"""Set-associative cache model with LRU replacement.

Timing-only: the model tracks tags, not data (data comes from the
functional simulator).  Hit/miss results feed instruction latencies in
the cycle-level core.
"""

from repro.errors import ConfigurationError


def _is_power_of_two(value):
    return value > 0 and value & (value - 1) == 0


class Cache:
    """One level of a set-associative cache.

    Attributes:
        size: Capacity in bytes.
        associativity: Ways per set.
        line_size: Line size in bytes.
    """

    def __init__(self, size, associativity, line_size, name="cache"):
        if not (_is_power_of_two(size) and _is_power_of_two(line_size)):
            raise ConfigurationError("cache size and line size must be powers of two")
        if size % (associativity * line_size) != 0:
            raise ConfigurationError(
                "cache size must be divisible by associativity * line size"
            )
        self.size = size
        self.associativity = associativity
        self.line_size = line_size
        self.name = name
        self.set_count = size // (associativity * line_size)
        self._offset_bits = line_size.bit_length() - 1
        self._set_mask = self.set_count - 1
        # Each set is an LRU-ordered list of tags (most recent last).
        self._sets = [[] for _ in range(self.set_count)]
        self.hits = 0
        self.misses = 0

    @property
    def offset_bits(self):
        """Bits of within-line offset (``line_address`` is ``>> this``)."""
        return self._offset_bits

    def line_address(self, address):
        """The line-aligned address containing ``address``."""
        return address >> self._offset_bits

    def snapshot_sets(self):
        """A deep copy of the LRU state (tags per set, recency order)."""
        return [list(tags) for tags in self._sets]

    def restore_sets(self, snapshot):
        """Install LRU state captured by :meth:`snapshot_sets`.

        The grid-batch runner warms one hierarchy per trace and clones
        the resulting state into sibling cells; restoring a snapshot is
        observably identical to replaying the accesses that produced it.
        """
        if len(snapshot) != self.set_count:
            raise ConfigurationError(
                "snapshot has {} sets, cache has {}".format(
                    len(snapshot), self.set_count
                )
            )
        self._sets = [list(tags) for tags in snapshot]

    def access(self, address):
        """Access ``address``; returns True on hit.  Fills on miss."""
        line = address >> self._offset_bits
        cache_set = self._sets[line & self._set_mask]
        tag = line >> (self.set_count.bit_length() - 1)
        if tag in cache_set:
            cache_set.remove(tag)
            cache_set.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.associativity:
            del cache_set[0]
        cache_set.append(tag)
        return False

    def probe(self, address):
        """Check residency without updating LRU or filling."""
        line = address >> self._offset_bits
        cache_set = self._sets[line & self._set_mask]
        tag = line >> (self.set_count.bit_length() - 1)
        return tag in cache_set

    def reset_statistics(self):
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self):
        """Total number of accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self):
        """Fraction of accesses that missed."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def __repr__(self):
        return "Cache(name={!r}, {}B/{}-way/{}B lines)".format(
            self.name, self.size, self.associativity, self.line_size
        )
