"""Classify control-equivalent spawn points from postdominator analysis.

For every block that ends in a conditional branch, a call, or an
indirect jump, the immediate postdominator of that block is a potential
spawn point.  Following Section 2.2:

* **loop fall-through** — the terminator is a *loop branch*: a latch
  (back-edge source) or a branch with an edge that exits its loop
  ("including breaks and other exit conditions");
* **procedure fall-through** — the terminator is a call;
* **hammock** — a non-loop conditional branch whose two arms form a
  single-entry region converging at the ipdom (a simple if-then or
  if-then-else statement, possibly with other constructs embedded);
* **other** — indirect jumps, and conditional branches whose
  control-dependent region has side entries (complex control flow that
  heuristics do not identify).

Blocks that do not end in a branching instruction are *not* spawn
points: "the fetch unit will soon fetch those successor blocks along
the conventional control-flow path".
"""

from repro.analysis.dominance import (
    compute_dominator_tree,
    compute_postdominator_tree,
    immediate_postdominator_block,
)
from repro.analysis.loops import find_natural_loops
from repro.spawn.points import SpawnCategory, SpawnPoint


class ProcedureAnalysis:
    """Cached analyses (pdom tree, dom tree, loops) for one procedure."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.postdominator_tree = compute_postdominator_tree(cfg)
        self.dominator_tree = compute_dominator_tree(cfg)
        self.loop_forest = find_natural_loops(cfg, self.dominator_tree)

    def ipdom_block(self, node):
        """Block index of the ipdom of ``node``, or None."""
        return immediate_postdominator_block(self.cfg, self.postdominator_tree, node)


def _is_loop_branch(analysis, block):
    """Whether ``block``'s terminator is a loop branch (latch or exit)."""
    node = block.index
    forest = analysis.loop_forest
    for successor in analysis.cfg.successors(node):
        if not analysis.cfg.is_exit(successor) and forest.is_back_edge(node, successor):
            return True
    if forest.innermost_loop_of(node) is not None:
        for successor in analysis.cfg.successors(node):
            if analysis.cfg.is_exit(successor) or forest.is_loop_exit_edge(
                node, successor
            ):
                return True
    return False


def _hammock_region(cfg, branch_node, join_node):
    """Blocks strictly between a branch and its join.

    The region is every block reachable from the branch's successors
    without passing through the join.
    """
    region = set()
    worklist = [
        successor
        for successor in cfg.successors(branch_node)
        if successor != join_node and not cfg.is_exit(successor)
    ]
    while worklist:
        node = worklist.pop()
        if node in region or node == join_node:
            continue
        region.add(node)
        for successor in cfg.successors(node):
            if successor != join_node and not cfg.is_exit(successor):
                worklist.append(successor)
    return region


def _is_simple_hammock(analysis, branch_node, join_node):
    """Whether branch/join delimit a single-entry (hammock) region.

    Every block between the branch and the join must be dominated by the
    branch block: no path enters the region except through the branch.
    Complex flow (side entries from gotos, shared tails) fails this test
    and falls into the "other" category.
    """
    region = _hammock_region(analysis.cfg, branch_node, join_node)
    for node in region:
        if not analysis.dominator_tree.dominates(branch_node, node):
            return False
    return True


def classify_block(analysis, block):
    """Classify the spawn opportunity of one block, or return None.

    Returns:
        A :class:`SpawnPoint` if the block ends in a spawn-generating
        terminator and has an in-procedure immediate postdominator.
    """
    terminator = block.terminator
    is_switch = terminator.is_indirect_jump and not terminator.is_call
    if not (terminator.is_conditional_branch or terminator.is_call or is_switch):
        return None
    join = analysis.ipdom_block(block.index)
    if join is None:
        return None
    spawn_pc = analysis.cfg.block(join).start_pc
    if terminator.is_call:
        category = SpawnCategory.PROCEDURE_FALL_THROUGH
    elif is_switch:
        category = SpawnCategory.OTHER
    elif _is_loop_branch(analysis, block):
        category = SpawnCategory.LOOP_FALL_THROUGH
    elif _is_simple_hammock(analysis, block.index, join):
        category = SpawnCategory.HAMMOCK
    else:
        category = SpawnCategory.OTHER
    return SpawnPoint(terminator.pc, spawn_pc, category, procedure=analysis.cfg.name)


def classify_procedure(cfg, analysis=None):
    """All control-equivalent spawn points of one procedure."""
    if analysis is None:
        analysis = ProcedureAnalysis(cfg)
    points = []
    for block in cfg.blocks:
        point = classify_block(analysis, block)
        if point is not None:
            points.append(point)
    return points


def classify_program(program_cfgs):
    """All control-equivalent spawn points of a whole program.

    Args:
        program_cfgs: A :class:`~repro.cfg.builder.ProgramCFGs`.

    Returns:
        List of :class:`SpawnPoint`, ordered by trigger PC.
    """
    points = []
    for cfg in program_cfgs:
        points.extend(classify_procedure(cfg))
    points.sort(key=lambda point: point.trigger_pc)
    return points


def static_distribution(points):
    """Counts per ipdom category, as in Figure 5.

    Returns:
        Dict mapping :class:`SpawnCategory` to static spawn count
        (loop-iteration spawns are excluded; they are not an ipdom
        category).
    """
    distribution = {
        SpawnCategory.LOOP_FALL_THROUGH: 0,
        SpawnCategory.PROCEDURE_FALL_THROUGH: 0,
        SpawnCategory.HAMMOCK: 0,
        SpawnCategory.OTHER: 0,
    }
    for point in points:
        if point.category in distribution:
            distribution[point.category] += 1
    return distribution
