"""Task selection: spawn points, categories, policies, and hints."""

from repro.spawn.coverage import (
    CoverageReport,
    coverage,
    heuristic_subsumption,
)
from repro.spawn.classify import (
    ProcedureAnalysis,
    classify_block,
    classify_procedure,
    classify_program,
    static_distribution,
)
from repro.spawn.hints import HintEntry, HintTable
from repro.spawn.loop_spawns import loop_spawn_points, loop_spawn_points_of_procedure
from repro.spawn.points import (
    POSTDOMINATOR_CATEGORIES,
    SpawnCategory,
    SpawnPoint,
)
from repro.spawn.policies import (
    COMBINATION_POLICY_SPECS,
    EXCLUSION_POLICY_SPECS,
    INDIVIDUAL_POLICY_SPECS,
    POLICY_ALIASES,
    SpawnAnalysis,
    SpawnPolicy,
    canonical_spec,
    merge_policies,
    policy_from_points,
)
from repro.spawn.profiling import (
    DEFAULT_MAX_SPAWN_DISTANCE,
    PointProfile,
    SpawnProfile,
    profile_spawn_points,
)

__all__ = [
    "SpawnCategory",
    "SpawnPoint",
    "POSTDOMINATOR_CATEGORIES",
    "ProcedureAnalysis",
    "classify_block",
    "classify_procedure",
    "classify_program",
    "static_distribution",
    "loop_spawn_points",
    "loop_spawn_points_of_procedure",
    "SpawnAnalysis",
    "SpawnPolicy",
    "merge_policies",
    "policy_from_points",
    "INDIVIDUAL_POLICY_SPECS",
    "COMBINATION_POLICY_SPECS",
    "EXCLUSION_POLICY_SPECS",
    "POLICY_ALIASES",
    "canonical_spec",
    "HintEntry",
    "HintTable",
    "PointProfile",
    "SpawnProfile",
    "profile_spawn_points",
    "DEFAULT_MAX_SPAWN_DISTANCE",
    "CoverageReport",
    "coverage",
    "heuristic_subsumption",
]
