"""Profile-driven spawn-point characterization.

The paper's simulator "obtains its spawn points from a profile-driven
immediate postdominator analysis".  This module replays a committed
trace and measures, for every static spawn point:

* how often its trigger is reached dynamically,
* the dynamic distance (in instructions) from trigger to spawn target,
* the registers written in the spawned-over region (the contents of the
  hint cache's 8-byte dependence entry).

A single profiling pass covers any number of spawn points, so all
policies of one workload share one pass.
"""

from collections import defaultdict

from repro.spawn.hints import HintEntry, HintTable

#: Spawn targets further than this many instructions ahead are treated
#: as unreachable ("tasks are not spawned too far into the future").
DEFAULT_MAX_SPAWN_DISTANCE = 512

#: Number of occurrences whose register write sets are accumulated into
#: the hint mask (write sets converge after a few iterations).
_WRITE_SET_SAMPLES = 16


class PointProfile:
    """Dynamic statistics of one static spawn point."""

    __slots__ = (
        "spawn_point",
        "occurrences",
        "reachable_occurrences",
        "total_distance",
        "max_distance",
        "write_set_mask",
        "_write_samples",
    )

    def __init__(self, spawn_point):
        self.spawn_point = spawn_point
        #: Times the trigger PC was committed.
        self.occurrences = 0
        #: Times the spawn target appeared within the distance cap.
        self.reachable_occurrences = 0
        self.total_distance = 0
        #: Largest observed trigger-to-target distance: an upper bound
        #: on the size of the task this spawn point creates.
        self.max_distance = 0
        self.write_set_mask = 0
        self._write_samples = 0

    @property
    def mean_distance(self):
        """Mean trigger-to-target distance over reachable occurrences."""
        if not self.reachable_occurrences:
            return 0.0
        return self.total_distance / self.reachable_occurrences

    @property
    def reachability(self):
        """Fraction of occurrences whose target was within the cap."""
        if not self.occurrences:
            return 0.0
        return self.reachable_occurrences / self.occurrences

    def to_hint_entry(self):
        """Convert to a :class:`~repro.spawn.hints.HintEntry`."""
        return HintEntry(
            self.spawn_point,
            write_set_mask=self.write_set_mask,
            mean_distance=self.mean_distance,
            occurrence_count=self.reachable_occurrences,
        )


class SpawnProfile:
    """Profiles for a set of spawn points over one trace."""

    def __init__(self, profiles):
        self._profiles = profiles

    def of_point(self, spawn_point):
        """The :class:`PointProfile` of ``spawn_point`` (or None)."""
        return self._profiles.get(spawn_point.key())

    def hint_table(self, policy, min_occurrences=1, min_loop_task_size=32):
        """Build the hint table for ``policy`` from this profile.

        Spawn points never observed dynamically (or observed fewer than
        ``min_occurrences`` times) get no hint entry, so the Task Spawn
        Unit will not spawn them.

        Loop-derived spawns (loop iterations and loop fall-throughs)
        additionally require a maximum spawned-over distance of at least
        ``min_loop_task_size`` instructions: TLS compilers size loop
        tasks (Multiscalar, POSH apply unrolling/selection to make
        "tasks of suitable sizes"), because tiny iteration tasks cost
        more in task overhead and inter-task dependences than they
        expose in parallelism.  The maximum is used because loop-exit
        triggers fire on every iteration while only the earliest
        instance actually delimits the task.
        """
        from repro.spawn.points import SpawnCategory

        sized_categories = (SpawnCategory.LOOP, SpawnCategory.LOOP_FALL_THROUGH)
        table = HintTable()
        for point in policy:
            profile = self._profiles.get(point.key())
            if profile is None or profile.reachable_occurrences < min_occurrences:
                continue
            if (
                point.category in sized_categories
                and profile.max_distance < min_loop_task_size
            ):
                continue
            table.add(profile.to_hint_entry())
        return table

    def __len__(self):
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles.values())


def profile_spawn_points(trace, points, max_distance=DEFAULT_MAX_SPAWN_DISTANCE):
    """Profile ``points`` over ``trace`` in one backward pass.

    Args:
        trace: A committed :class:`~repro.sim.trace.Trace`.
        points: Iterable of :class:`~repro.spawn.points.SpawnPoint`
            (typically the union of all policies' points).
        max_distance: Distance cap in dynamic instructions.

    Returns:
        A :class:`SpawnProfile`.
    """
    points_by_trigger = defaultdict(list)
    profiles = {}
    for point in points:
        key = point.key()
        if key in profiles:
            continue
        profiles[key] = PointProfile(point)
        points_by_trigger[point.trigger_pc].append(point)

    records = trace.records
    count = len(records)

    # Backward pass: next_occurrence[idx] resolves, for every trigger
    # occurrence, the index of the next dynamic instance of its target.
    pending = []  # (trigger_index, point_key, target_pc) awaiting masks
    last_seen = {}
    for index in range(count - 1, -1, -1):
        record = records[index]
        pc = record.inst.pc
        triggered = points_by_trigger.get(pc)
        if triggered is not None:
            for point in triggered:
                profile = profiles[point.key()]
                profile.occurrences += 1
                target_index = last_seen.get(point.spawn_pc, -1)
                if target_index < 0:
                    continue
                distance = target_index - index
                if distance <= 0 or distance > max_distance:
                    continue
                profile.reachable_occurrences += 1
                profile.total_distance += distance
                if distance > profile.max_distance:
                    profile.max_distance = distance
                if profile._write_samples < _WRITE_SET_SAMPLES:
                    profile._write_samples += 1
                    pending.append((index, point.key(), target_index))
        last_seen[pc] = index

    # Forward pass: accumulate write-set masks for the sampled windows.
    if pending:
        pending.sort()
        window_starts = defaultdict(list)
        for start, key, stop in pending:
            window_starts[start].append((key, stop))
        active = []  # (stop_index, profile)
        for index in range(count):
            if index in window_starts:
                for key, stop in window_starts[index]:
                    active.append((stop, profiles[key]))
            if active:
                destination = records[index].inst.rd
                if destination:
                    bit = 1 << destination
                    for stop, profile in active:
                        if index < stop:
                            profile.write_set_mask |= bit
                active = [(stop, profile) for stop, profile in active if stop > index + 1]

    return SpawnProfile(profiles)
