"""Coverage analysis between spawn policies.

Section 4.1's argument is that "heuristics approximate only a subset of
the postdominance information": every heuristic's useful spawn points
reappear in the full postdominator set, which also contains points no
heuristic finds.  This module makes that claim queryable: given two
policies, it reports which triggers/targets they share and which are
unique — and, given a profile, how much dynamic spawn activity the
overlap represents.
"""


class CoverageReport:
    """Overlap between a candidate policy and a reference policy."""

    def __init__(self, candidate, reference, shared, only_candidate, only_reference):
        self.candidate = candidate
        self.reference = reference
        #: Spawn points with identical (trigger, target) in both.
        self.shared = tuple(shared)
        self.only_candidate = tuple(only_candidate)
        self.only_reference = tuple(only_reference)

    @property
    def candidate_covered_fraction(self):
        """Fraction of the candidate's points present in the reference."""
        total = len(self.shared) + len(self.only_candidate)
        if not total:
            return 1.0
        return len(self.shared) / total

    def dynamic_covered_fraction(self, profile):
        """Fraction of the candidate's *dynamic* spawn occurrences whose
        spawn point also exists in the reference policy."""
        covered = 0
        total = 0
        for point in self.shared:
            point_profile = profile.of_point(point)
            if point_profile is not None:
                covered += point_profile.reachable_occurrences
                total += point_profile.reachable_occurrences
        for point in self.only_candidate:
            point_profile = profile.of_point(point)
            if point_profile is not None:
                total += point_profile.reachable_occurrences
        if not total:
            return 1.0
        return covered / total

    def __repr__(self):
        return "CoverageReport({!r} vs {!r}: {}/{} shared)".format(
            self.candidate.name,
            self.reference.name,
            len(self.shared),
            len(self.shared) + len(self.only_candidate),
        )


def coverage(candidate, reference):
    """Compute the :class:`CoverageReport` of ``candidate`` against
    ``reference`` (points match on exact (trigger, target) pairs)."""
    reference_keys = {point.key() for point in reference}
    candidate_keys = {point.key() for point in candidate}
    shared = [point for point in candidate if point.key() in reference_keys]
    only_candidate = [
        point for point in candidate if point.key() not in reference_keys
    ]
    only_reference = [
        point for point in reference if point.key() not in candidate_keys
    ]
    return CoverageReport(candidate, reference, shared, only_candidate, only_reference)


def heuristic_subsumption(analysis):
    """Coverage of each individual heuristic by the postdominator set.

    Args:
        analysis: A :class:`~repro.spawn.policies.SpawnAnalysis`.

    Returns:
        Dict mapping heuristic spec to its
        :attr:`CoverageReport.candidate_covered_fraction` against the
        ``postdoms`` policy.  The ipdom-derived heuristics (loopFT,
        procFT, hammock, other) are covered by construction; loop
        iteration spawns are the ones the postdominator set does *not*
        contain directly (the paper argues their benefit is captured
        indirectly, via hammock + loop fall-through composition).
    """
    postdoms = analysis.policy("postdoms")
    fractions = {}
    for spec in ("loopFT", "procFT", "hammock", "other", "loop"):
        report = coverage(analysis.policy(spec), postdoms)
        fractions[spec] = report.candidate_covered_fraction
    return fractions
