"""Loop-iteration spawn points (the classic TLS heuristic).

Section 2.3: "For the purposes of spawning a loop iteration it is
better to spawn the last basic block of the loop (which ends in the
loop branch) from the loop entry, as opposed to spawning the start of
next loop iteration from the start of current loop iteration."  The
loop-index update sits just before the loop branch, so spawning the
latch block keeps that update local to the task that consumes it.

Accordingly, each loop contributes spawn points ``header -> latch``:
the trigger is the first instruction of the loop header, and the
spawned task begins at the latch block (which ends in the back-edge
branch).
"""

from repro.spawn.classify import ProcedureAnalysis
from repro.spawn.points import SpawnCategory, SpawnPoint


def loop_spawn_points_of_procedure(cfg, analysis=None):
    """Loop-iteration spawn points of one procedure."""
    if analysis is None:
        analysis = ProcedureAnalysis(cfg)
    points = []
    for loop in analysis.loop_forest:
        header_block = cfg.block(loop.header)
        trigger_pc = header_block.start_pc
        for latch in sorted(loop.latches):
            if latch == loop.header:
                # Single-block loop: the header *is* the latch; spawning
                # it from itself would be the degenerate self-spawn the
                # paper argues against, so spawn the block start anyway
                # (the next iteration of the whole block).
                spawn_pc = header_block.start_pc
                trigger = header_block.terminator.pc
                points.append(
                    SpawnPoint(trigger, spawn_pc, SpawnCategory.LOOP, cfg.name)
                )
                continue
            latch_block = cfg.block(latch)
            points.append(
                SpawnPoint(
                    trigger_pc, latch_block.start_pc, SpawnCategory.LOOP, cfg.name
                )
            )
    return points


def loop_spawn_points(program_cfgs):
    """Loop-iteration spawn points of a whole program."""
    points = []
    for cfg in program_cfgs:
        points.extend(loop_spawn_points_of_procedure(cfg))
    points.sort(key=lambda point: point.trigger_pc)
    return points
