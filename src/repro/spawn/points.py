"""Spawn points: where new tasks may be created, and their categories.

Section 2.2 of the paper classifies the immediate postdominators of
control instructions into four categories — loop fall-throughs,
procedure fall-throughs, simple hammocks, and "other" — plus the
classic loop-iteration spawns used as a heuristic baseline.
"""

import enum


class SpawnCategory(enum.Enum):
    """The task types of the paper's Figure 5, plus loop-iteration spawns."""

    #: Immediate postdominator of a loop branch (including breaks and
    #: other exit conditions).  Exposes outer-loop parallelism.
    LOOP_FALL_THROUGH = "loopFT"
    #: Immediate postdominator of a call instruction.  Initiates
    #: instruction-cache misses early.
    PROCEDURE_FALL_THROUGH = "procFT"
    #: Join of a simple if-then / if-then-else.  Jumps over
    #: hard-to-predict branches.
    HAMMOCK = "hammock"
    #: Complex control flow and indirect jumps.
    OTHER = "other"
    #: Loop-iteration spawns (heuristic; not an ipdom category).
    LOOP = "loop"

    def __str__(self):
        return self.value


#: The four immediate-postdominator categories (Figure 5's legend order).
POSTDOMINATOR_CATEGORIES = (
    SpawnCategory.LOOP_FALL_THROUGH,
    SpawnCategory.PROCEDURE_FALL_THROUGH,
    SpawnCategory.HAMMOCK,
    SpawnCategory.OTHER,
)


class SpawnPoint:
    """A static spawn opportunity.

    When the fetch unit reaches ``trigger_pc`` (the PC of a control
    instruction), the Task Spawn Unit may create a new task beginning at
    ``spawn_pc``.

    Attributes:
        trigger_pc: PC of the instruction whose fetch triggers the spawn.
        spawn_pc: PC where the spawned task begins.
        category: The :class:`SpawnCategory`.
        procedure: Name of the enclosing procedure (diagnostics).
    """

    __slots__ = ("trigger_pc", "spawn_pc", "category", "procedure")

    def __init__(self, trigger_pc, spawn_pc, category, procedure=None):
        self.trigger_pc = trigger_pc
        self.spawn_pc = spawn_pc
        self.category = category
        self.procedure = procedure

    def key(self):
        """Identity key: (trigger, target)."""
        return (self.trigger_pc, self.spawn_pc)

    def __eq__(self, other):
        return (
            isinstance(other, SpawnPoint)
            and self.trigger_pc == other.trigger_pc
            and self.spawn_pc == other.spawn_pc
            and self.category == other.category
        )

    def __hash__(self):
        return hash((self.trigger_pc, self.spawn_pc, self.category))

    def __repr__(self):
        return "SpawnPoint({:#x} -> {:#x}, {})".format(
            self.trigger_pc, self.spawn_pc, self.category
        )
