"""The Task Spawn Unit's hint table.

PolyFlow "dedicates a special cache for storing the addresses of the
immediate postdominators of branches (much like a BTB stores branch
targets)", with "an eight byte entry per spawn point, which is used to
store register and memory dependence information for the task".

Following the paper, conflict and capacity misses are *not* modelled:
the hint table is a plain mapping from trigger PC to hint entry.
"""

from repro.isa.instructions import NUM_REGISTERS


class HintEntry:
    """Dependence/profitability information for one spawn point.

    Attributes:
        spawn_point: The static :class:`~repro.spawn.points.SpawnPoint`.
        write_set_mask: Bitmask of registers written between the trigger
            and the spawn target (the spawned-over region); consumers of
            these registers in the spawned task are diverted.
        mean_distance: Mean dynamic distance (instructions) between the
            trigger and the spawn target, from profiling.
        occurrence_count: Number of profiled dynamic occurrences.
    """

    __slots__ = ("spawn_point", "write_set_mask", "mean_distance", "occurrence_count")

    def __init__(self, spawn_point, write_set_mask=0, mean_distance=0.0, occurrence_count=0):
        self.spawn_point = spawn_point
        self.write_set_mask = write_set_mask
        self.mean_distance = mean_distance
        self.occurrence_count = occurrence_count

    def write_set(self):
        """The write set as a frozenset of register indices."""
        return frozenset(
            register
            for register in range(NUM_REGISTERS)
            if self.write_set_mask & (1 << register)
        )

    def protects_register(self, register):
        """Whether the entry marks ``register`` as written in the region."""
        return bool(self.write_set_mask & (1 << register))

    def __repr__(self):
        return "HintEntry({!r}, |writes|={}, distance={:.1f})".format(
            self.spawn_point, bin(self.write_set_mask).count("1"), self.mean_distance
        )


class HintTable:
    """Trigger-PC-indexed table of :class:`HintEntry`."""

    def __init__(self, entries=None):
        self._entries = dict(entries or {})

    def add(self, entry):
        """Insert an entry, keyed by its spawn point's trigger PC."""
        self._entries[entry.spawn_point.trigger_pc] = entry

    def lookup(self, pc):
        """The entry whose trigger is ``pc``, or None."""
        return self._entries.get(pc)

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def entries(self):
        """All entries, sorted by trigger PC."""
        return sorted(self._entries.values(), key=lambda e: e.spawn_point.trigger_pc)
