"""Spawn policies: which spawn points a machine configuration uses.

The paper evaluates

* individual heuristics: ``loop``, ``loopFT``, ``procFT``, ``hammock``,
  ``other`` (Figure 9);
* control-equivalent spawning, ``postdoms`` = all four ipdom categories
  (Figures 9-12);
* heuristic combinations: ``loop+loopFT``, ``loopFT+procFT``,
  ``loop+procFT+loopFT`` (Figure 10);
* category exclusions: ``postdoms-loopFT`` etc. (Figure 11);
* the dynamic reconvergence predictor, ``rec_pred`` (Figure 12 — built
  in :mod:`repro.reconvergence`).

A policy is an immutable set of spawn points indexed by trigger PC.
PolyFlow's hint cache associates one spawn point with each branch PC,
so when two selected points share a trigger the first category listed
in the policy specification wins.
"""

from repro.errors import ConfigurationError
from repro.spawn.classify import classify_program
from repro.spawn.loop_spawns import loop_spawn_points
from repro.spawn.points import (
    POSTDOMINATOR_CATEGORIES,
    SpawnCategory,
    SpawnPoint,
)

#: Specs accepted by :meth:`SpawnAnalysis.policy`, in paper order.
INDIVIDUAL_POLICY_SPECS = ("loop", "loopFT", "procFT", "hammock", "other")
COMBINATION_POLICY_SPECS = ("loop+loopFT", "loopFT+procFT", "loop+procFT+loopFT")
EXCLUSION_POLICY_SPECS = (
    "postdoms-loopFT",
    "postdoms-procFT",
    "postdoms-hammock",
    "postdoms-other",
)

_CATEGORY_BY_SPEC = {
    "loop": SpawnCategory.LOOP,
    "loopFT": SpawnCategory.LOOP_FALL_THROUGH,
    "procFT": SpawnCategory.PROCEDURE_FALL_THROUGH,
    "hammock": SpawnCategory.HAMMOCK,
    "other": SpawnCategory.OTHER,
}

#: Human-friendly names for the paper's headline policies, accepted
#: anywhere a spec string is (CLI, :meth:`SpawnAnalysis.policy`).
POLICY_ALIASES = {
    "control-equivalent": "postdoms",
    "best-heuristic": "loop+procFT+loopFT",
}


def canonical_spec(spec):
    """Resolve policy aliases to the canonical spec string.

    Canonicalizing at every entry point keeps cache keys, report
    labels, and golden-trace filenames independent of which name the
    caller used.
    """
    spec = spec.strip()
    return POLICY_ALIASES.get(spec, spec)


class SpawnPolicy:
    """An immutable, trigger-indexed set of spawn points."""

    def __init__(self, name, points):
        self.name = name
        deduplicated = {}
        for point in points:
            deduplicated.setdefault(point.trigger_pc, point)
        self._by_trigger = deduplicated
        self.points = tuple(sorted(deduplicated.values(), key=lambda p: p.trigger_pc))

    def spawn_for(self, pc):
        """The :class:`SpawnPoint` triggered at ``pc``, or None."""
        return self._by_trigger.get(pc)

    def trigger_pcs(self):
        """All trigger PCs of this policy."""
        return frozenset(self._by_trigger)

    def categories(self):
        """Distinct categories present in this policy."""
        return frozenset(point.category for point in self.points)

    def __len__(self):
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __repr__(self):
        return "SpawnPolicy(name={!r}, points={})".format(self.name, len(self.points))


class SpawnAnalysis:
    """Cached spawn-point analysis of one program.

    Computes the control-equivalent (postdominator) spawn points and
    the heuristic loop-iteration spawn points once, then materializes
    any named policy.
    """

    def __init__(self, program_cfgs):
        self.program_cfgs = program_cfgs
        self.postdominator_points = classify_program(program_cfgs)
        self.loop_points = loop_spawn_points(program_cfgs)
        self._by_category = {category: [] for category in SpawnCategory}
        for point in self.postdominator_points:
            self._by_category[point.category].append(point)
        self._by_category[SpawnCategory.LOOP] = list(self.loop_points)
        self._policies = {}

    def points_of_category(self, category):
        """All spawn points of one :class:`SpawnCategory`."""
        return tuple(self._by_category[category])

    def policy(self, spec):
        """Materialize the policy named by ``spec`` (memoized).

        Accepted specs: ``postdoms``, the individual heuristics
        (``loop``, ``loopFT``, ``procFT``, ``hammock``, ``other``),
        ``+``-joined combinations thereof, ``postdoms-<category>``
        exclusions, and the :data:`POLICY_ALIASES` names
        (``control-equivalent``, ``best-heuristic``).

        Policies are immutable, so each canonical spec is materialized
        once per analysis and shared by every caller.

        Raises:
            ConfigurationError: If the spec is not recognized.
        """
        spec = canonical_spec(spec)
        # Instances unpickled from entries predating the memo lack the
        # attribute; recreate it rather than fail.
        memo = getattr(self, "_policies", None)
        if memo is None:
            memo = self._policies = {}
        policy = memo.get(spec)
        if policy is None:
            policy = memo[spec] = self._materialize(spec)
        return policy

    def _materialize(self, spec):
        if spec == "postdoms":
            return SpawnPolicy("postdoms", self.postdominator_points)
        if spec.startswith("postdoms-"):
            excluded_spec = spec[len("postdoms-"):]
            excluded = _CATEGORY_BY_SPEC.get(excluded_spec)
            if excluded is None or excluded not in POSTDOMINATOR_CATEGORIES:
                raise ConfigurationError(
                    "cannot exclude unknown category {!r}".format(excluded_spec)
                )
            points = [
                point
                for point in self.postdominator_points
                if point.category != excluded
            ]
            return SpawnPolicy(spec, points)
        parts = [part.strip() for part in spec.split("+")]
        points = []
        for part in parts:
            category = _CATEGORY_BY_SPEC.get(part)
            if category is None:
                raise ConfigurationError("unknown spawn policy spec {!r}".format(spec))
            points.extend(self._by_category[category])
        return SpawnPolicy(spec, points)

    def empty_policy(self):
        """The no-spawning policy (superscalar baseline)."""
        return SpawnPolicy("none", [])


def merge_policies(name, *policies):
    """Union several policies (earlier policies win trigger conflicts)."""
    points = []
    for policy in policies:
        points.extend(policy.points)
    return SpawnPolicy(name, points)


def policy_from_points(name, points):
    """Build a policy from an explicit iterable of spawn points."""
    return SpawnPolicy(name, list(points))


__all__ = [
    "SpawnPolicy",
    "SpawnAnalysis",
    "SpawnPoint",
    "merge_policies",
    "policy_from_points",
    "INDIVIDUAL_POLICY_SPECS",
    "COMBINATION_POLICY_SPECS",
    "EXCLUSION_POLICY_SPECS",
    "POLICY_ALIASES",
    "canonical_spec",
]
