"""Natural-loop detection and loop nesting.

Back edges are CFG edges ``u -> v`` where ``v`` dominates ``u``.  The
natural loop of a back edge is ``v`` plus every node that can reach
``u`` without passing through ``v``.  Loops sharing a header are merged.
"""

from repro.analysis.dominance import compute_dominator_tree


class Loop:
    """One natural loop.

    Attributes:
        header: Block index of the loop header.
        body: Frozenset of block indices in the loop (header included).
        latches: Block indices that are sources of back edges.
        exit_edges: CFG edges ``(source, destination)`` leaving the loop.
        parent: The innermost enclosing loop, or None.
        children: Loops immediately nested inside this one.
    """

    def __init__(self, header, body, latches):
        self.header = header
        self.body = frozenset(body)
        self.latches = frozenset(latches)
        self.exit_edges = []
        self.parent = None
        self.children = []

    @property
    def depth(self):
        """Nesting depth (outermost loops have depth 1)."""
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def contains_block(self, node):
        """Whether ``node`` is inside this loop."""
        return node in self.body

    def __repr__(self):
        return "Loop(header={}, size={}, depth={})".format(
            self.header, len(self.body), self.depth
        )


class LoopForest:
    """All natural loops of a CFG with their nesting relation."""

    def __init__(self, cfg, loops):
        self.cfg = cfg
        #: Loops sorted by (depth, header index).
        self.loops = loops
        self._innermost = {}
        for loop in sorted(loops, key=lambda item: item.depth):
            for node in loop.body:
                self._innermost[node] = loop

    def innermost_loop_of(self, node):
        """The innermost loop containing ``node``, or None."""
        return self._innermost.get(node)

    def is_back_edge(self, source, destination):
        """Whether the CFG edge is a loop back edge."""
        for loop in self.loops:
            if destination == loop.header and source in loop.latches:
                return True
        return False

    def is_loop_exit_edge(self, source, destination):
        """Whether the CFG edge leaves the innermost loop of ``source``."""
        loop = self.innermost_loop_of(source)
        while loop is not None:
            if destination not in loop.body:
                return True
            loop = loop.parent
        return False

    def top_level_loops(self):
        """Loops that are not nested inside any other loop."""
        return [loop for loop in self.loops if loop.parent is None]

    def __len__(self):
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)


def find_natural_loops(cfg, dominator_tree=None):
    """Compute the :class:`LoopForest` of ``cfg``."""
    if dominator_tree is None:
        dominator_tree = compute_dominator_tree(cfg)

    # 1. Find back edges among reachable blocks.
    back_edges = []
    for node in range(len(cfg.blocks)):
        if node not in dominator_tree:
            continue
        for successor in cfg.successors(node):
            if cfg.is_exit(successor):
                continue
            if dominator_tree.dominates(successor, node):
                back_edges.append((node, successor))

    # 2. Natural loop of each back edge; merge loops with one header.
    bodies = {}
    latches = {}
    for latch, header in back_edges:
        body = {header, latch}
        worklist = [latch] if latch != header else []
        while worklist:
            node = worklist.pop()
            for predecessor in cfg.predecessors(node):
                if predecessor not in body:
                    body.add(predecessor)
                    worklist.append(predecessor)
        bodies.setdefault(header, set()).update(body)
        latches.setdefault(header, set()).add(latch)

    loops = [
        Loop(header, bodies[header], latches[header]) for header in sorted(bodies)
    ]

    # 3. Nesting: the parent is the smallest strictly-enclosing loop.
    by_size = sorted(loops, key=lambda loop: len(loop.body))
    for index, loop in enumerate(by_size):
        for candidate in by_size[index + 1 :]:
            if loop.header in candidate.body and loop.body <= candidate.body:
                loop.parent = candidate
                candidate.children.append(loop)
                break

    # 4. Exit edges.
    for loop in loops:
        for node in loop.body:
            for successor in cfg.successors(node):
                if cfg.is_exit(successor) or successor not in loop.body:
                    loop.exit_edges.append((node, successor))

    return LoopForest(cfg, loops)
