"""Dominator and postdominator computation.

Implements the iterative dominator algorithm of Cooper, Harvey and
Kennedy ("A simple, fast dominance algorithm").  Postdominators are
dominators of the reversed CFG with the virtual exit as the entry, as in
Section 2.1 of the paper.
"""

from repro.errors import AnalysisError


def _reverse_postorder(entry, successors_fn):
    """Reverse postorder of the nodes reachable from ``entry``."""
    order = []
    visited = {entry}
    stack = [(entry, iter(successors_fn(entry)))]
    while stack:
        node, successor_iter = stack[-1]
        advanced = False
        for successor in successor_iter:
            if successor not in visited:
                visited.add(successor)
                stack.append((successor, iter(successors_fn(successor))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def compute_immediate_dominators(entry, successors_fn, predecessors_fn):
    """Compute immediate dominators for the graph reachable from ``entry``.

    Args:
        entry: The root node.
        successors_fn: Callable returning a node's successors.
        predecessors_fn: Callable returning a node's predecessors.

    Returns:
        Mapping from each reachable node to its immediate dominator.
        The entry maps to itself.
    """
    order = _reverse_postorder(entry, successors_fn)
    rpo_number = {node: number for number, node in enumerate(order)}
    idom = {entry: entry}

    def intersect(a, b):
        while a != b:
            while rpo_number[a] > rpo_number[b]:
                a = idom[a]
            while rpo_number[b] > rpo_number[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            new_idom = None
            for predecessor in predecessors_fn(node):
                if predecessor in idom:
                    if new_idom is None:
                        new_idom = predecessor
                    else:
                        new_idom = intersect(predecessor, new_idom)
            if new_idom is None:
                continue
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


class DominatorTree:
    """A (post)dominator tree with ancestor queries.

    Attributes:
        root: The tree root (the CFG entry for dominators, the virtual
            exit for postdominators).
        parent_map: Mapping node -> immediate (post)dominator; the root
            maps to ``None``.  Nodes absent from the map are not
            (post)dominated (e.g. blocks that cannot reach the exit).
    """

    def __init__(self, root, idom_map):
        self.root = root
        self.parent_map = {}
        self.children = {root: []}
        for node, parent in idom_map.items():
            if node == root:
                self.parent_map[node] = None
                continue
            self.parent_map[node] = parent
            self.children.setdefault(parent, []).append(node)
            self.children.setdefault(node, [])
        self._depth = {}
        self._compute_depths()

    def _compute_depths(self):
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            self._depth[node] = depth
            for child in self.children.get(node, ()):
                stack.append((child, depth + 1))

    def __contains__(self, node):
        return node in self.parent_map

    def parent(self, node):
        """Immediate (post)dominator of ``node``, or None for the root.

        Raises:
            AnalysisError: If ``node`` is not in the tree.
        """
        if node not in self.parent_map:
            raise AnalysisError("node {!r} is not in the dominator tree".format(node))
        return self.parent_map[node]

    def parent_or_none(self, node):
        """Like :meth:`parent` but returns None for absent nodes."""
        return self.parent_map.get(node)

    def depth(self, node):
        """Depth of ``node`` below the root."""
        return self._depth[node]

    def dominates(self, ancestor, node):
        """Whether ``ancestor`` (post)dominates ``node`` (reflexive)."""
        if ancestor not in self.parent_map or node not in self.parent_map:
            return False
        while self._depth[node] > self._depth[ancestor]:
            node = self.parent_map[node]
        return node == ancestor

    def strictly_dominates(self, ancestor, node):
        """Whether ``ancestor`` (post)dominates ``node`` and differs."""
        return ancestor != node and self.dominates(ancestor, node)

    def nodes(self):
        """All nodes in the tree."""
        return self.parent_map.keys()


def compute_dominator_tree(cfg):
    """Dominator tree of a CFG, rooted at the entry block."""
    idom = compute_immediate_dominators(
        cfg.entry_index, cfg.successors, cfg.predecessors
    )
    return DominatorTree(cfg.entry_index, idom)


def compute_postdominator_tree(cfg):
    """Postdominator tree of a CFG, rooted at the virtual exit.

    Blocks that cannot reach the exit (infinite loops under the profiled
    edge set) are absent from the tree and therefore have no immediate
    postdominator.
    """
    idom = compute_immediate_dominators(
        cfg.exit_index, cfg.predecessors, cfg.successors
    )
    return DominatorTree(cfg.exit_index, idom)


def immediate_postdominator_block(cfg, postdominator_tree, node):
    """The ipdom of ``node`` as a block index, or None.

    Returns None when the ipdom is the virtual exit (there is no
    instruction to spawn) or when ``node`` has no postdominator.
    """
    parent = postdominator_tree.parent_or_none(node)
    if parent is None or cfg.is_exit(parent):
        return None
    return parent
