"""Tier A of the grid execution stack: analytic speedup estimation.

A closed-form IPC/speedup predictor per (workload, spec, config) tuple,
computed entirely from artifacts the analysis pipeline already caches —
the :class:`~repro.sim.predecode.DecodedTrace` flat arrays, the spawn
profiles, and branch-predictability statistics replayed once per trace
— with **zero cycle-level simulation**.  The estimator triages the
synthesized scenario catalog (see
:func:`repro.experiments.synth_sweep.estimate_first_sweep`): exact
simulation is spent where the champion-vs-challenger verdict is still
in doubt, and the remaining cells ride on predictions labeled
``source=estimated`` end to end.

The model has two parts:

* **Exact signals** — the trace is replayed once through the *actual*
  front-end structures (gshare/BTB/RAS) and a dataflow-height pass, so
  mispredict counts, fetch-group serialization, and the critical path
  are measured, not guessed.  The baseline (superscalar) cycle
  prediction is a pure lower-bound composition of these signals.
* **A fitted ratio model** — PolyFlow cycles divided by baseline
  cycles is predicted as a linear function of eleven structural
  features (spawn coverage split into loop-shaped and hammock-shaped
  parts, stall shares, spawn density, conflict pressure, spawned-region
  size).  The weights in :data:`RATIO_WEIGHTS` were fit per policy
  spec by least squares against exact simulations of the *entire*
  2592-cell synthesized catalog under ``PAPER_CONFIG``; specs without
  their own row fall back to the pooled fit under the ``"*"`` key.

The estimate deliberately reports a confidence band rather than
pretending to be exact — consumers must treat ``predicted +/- band``
as the decision interval.  Observed error is tracked as a benchmark
channel (``benchmarks/bench_kernel.py`` schema 5, ``estimator``), so
model drift is caught by the same gate that watches kernel throughput.
"""

from repro.frontend.branch_predictor import (
    GsharePredictor,
    IndirectTargetPredictor,
    ReturnAddressStack,
)
from repro.sim.predecode import (
    KIND_CALL_DIRECT,
    KIND_CALL_INDIRECT,
    KIND_COND_BRANCH,
    KIND_DIRECT_JUMP,
    KIND_RETURN,
    KIND_SWITCH,
    LAT_LOAD,
    LAT_MUL,
    LAT_STORE,
)

#: Feature order of every :data:`RATIO_WEIGHTS` row (the final entry is
#: the intercept).  See :func:`ratio_features` for definitions.
RATIO_FEATURES = (
    "coverage",
    "loop_coverage",
    "hammock_coverage",
    "stall_share",
    "coverage_x_stall",
    "spawn_density",
    "hidden_mispredicts",
    "conflict_pressure",
    "critical_path_share",
    "region_size",
    "loop_x_size",
)

#: Per-spec linear weights for ``polyflow_cycles / baseline_cycles``,
#: eleven features plus intercept, fit against exact simulations of the
#: full synthesized catalog under ``PAPER_CONFIG`` (scale 1.0).  The
#: ``"*"`` row is the pooled fallback for specs without their own fit.
RATIO_WEIGHTS = {
    "postdoms": (
        0.0762, 0.0919, -0.0157, -0.0643, -0.1518, -1.7165,
        0.2585, -0.848, 0.691, -0.7227, 0.7237, 0.8457,
    ),
    "loop+procFT+loopFT": (
        0.0297, 0.0297, 0.0, 0.2251, -1.1628, 0.8581,
        0.0812, 4.228, 0.4362, 0.1055, 0.3637, 0.7851,
    ),
    "*": (
        -0.0478, 0.0948, -0.1426, 0.261, -0.9079, 0.6715,
        0.2243, 0.6742, 0.5966, 0.0859, 0.215, 0.7282,
    ),
}

#: Predicted cycle ratios are clamped into this interval before being
#: turned into a speedup: the linear form can stray outside what any
#: simulation produces on extreme feature combinations.
RATIO_CLAMP = (0.08, 4.0)

#: Confidence band: absolute floor plus a fraction of the prediction.
#: Calibrated so ``|predicted - exact| <= band`` holds for ~90% of the
#: full catalog under ``PAPER_CONFIG``.
BAND_ABS = 34.0
BAND_REL = 0.6

#: Spawned-over instructions per spawn at which the ``region_size``
#: feature saturates.
_SIZE_SATURATION = 64.0

_SIGNALS_MEMO = {}
_COVERAGE_MEMO = {}


class TraceSignals:
    """Per-trace features the cycle models consume, computed in O(n)
    passes over the decoded flat arrays (no timing simulation).

    Predictor-dependent fields (mispredict counts) replay the real
    front-end structures of the configured machine, so they match what
    a simulation of the same trace observes at fetch.
    ``mispredicts_by_pc`` keys conditional-branch PCs to their gshare
    miss counts; the ratio model intersects it with a policy's hint
    table to see how many mispredicts sit at spawn triggers (where a
    concurrent task hides the bubble).
    """

    __slots__ = (
        "length",
        "conditional_branches",
        "cond_mispredicts",
        "indirect_transfers",
        "indirect_mispredicts",
        "returns",
        "return_mispredicts",
        "taken_transfers",
        "fetch_groups",
        "load_count",
        "store_count",
        "mul_count",
        "mem_dep_count",
        "critical_path",
        "mispredicts_by_pc",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)
        self.mispredicts_by_pc = {}

    @property
    def total_mispredicts(self):
        return self.cond_mispredicts + self.indirect_mispredicts + self.return_mispredicts

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


def _count_kinds(decoded):
    """Occurrences of each ``KIND_*`` / ``LAT_*`` class.

    Uses the optional NumPy backend when enabled: ``kind``/``lat`` are
    bytearrays, so ``bincount`` over them is an exact integer operation
    — observably identical to the stdlib loop.
    """
    from repro.accel import numpy_or_none

    numpy = numpy_or_none()
    if numpy is not None:
        kind_counts = numpy.bincount(
            numpy.frombuffer(bytes(decoded.kind), dtype=numpy.uint8), minlength=8
        )
        lat_counts = numpy.bincount(
            numpy.frombuffer(bytes(decoded.lat), dtype=numpy.uint8), minlength=4
        )
        return [int(value) for value in kind_counts], [int(value) for value in lat_counts]
    kind_counts = [0] * 8
    for kind in decoded.kind:
        kind_counts[kind] += 1
    lat_counts = [0] * 4
    for lat in decoded.lat:
        lat_counts[lat] += 1
    return kind_counts, lat_counts


def compute_signals(decoded, config):
    """Compute :class:`TraceSignals` for one decoded trace."""
    signals = TraceSignals()
    n = decoded.length
    signals.length = n
    if not n:
        return signals

    kind_counts, lat_counts = _count_kinds(decoded)
    signals.conditional_branches = kind_counts[KIND_COND_BRANCH]
    signals.indirect_transfers = (
        kind_counts[KIND_CALL_INDIRECT] + kind_counts[KIND_SWITCH]
    )
    signals.returns = kind_counts[KIND_RETURN]
    signals.load_count = lat_counts[LAT_LOAD]
    signals.store_count = lat_counts[LAT_STORE]
    signals.mul_count = lat_counts[LAT_MUL]

    kinds = decoded.kind
    takens = decoded.taken
    pcs = decoded.pc
    next_pcs = decoded.next_pc
    fall_throughs = decoded.fall_through

    # Front-end replay: the real gshare/BTB/RAS over the committed
    # stream, exactly as the trace-driven fetch stage trains them.
    gshare = GsharePredictor(config.gshare_counters, config.gshare_history_bits)
    indirect = IndirectTargetPredictor()
    ras = ReturnAddressStack()
    by_pc = signals.mispredicts_by_pc
    cond_miss = indirect_miss = return_miss = 0
    taken_transfers = 0
    fetch_groups = 0
    group_length = 0
    width = config.width
    for index in range(n):
        kind = kinds[index]
        group_length += 1
        if kind:
            breaks = True
            if kind == KIND_COND_BRANCH:
                taken = takens[index]
                if gshare.predict_and_update(pcs[index], taken) != bool(taken):
                    cond_miss += 1
                    pc = pcs[index]
                    by_pc[pc] = by_pc.get(pc, 0) + 1
                breaks = bool(taken)
            elif kind == KIND_CALL_DIRECT:
                ras.push(fall_throughs[index])
            elif kind == KIND_CALL_INDIRECT:
                ras.push(fall_throughs[index])
                if not indirect.predict_and_update(pcs[index], next_pcs[index]):
                    indirect_miss += 1
            elif kind == KIND_RETURN:
                if ras.pop() != next_pcs[index]:
                    return_miss += 1
            elif kind == KIND_SWITCH:
                if not indirect.predict_and_update(pcs[index], next_pcs[index]):
                    indirect_miss += 1
            if breaks:
                taken_transfers += 1
                fetch_groups += -(-group_length // width)
                group_length = 0
    if group_length:
        fetch_groups += -(-group_length // width)
    signals.cond_mispredicts = cond_miss
    signals.indirect_mispredicts = indirect_miss
    signals.return_mispredicts = return_miss
    signals.taken_transfers = taken_transfers
    signals.fetch_groups = fetch_groups

    # Dataflow height: completion[i] = max(producer completions) + lat.
    mul_latency = config.mul_latency
    dep0 = decoded.dep0
    dep1 = decoded.dep1
    mem_dep = decoded.mem_dep
    lats = decoded.lat
    completion = [0] * n
    height = 0
    mem_deps = 0
    for index in range(n):
        ready = 0
        producer = dep0[index]
        if producer >= 0:
            ready = completion[producer]
        producer = dep1[index]
        if producer >= 0 and completion[producer] > ready:
            ready = completion[producer]
        producer = mem_dep[index]
        if producer >= 0:
            mem_deps += 1
            if completion[producer] > ready:
                ready = completion[producer]
        lat = lats[index]
        if lat == LAT_MUL:
            done = ready + mul_latency
        else:
            done = ready + 1
        completion[index] = done
        if done > height:
            height = done
    signals.critical_path = height
    signals.mem_dep_count = mem_deps
    return signals


def trace_signals(analyses, config):
    """Signals of one program's trace (memoized per trace + front end)."""
    key = (
        analyses.digest,
        config.gshare_counters,
        config.gshare_history_bits,
        config.width,
        config.mul_latency,
    )
    signals = _SIGNALS_MEMO.get(key)
    if signals is None:
        signals = compute_signals(analyses.trace.decoded(), config)
        _SIGNALS_MEMO[key] = signals
    return signals


#: Spawn categories whose covered regions are loop-shaped (iteration or
#: fall-through bodies) rather than hammock-shaped: the ratio model
#: weights the two kinds of coverage differently.
_LOOP_CATEGORIES = ("loop", "loopFT", "procFT")


class SpawnCoverage:
    """Profiled spawn coverage of one (program, policy spec) pair."""

    __slots__ = ("points", "spawns", "covered", "loop_covered", "trigger_pcs")

    def __init__(self, points, spawns, covered, loop_covered, trigger_pcs):
        #: Static spawn points with a usable hint entry.
        self.points = points
        #: Profiled dynamic spawn opportunities.
        self.spawns = spawns
        #: Dynamic instructions inside spawned-over regions.
        self.covered = covered
        #: The loop-shaped subset of ``covered`` (see ``_LOOP_CATEGORIES``).
        self.loop_covered = loop_covered
        #: Trigger PCs of the policy's hint entries.
        self.trigger_pcs = trigger_pcs


def spawn_coverage(analyses, spec, profile_distance):
    """Coverage of ``spec`` over one program (memoized).

    Derived from the same hint table the Task Spawn Unit would load, so
    the estimator and the machine agree on which spawn points exist.
    """
    key = (analyses.digest, spec, profile_distance)
    coverage = _COVERAGE_MEMO.get(key)
    if coverage is None:
        policy = analyses.spawn_analysis.policy(spec)
        profile = analyses.spawn_profile(profile_distance)
        table = profile.hint_table(policy)
        spawns = 0
        covered = 0.0
        loop_covered = 0.0
        trigger_pcs = []
        for entry in table:
            spawns += entry.occurrence_count
            covered += entry.occurrence_count * entry.mean_distance
            if entry.spawn_point.category.value in _LOOP_CATEGORIES:
                loop_covered += entry.occurrence_count * entry.mean_distance
            trigger_pcs.append(entry.spawn_point.trigger_pc)
        coverage = SpawnCoverage(
            len(table), spawns, covered, loop_covered, tuple(trigger_pcs)
        )
        _COVERAGE_MEMO[key] = coverage
    return coverage


def predict_baseline_cycles(signals, config):
    """Closed-form superscalar cycle estimate."""
    if not signals.length:
        return 0.0
    stall = signals.total_mispredicts * config.mispredict_penalty
    retire_floor = signals.length / config.width
    serialization = signals.fetch_groups + stall
    return config.frontend_latency + max(
        signals.critical_path, serialization, retire_floor
    )


def ratio_features(signals, coverage, config):
    """The eleven :data:`RATIO_FEATURES` values for one (trace, policy).

    Every feature is bounded (coverages and shares are fractions,
    extensive quantities are clamped), so a weight fit on the catalog
    cannot be dragged off the map by one outsized trace.
    """
    n = max(1, signals.length)
    stall = signals.total_mispredicts * config.mispredict_penalty
    serialization = signals.fetch_groups + stall
    baseline = predict_baseline_cycles(signals, config)
    covered_fraction = min(1.0, coverage.covered / n)
    loop_fraction = min(1.0, coverage.loop_covered / n)
    stall_share = stall / max(1, serialization)
    spawn_density = min(0.5, coverage.spawns / n)
    hidden = sum(
        signals.mispredicts_by_pc.get(pc, 0) for pc in coverage.trigger_pcs
    )
    region_size = coverage.covered / coverage.spawns if coverage.spawns else 0.0
    size_fraction = min(1.0, region_size / _SIZE_SATURATION)
    return (
        covered_fraction,
        loop_fraction,
        max(0.0, covered_fraction - loop_fraction),
        stall_share,
        covered_fraction * stall_share,
        spawn_density,
        min(1.0, hidden / max(1, signals.total_mispredicts)),
        (signals.mem_dep_count / n) * spawn_density * 10.0,
        min(1.5, signals.critical_path / baseline) if baseline else 0.0,
        size_fraction,
        loop_fraction * size_fraction,
    )


def predict_cycle_ratio(signals, coverage, config, spec):
    """Predicted ``polyflow_cycles / baseline_cycles`` for one policy."""
    weights = RATIO_WEIGHTS.get(spec, RATIO_WEIGHTS["*"])
    features = ratio_features(signals, coverage, config)
    ratio = weights[-1] + sum(w * f for w, f in zip(weights, features))
    low, high = RATIO_CLAMP
    return min(high, max(low, ratio))


class Estimate:
    """One analytic prediction: speedup (%) with a confidence band."""

    __slots__ = (
        "name",
        "spec",
        "predicted_speedup",
        "band",
        "baseline_cycles",
        "polyflow_cycles",
    )

    def __init__(self, name, spec, predicted_speedup, band, baseline_cycles, polyflow_cycles):
        self.name = name
        self.spec = spec
        self.predicted_speedup = predicted_speedup
        self.band = band
        self.baseline_cycles = baseline_cycles
        self.polyflow_cycles = polyflow_cycles

    def error_against(self, exact_speedup):
        """Observed absolute error versus an exact speedup (%)."""
        return abs(self.predicted_speedup - exact_speedup)

    def __repr__(self):
        return "Estimate({!r}, {!r}, {:+.1f}% +/- {:.1f})".format(
            self.name, self.spec, self.predicted_speedup, self.band
        )


def confidence_band(predicted_speedup):
    """The +/- band (speedup points) attached to one prediction."""
    return BAND_ABS + BAND_REL * abs(predicted_speedup)


def estimate_speedup(name, spec, scale=1.0, config=None, profile_distance=None):
    """Predict the speedup (%) of ``spec`` over the superscalar
    baseline for one workload, without simulating either.

    Uses only cached pipeline artifacts: the shared analyses (trace,
    decoded arrays, spawn profile) of ``prepare_workload``.  Returns an
    :class:`Estimate`.
    """
    from repro.polyflow import PAPER_CONFIG
    from repro.spawn import canonical_spec
    from repro.workloads import prepare_workload

    if config is None:
        config = PAPER_CONFIG
    if profile_distance is None:
        profile_distance = config.max_spawn_distance
    spec = canonical_spec(spec)
    analyses = prepare_workload(name, scale).analyses
    signals = trace_signals(analyses, config)
    coverage = spawn_coverage(analyses, spec, profile_distance)
    baseline = predict_baseline_cycles(signals, config)
    ratio = predict_cycle_ratio(signals, coverage, config, spec)
    predicted = (1.0 / ratio - 1.0) * 100.0
    return Estimate(
        name, spec, predicted, confidence_band(predicted), baseline, ratio * baseline
    )


def estimate_row(name, specs, scale=1.0, config=None, profile_distance=None):
    """Predictions for every spec of one scenario: ``{spec: Estimate}``."""
    return {
        spec: estimate_speedup(name, spec, scale, config, profile_distance)
        for spec in specs
    }


def mean_absolute_error(pairs):
    """Mean |predicted - exact| over ``(predicted, exact)`` pairs."""
    pairs = list(pairs)
    if not pairs:
        return 0.0
    return sum(abs(predicted - exact) for predicted, exact in pairs) / len(pairs)


def clear_memos():
    """Drop the signal/coverage memos (mainly for tests)."""
    _SIGNALS_MEMO.clear()
    _COVERAGE_MEMO.clear()


# -- trace-length estimation (scheduler cost model) ---------------------------

#: Per-term instruction weights of the synthesized catalog's closed-form
#: length model, fit by weighted relative least squares (rows weighted
#: 1/length, so short scenarios count as much as long ones) against the
#: exact committed-trace lengths of the full catalog at scale 1.0; mean
#: relative error ~20%, which is well inside what the chunk scheduler's
#: balance needs (see estimated_trace_length).
_LENGTH_WEIGHTS = {
    "base": 1.6,
    "inner": 2.79,
    "inner_hammock": 9.86,
    "call": 19.75,
    "dispatch": 13.26,
    "loop": 3.31,
}

#: Expected iterations of a non-innermost loop level (the generator
#: draws uniformly from {2, 3}).
_EXPECTED_OUTER = 2.5


def estimated_trace_length(name, scale=1.0):
    """Closed-form committed-trace-length estimate, or None.

    Only synthesized catalog scenarios have a structural closed form
    (the dial space fixes loop trip counts, hammock density, call
    fan-out, and dispatch shape); other names return None and callers
    fall back to preparing the workload.  The estimate feeds the grid
    scheduler's cost model on cold caches, where balance — not
    exactness — is what matters.
    """
    from repro.workloads.builder import check_scale, scaled
    from repro.workloads.synth import is_catalog_name, scenario_dials

    if not is_catalog_name(name):
        return None
    dials = scenario_dials(name)
    check_scale(scale)
    depth = dials.loop_depth
    inner_iterations = scaled(dials.inner_iteration_base, scale, minimum=2)
    if depth == 0:
        innermost_trips = 1.0
        level0_trips = 1.0
        loop_trips = 0.0
    else:
        outer_product = _EXPECTED_OUTER ** (depth - 1)
        innermost_trips = outer_product * inner_iterations
        level0_trips = _EXPECTED_OUTER if depth > 1 else float(inner_iterations)
        # Total loop iterations across all nest levels (header+latch
        # overhead is paid per iteration of every level).
        loop_trips = 0.0
        trips = 1.0
        for level in range(depth):
            trips *= inner_iterations if level == depth - 1 else _EXPECTED_OUTER
            loop_trips += trips
    weights = _LENGTH_WEIGHTS
    procedures = dials.procedures
    # Each top-level call site executes once per level-0 iteration; leaf
    # procedures are called from their parent, so every procedure's body
    # runs level0_trips times.
    call_bodies = level0_trips * procedures
    # The dispatch loop iterates 2*ways times per level-0 iteration.
    dispatch_iterations = level0_trips * 2 * dials.dispatch_ways
    estimate = (
        weights["base"]
        + weights["inner"] * innermost_trips
        + weights["inner_hammock"] * innermost_trips * dials.hammocks
        + weights["call"] * call_bodies
        + weights["dispatch"] * dispatch_iterations
        + weights["loop"] * loop_trips
    )
    return max(1, int(estimate))
