"""Control dependence (Ferrante, Ottenstein and Warren).

A node X is control dependent on a branch node A when one successor of A
always leads to X while another may reach the exit without passing
through X.  Following FOW, for each CFG edge A -> B where B does not
postdominate A, every node on the postdominator-tree path from B up to
(but excluding) ipdom(A) is control dependent on A.
"""

from repro.analysis.dominance import compute_postdominator_tree


class ControlDependenceGraph:
    """Control dependences of one CFG.

    Attributes:
        cfg: The underlying CFG.
        postdominator_tree: The postdominator tree used to build this CDG.
    """

    def __init__(self, cfg, postdominator_tree, dependences):
        self.cfg = cfg
        self.postdominator_tree = postdominator_tree
        self._dependences = dependences
        self._dependents = {}
        for node, controllers in dependences.items():
            for controller in controllers:
                self._dependents.setdefault(controller, set()).add(node)

    def controllers_of(self, node):
        """Branch nodes that ``node`` is control dependent on."""
        return frozenset(self._dependences.get(node, ()))

    def dependents_of(self, branch_node):
        """Nodes control dependent on ``branch_node`` (its CD region)."""
        return frozenset(self._dependents.get(branch_node, ()))

    def is_control_dependent(self, node, branch_node):
        """Whether ``node`` is control dependent on ``branch_node``."""
        return branch_node in self._dependences.get(node, ())

    def edges(self):
        """Yield (branch_node, dependent_node) pairs."""
        for branch_node, dependents in self._dependents.items():
            for dependent in sorted(dependents):
                yield branch_node, dependent


def compute_control_dependence(cfg, postdominator_tree=None):
    """Compute the :class:`ControlDependenceGraph` of ``cfg``."""
    if postdominator_tree is None:
        postdominator_tree = compute_postdominator_tree(cfg)
    dependences = {}
    for node in range(len(cfg.blocks)):
        successors = cfg.successors(node)
        if len(successors) < 2:
            continue
        if node not in postdominator_tree:
            continue
        stop = postdominator_tree.parent_or_none(node)
        for successor in successors:
            runner = successor
            while runner != stop and runner is not None:
                dependences.setdefault(runner, set()).add(node)
                if runner not in postdominator_tree:
                    break
                runner = postdominator_tree.parent_or_none(runner)
    return ControlDependenceGraph(cfg, postdominator_tree, dependences)
