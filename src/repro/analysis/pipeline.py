"""Memoized per-program analysis pipeline.

Every timing simulation of a workload needs the same expensive static
and dynamic analyses first: assemble the source, execute it
architecturally, profile indirect jumps, build the CFGs, compute
dominance/postdominance and loops, and classify spawn points.  The
experiment grid runs each workload under ~15 policy specs and several
machine configurations, so recomputing that pipeline per job dominated
setup time.

:class:`AnalysisCache` computes the pipeline exactly once per *program
text*: entries are keyed by the SHA-256 of the assembly source, so two
call sites that build the same program (e.g. the same workload at the
same scale, or two scales that happen to emit identical source) share
one :class:`ProgramAnalyses`.  The cache is process-local; an optional
on-disk layer (enabled by the parallel runner under its existing cache
directory) lets freshly started worker processes skip the pipeline for
programs any earlier run already analysed.

The pipeline's repro-internal imports are deferred into the compute
path: :mod:`repro.spawn` and :mod:`repro.cfg` themselves import
:mod:`repro.analysis`, and this module is re-exported from the package
``__init__``.
"""

import functools
import hashlib
import os
import pickle
import tempfile

#: Bump to invalidate persisted analysis entries (e.g. when an analysis
#: gains fields or changes meaning in ways the digest cannot see).
#: v2: analyses now carry the trace's compiled block table (see
#: :mod:`repro.sim.blocks`), so warm workers inherit it from disk.
ANALYSIS_FORMAT_VERSION = 2


@functools.lru_cache(maxsize=512)
def source_digest(source):
    """Content key of one program: SHA-256 of its assembly source.

    Memoized: the workload suite and the grid scheduler look the same
    handful of sources up thousands of times per run, and the assembled
    :class:`~repro.isa.program.Program` carries the same digest (see
    :meth:`~repro.isa.program.Program.content_digest`), so each source
    is hashed once per process.
    """
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ProgramAnalyses:
    """Everything derived from one program's source, computed once.

    Carries the assembled program, its committed-path trace, the
    trace-derived jump profile, the profile-driven CFGs (with dominator
    and postdominator trees and loop forests computed inside), and the
    :class:`~repro.spawn.policies.SpawnAnalysis` holding the classified
    spawn points.  Spawn profiles are memoized per profiling distance.

    The large members (``program``, ``trace``, ``cfgs``,
    ``spawn_analysis``) are shared, not copied — callers must treat
    them as immutable.  The point accessors return fresh lists, so
    mutating *those* cannot poison the cache.
    """

    __slots__ = (
        "digest",
        "program",
        "trace",
        "jump_profile",
        "cfgs",
        "spawn_analysis",
        "_profiles",
    )

    def __init__(self, digest, program, trace, jump_profile, cfgs, spawn_analysis):
        self.digest = digest
        self.program = program
        self.trace = trace
        self.jump_profile = jump_profile
        self.cfgs = cfgs
        self.spawn_analysis = spawn_analysis
        self._profiles = {}

    def postdominator_points(self):
        """Fresh list of the control-equivalent (ipdom) spawn points."""
        return list(self.spawn_analysis.postdominator_points)

    def loop_points(self):
        """Fresh list of the heuristic loop-iteration spawn points."""
        return list(self.spawn_analysis.loop_points)

    def spawn_profile(self, max_spawn_distance):
        """The spawn profile at one profiling distance (memoized).

        Profiles the union of postdominator and loop spawn points, so
        every policy's hint table can be derived from the result.
        """
        profile = self._profiles.get(max_spawn_distance)
        if profile is None:
            from repro.spawn import profile_spawn_points

            points = self.postdominator_points() + self.loop_points()
            profile = profile_spawn_points(self.trace, points, max_spawn_distance)
            self._profiles[max_spawn_distance] = profile
        return profile

    def __repr__(self):
        return "ProgramAnalyses(digest={}, dynamic={}, procedures={})".format(
            self.digest[:12], len(self.trace), len(self.cfgs)
        )


def compute_analyses(source, digest=None):
    """Run the full analysis pipeline on ``source``, bypassing caches.

    The imports live here (not at module scope) because the pipeline's
    inputs — :mod:`repro.cfg`, :mod:`repro.spawn` — themselves import
    :mod:`repro.analysis`.
    """
    from repro.cfg import JumpProfile, build_program_cfgs
    from repro.isa import assemble
    from repro.sim import run_program
    from repro.spawn import SpawnAnalysis

    if digest is None:
        digest = source_digest(source)
    program = assemble(source)
    trace = run_program(program)
    jump_profile = JumpProfile.from_trace(trace)
    cfgs = build_program_cfgs(program, jump_profile=jump_profile)
    spawn_analysis = SpawnAnalysis(cfgs)
    return ProgramAnalyses(digest, program, trace, jump_profile, cfgs, spawn_analysis)


class AnalysisCache:
    """Content-keyed store of :class:`ProgramAnalyses`.

    Two layers: a process-local dict (hit returns the *same* object, so
    trace predecode and spawn-profile memos are shared by every
    simulation of the program), and an optional pickle directory
    shared between processes.  Disk entries are written atomically
    (temp file + :func:`os.replace`) and any unreadable or
    version-mismatched entry is treated as a miss and overwritten.
    """

    def __init__(self, disk_root=None):
        self.disk_root = disk_root
        self._memory = {}
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0

    def analyses_for(self, source):
        """The :class:`ProgramAnalyses` of ``source`` (computing at most
        once per process, and at most once per disk root)."""
        digest = source_digest(source)
        analyses = self._memory.get(digest)
        if analyses is not None:
            self.hits += 1
            return analyses
        analyses = self._disk_load(digest)
        if analyses is None:
            self.misses += 1
            analyses = compute_analyses(source, digest)
            # Compile the block tables before persisting: they memoize
            # themselves onto the trace/program, so the pickle carries
            # them and warm workers load pre-compiled blocks instead of
            # re-segmenting.
            from repro.sim.blocks import block_table_for, program_blocks_for

            block_table_for(analyses.trace)
            program_blocks_for(analyses.program)
            self._disk_store(digest, analyses)
        else:
            self.disk_hits += 1
        self._memory[digest] = analyses
        return analyses

    def trace_length_for(self, source):
        """Committed-trace length of ``source``.

        The grid scheduler's cost unit: simulation time is linear in
        committed instructions, and the trace is already materialized
        by the pipeline, so the estimate is exact and free for any
        program this cache (memory or disk layer) has seen.
        """
        return len(self.analyses_for(source).trace)

    def peek_trace_length(self, source):
        """Committed-trace length if already cached, else None.

        Consults the memory and disk layers only — a miss returns None
        instead of running the pipeline.  The grid scheduler's cost
        model peeks first and falls back to the closed-form estimator
        (:func:`repro.analysis.estimate.estimated_trace_length`) on a
        miss, so costing a cold synthesized grid no longer prepares
        every cell in the parent.
        """
        digest = source_digest(source)
        analyses = self._memory.get(digest)
        if analyses is not None:
            self.hits += 1
            return len(analyses.trace)
        analyses = self._disk_load(digest)
        if analyses is None:
            return None
        self.disk_hits += 1
        self._memory[digest] = analyses
        return len(analyses.trace)

    def clear(self):
        """Drop the in-memory layer (disk entries are left in place)."""
        self._memory.clear()

    def __len__(self):
        return len(self._memory)

    # -- disk layer ---------------------------------------------------------------

    def _path(self, digest):
        return os.path.join(self.disk_root, digest[:2], digest + ".pkl")

    def _disk_load(self, digest):
        if self.disk_root is None:
            return None
        try:
            with open(self._path(digest), "rb") as handle:
                entry = pickle.load(handle)
            if entry["version"] != ANALYSIS_FORMAT_VERSION:
                return None
            return entry["analyses"]
        except Exception:
            return None

    def _disk_store(self, digest, analyses):
        if self.disk_root is None:
            return
        path = self._path(digest)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            handle, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
        except OSError:
            return
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(
                    {"version": ANALYSIS_FORMAT_VERSION, "analyses": analyses},
                    stream,
                )
            os.replace(temp_path, path)
        except Exception:
            try:
                os.unlink(temp_path)
            except OSError:
                pass


#: The process-wide shared cache every workload preparation goes through.
_SHARED_CACHE = AnalysisCache()


def shared_cache():
    """The process-wide :class:`AnalysisCache`."""
    return _SHARED_CACHE


def peek_trace_length_for_source(source):
    """Shared-cache :meth:`AnalysisCache.peek_trace_length` shorthand."""
    return _SHARED_CACHE.peek_trace_length(source)


def analyses_for_source(source):
    """Analyses of ``source`` via the shared cache."""
    return _SHARED_CACHE.analyses_for(source)


def trace_length_for_source(source):
    """Committed-trace length of ``source`` via the shared cache (the
    grid scheduler's per-program cost estimate)."""
    return _SHARED_CACHE.trace_length_for(source)


def configure_disk_cache(disk_root):
    """Point the shared cache's disk layer at ``disk_root`` (or disable
    it with ``None``).  Used by the parallel runner's worker
    initializer so fresh processes reuse earlier runs' analyses."""
    _SHARED_CACHE.disk_root = disk_root


def clear_shared_cache():
    """Drop the shared cache's in-memory entries (mainly for tests)."""
    _SHARED_CACHE.clear()
