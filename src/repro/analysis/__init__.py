"""Static analyses: dominance, control dependence, loops, dataflow."""

from repro.analysis.control_dependence import (
    ControlDependenceGraph,
    compute_control_dependence,
)
from repro.analysis.dataflow import (
    block_defs,
    block_uses,
    compute_liveness,
    region_defs,
)
from repro.analysis.dominance import (
    DominatorTree,
    compute_dominator_tree,
    compute_immediate_dominators,
    compute_postdominator_tree,
    immediate_postdominator_block,
)
from repro.analysis.loops import Loop, LoopForest, find_natural_loops

__all__ = [
    "DominatorTree",
    "compute_dominator_tree",
    "compute_immediate_dominators",
    "compute_postdominator_tree",
    "immediate_postdominator_block",
    "ControlDependenceGraph",
    "compute_control_dependence",
    "Loop",
    "LoopForest",
    "find_natural_loops",
    "block_defs",
    "block_uses",
    "region_defs",
    "compute_liveness",
]
