"""Static analyses: dominance, control dependence, loops, dataflow.

:mod:`repro.analysis.pipeline` layers a content-keyed cache over the
whole per-program pipeline (assemble, execute, profile jumps, build
CFGs, classify spawn points) so each program is analysed exactly once
per process.
"""

from repro.analysis.control_dependence import (
    ControlDependenceGraph,
    compute_control_dependence,
)
from repro.analysis.dataflow import (
    block_defs,
    block_uses,
    compute_liveness,
    region_defs,
)
from repro.analysis.dominance import (
    DominatorTree,
    compute_dominator_tree,
    compute_immediate_dominators,
    compute_postdominator_tree,
    immediate_postdominator_block,
)
from repro.analysis.loops import Loop, LoopForest, find_natural_loops
from repro.analysis.pipeline import (
    AnalysisCache,
    ProgramAnalyses,
    analyses_for_source,
    clear_shared_cache,
    compute_analyses,
    configure_disk_cache,
    shared_cache,
    source_digest,
)

__all__ = [
    "AnalysisCache",
    "ProgramAnalyses",
    "analyses_for_source",
    "clear_shared_cache",
    "compute_analyses",
    "configure_disk_cache",
    "shared_cache",
    "source_digest",
    "DominatorTree",
    "compute_dominator_tree",
    "compute_immediate_dominators",
    "compute_postdominator_tree",
    "immediate_postdominator_block",
    "ControlDependenceGraph",
    "compute_control_dependence",
    "Loop",
    "LoopForest",
    "find_natural_loops",
    "block_defs",
    "block_uses",
    "region_defs",
    "compute_liveness",
]
