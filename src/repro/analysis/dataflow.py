"""Register def/use summaries and liveness over a CFG.

Used to cross-check the dependence hints the profiler attaches to spawn
points (the contents of the paper's 8-byte hint-cache entry) and by the
tests that validate hint write sets.
"""


def block_defs(block):
    """Registers written by ``block`` (excluding the discarded r0)."""
    defs = set()
    for instruction in block.instructions:
        destination = instruction.destination_register()
        if destination is not None:
            defs.add(destination)
    return frozenset(defs)


def block_uses(block):
    """Registers read by ``block`` before any local redefinition."""
    uses = set()
    defined = set()
    for instruction in block.instructions:
        for source in instruction.source_registers():
            if source != 0 and source not in defined:
                uses.add(source)
        destination = instruction.destination_register()
        if destination is not None:
            defined.add(destination)
    return frozenset(uses)


def region_defs(cfg, block_indices):
    """Union of registers written by a set of blocks."""
    defs = set()
    for index in block_indices:
        defs |= block_defs(cfg.block(index))
    return frozenset(defs)


def compute_liveness(cfg):
    """Backward liveness: ``live_in``/``live_out`` register sets per block.

    Returns:
        Two dicts mapping block index -> frozenset of register indices.
    """
    gen = {block.index: block_uses(block) for block in cfg.blocks}
    kill = {block.index: block_defs(block) for block in cfg.blocks}
    live_in = {block.index: frozenset() for block in cfg.blocks}
    live_out = {block.index: frozenset() for block in cfg.blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            index = block.index
            out_set = set()
            for successor in cfg.successors(index):
                if not cfg.is_exit(successor):
                    out_set |= live_in[successor]
            in_set = gen[index] | (frozenset(out_set) - kill[index])
            if frozenset(out_set) != live_out[index] or frozenset(in_set) != live_in[index]:
                live_out[index] = frozenset(out_set)
                live_in[index] = frozenset(in_set)
                changed = True
    return live_in, live_out
