"""Fetch-timeline tracing: the paper's Figure 4, reconstructed.

Figure 4 shows "a possible dynamic fetch ordering" — which blocks each
task fetches over time, with the degree of speculation growing down the
page.  :class:`TimelineTracer` wraps a :class:`PolyFlowCore`, records
one event per fetched instruction, and renders an ASCII timeline with
one row per task and one column per time bucket.
"""

from repro.obs.events import InstructionFetched
from repro.polyflow.core import PolyFlowCore

#: Backwards-compatible alias: the tracer now consumes the simulation
#: event bus, so its events ARE the core's typed fetch events.
FetchEvent = InstructionFetched


class _FetchCollector:
    """A verbose bus sink keeping only the ``fetch`` events."""

    __slots__ = ("events",)

    def __init__(self, events):
        self.events = events

    def on_event(self, event):
        if event.kind == "fetch":
            self.events.append(event)


class TimelineTracer(PolyFlowCore):
    """A PolyFlow core whose bus records every fetch as a :class:`FetchEvent`."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fetch_events = []
        self.bus.attach(_FetchCollector(self.fetch_events))

    def render_timeline(
        self, start_cycle=0, end_cycle=None, bucket=4, max_tasks=12, labeler=None
    ):
        """Render the recorded fetch stream as an ASCII timeline.

        Args:
            start_cycle, end_cycle: Window of cycles to show.
            bucket: Cycles per column.
            max_tasks: Show at most this many task rows.
            labeler: Optional callable mapping a PC to a single display
                character (defaults to a letter per static block-ish PC).

        One row per task (older tasks on top, matching Figure 4's
        "degree of speculation runs from top to bottom"); each column
        shows the label of the last instruction the task fetched in that
        bucket, or '.' when the task did not fetch.
        """
        events = [
            event
            for event in self.fetch_events
            if event.cycle >= start_cycle
            and (end_cycle is None or event.cycle < end_cycle)
        ]
        if not events:
            return "(no fetch events in window)"
        if labeler is None:
            pcs = sorted({event.pc for event in events})
            alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
            label_of = {
                pc: alphabet[index % len(alphabet)] for index, pc in enumerate(pcs)
            }
            labeler = label_of.__getitem__
        last_cycle = max(event.cycle for event in events)
        first_cycle = min(event.cycle for event in events)
        columns = (last_cycle - first_cycle) // bucket + 1
        task_ids = []
        for event in events:
            if event.task_id not in task_ids:
                task_ids.append(event.task_id)
        task_ids = task_ids[:max_tasks]
        grid = {task_id: ["."] * columns for task_id in task_ids}
        for event in events:
            if event.task_id not in grid:
                continue
            column = (event.cycle - first_cycle) // bucket
            grid[event.task_id][column] = labeler(event.pc)
        lines = [
            "cycles {}..{} ({} cycles/column); rows are tasks, oldest first".format(
                first_cycle, last_cycle, bucket
            )
        ]
        for task_id in task_ids:
            lines.append("task {:>3d} |{}".format(task_id, "".join(grid[task_id])))
        return "\n".join(lines)


def trace_fetch_timeline(trace, config, hint_table=None, **render_kwargs):
    """Run a traced simulation and return (stats, rendered timeline)."""
    tracer = TimelineTracer(trace, config, hint_table)
    stats = tracer.run()
    return stats, tracer.render_timeline(**render_kwargs)
