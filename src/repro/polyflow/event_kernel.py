"""The event-calendar timing kernel: PolyFlow without the cycle grind.

:meth:`~repro.polyflow.core.PolyFlowCore._run_fast` still visits every
cycle, even when all in-flight tasks are stalled on cache fills or fetch
bubbles and the cycle is a provable no-op.  This module is the
next-event rewrite of that loop: the machine's future is kept in two
calendars — one for functional-unit/cache-fill completions, one for
scheduler wake-ups — and, together with the per-task fetch-stall timers,
their minimum bounds the next cycle in which anything can change.  When
a cycle ends provably frozen the clock jumps straight to that bound,
burning down multi-cycle stalls (cache misses, mispredict penalties,
divert-queue freezes) in one step.  The per-cycle occupancy statistic is
the only thing that accrues across a jump, and it is added in closed
form, so statistics and event streams are *exact* — the differential and
golden-trace suites compare this kernel against the cycle-exact engines
byte for byte.

What makes the calendar leaner than the fused loop's event dict:

* **No generation counters.**  The reference engines tag every queue
  entry with a per-index generation and lazily skip stale entries after
  a squash.  Squashes always remove a *suffix* of the task list, and
  task segments partition the trace in order, so every squashed trace
  index is ``>= cutoff`` (the first squashed task's start).  The kernel
  therefore scrubs its calendars, ready heap and waiter maps eagerly at
  squash time with one range predicate, and every surviving entry is
  known live — no per-event generation checks on the hot path.  (The
  divert FIFO keeps the reference engine's *lazy* deletion, tagged with
  a small per-index epoch, because its bounded scan counts lazily
  deleted entries against the scan budget; scrubbing it would let the
  scan reach deeper than the cycle-exact engines in the cycle after a
  squash.)
* **Typed calendars.**  Completion buckets are plain trace-index lists
  and wake-up buckets hold indices or ``(start, end)`` fetch runs, so
  processing a bucket does no kind dispatch or tuple unpacking.
* **Plain-run issue.**  When a fired wake-up run is the only ready work
  and contains no loads, stores or multiplies (``plain_end`` from the
  :class:`~repro.sim.blocks.BlockTable`), the whole run issues as one
  batch with a single range completion on the calendar — no per-index
  heap traffic.  Runs with memory operations take the reference path so
  the cache-access order (and therefore LRU state and hit counters)
  stays identical.

The kernel is auto-selected by :meth:`PolyFlowCore.run` only when it is
observably equivalent to the cycle-exact engines: the block engine must
be on, ``nested_spawns`` off, no stage-hook or spawn-target override,
and no verbose sink attached (verbose runs emit per-instruction events
*during* skipped-over cycles, so they keep the cycle-exact fast engine —
the same auto-fallback contract as the staged/fast split).  Set
``REPRO_EVENT_KERNEL=0`` (or pass ``event_kernel=False``) to opt out
process-wide; the equivalence suites prove stats and event streams are
identical either way.
"""

import heapq
import os

from repro.errors import SimulationError
from repro.frontend.icount import select_fetch_tasks
from repro.obs.events import DependenceViolation, TaskSquashed
from repro.sim.predecode import (
    KIND_CALL_DIRECT,
    KIND_CALL_INDIRECT,
    KIND_COND_BRANCH,
    KIND_RETURN,
    KIND_SWITCH,
    LAT_LOAD,
    LAT_MUL,
    LAT_STORE,
)

#: Environment toggle: set to ``"0"`` to disable the event kernel.
EVENT_KERNEL_ENV = "REPRO_EVENT_KERNEL"


def kernel_enabled_default():
    """Whether cores default to the event kernel (see EVENT_KERNEL_ENV)."""
    return os.environ.get(EVENT_KERNEL_ENV, "1") != "0"


def run_event_kernel(core):
    """Drive ``core`` to completion on the event-calendar kernel.

    ``core`` is a :class:`~repro.polyflow.core.PolyFlowCore` whose block
    tables are compiled and whose bus carries no verbose sink; observable
    behaviour (statistics, lifecycle event stream, cache state) is
    identical to :meth:`~repro.polyflow.core.PolyFlowCore._run_fast`.
    """
    for _ in event_kernel_steps(core, 0):
        pass  # pragma: no cover - stride 0 never yields


def event_kernel_steps(core, stride):
    """Generator driving ``core`` on the event-calendar kernel, yielding
    the retire pointer every ``stride`` calendar steps.

    This is the kernel itself — :func:`run_event_kernel` drains it with
    a stride of 0 (never yield).  A positive stride hands control back
    to the caller between slices with the kernel's locals frozen in the
    generator frame, which is what lets the grid-batch runner advance
    many independent cells in lockstep.  The yield is outside every
    stage, at the top of the cycle loop, so slicing cannot reorder any
    observable action; statistics and event streams are byte-identical
    for every stride.  Closing the generator early runs the ``finally``
    sync, leaving the core's counters coherent mid-run.
    """
    # Imported here: core imports this module lazily, so a top-level
    # import back into core would execute during core's own import.
    from repro.polyflow.core import (
        _DIVERT,
        _DONE,
        _EXEC,
        _FREE,
        _HEAD_ROB_RESERVE,
        _HEAD_SCHED_RESERVE,
        _READY,
        _RETIRED,
        _WAIT,
    )

    config = core.config
    bus = core.bus
    stats = core.stats
    state = core._state
    wait_count = core._wait_count
    earliest = core._earliest
    fetch_cycle = core._fetch_cycle
    owner = core._owner
    sched_used = core._sched_used
    dependents = core._dependents
    divert_producer_map = core._divert_producers
    unsafe_mem = core._unsafe_mem
    tasks = core._tasks
    heap = core._ready_heap
    fifo = core._divert_fifo
    pcs = core._pcs
    kinds = core._kinds
    lats = core._lats
    takens = core._takens
    next_pcs = core._next_pcs
    fall_throughs = core._fall_throughs
    lines = core._lines
    mem_addrs = core._mem_addrs
    mem_deps = core._mem_deps
    dep0 = core._dep0
    dep1 = core._dep1
    heappush = heapq.heappush
    heappop = heapq.heappop
    fetch_latency = core.hierarchy.fetch_latency
    data_latency = core.hierarchy.data_latency
    gshare_update = core.gshare.predict_and_update
    indirect_update = core.indirect_predictor.predict_and_update
    predicts_dependence = core.store_sets.predicts_dependence
    train_violation = core.store_sets.train_violation
    spawn_unit = core.spawn_unit
    record_task_instructions = spawn_unit.record_task_instructions
    spawn_targets = spawn_unit.resolved_targets()
    suppressed = spawn_unit.suppressed_triggers_live()

    width = config.width
    units = config.functional_units
    mul_latency = config.mul_latency
    mispredict_penalty = config.mispredict_penalty
    frontend_latency = config.frontend_latency
    quota = config.scheduler_per_task_quota
    max_tasks = config.max_tasks
    fetch_ports = config.fetch_tasks_per_cycle
    rob_entries = config.rob_entries
    sched_entries = config.scheduler_entries
    divert_entries = config.divert_queue_entries
    restart_penalty = config.squash_restart_penalty
    shared_rob_cap = rob_entries - _HEAD_ROB_RESERVE
    shared_sched_cap = sched_entries - _HEAD_SCHED_RESERVE
    release_state = _WAIT if config.divert_release == "dispatch" else _DONE

    count = len(pcs)

    run_end = core._run_end
    reg_consumers = core._reg_consumers
    batch_deps = core._batch_deps
    plain_end = core._plain_end

    # The two calendars (cycle -> bucket).  Completion buckets hold
    # trace indices; wake-up buckets hold indices or (start, end) runs.
    complete_events = {}
    ready_events = {}
    # Divert-FIFO epochs: bumped only when a *diverted* index is
    # squashed, so a stale FIFO entry reads as a mismatch exactly where
    # the reference engines see a generation mismatch (see module doc).
    divert_epoch = [0] * count
    # Tasks stalled on an unresolved transfer, keyed by the trace index
    # they wait on (scrubbed at squash; at most one live waiter each).
    waiting_branches = {}

    fetch_wake = 0
    fifo_dirty = True
    # Conservative until the first full scan proves otherwise: issuing
    # re-dirties the queue only while a scan has turned an entry away
    # on scheduler capacity or per-task quota.
    fifo_capacity_blocked = True
    completions_dirty = release_state == _DONE

    run_cap = width if width > units else units
    done_runs = [bytes([_DONE]) * size for size in range(run_cap + 1)]
    retired_runs = [bytes([_RETIRED]) * size for size in range(width + 1)]
    exec_runs = [bytes([_EXEC]) * size for size in range(units + 1)]
    ready_runs = [bytes([_READY]) * size for size in range(units + 1)]
    max_cycles = core.max_cycles
    cycle = core._cycle
    retire_ptr = core._retire_ptr
    rob_occupancy = core._rob_occupancy
    sched_occupancy = core._sched_occupancy
    divert_occupancy = core._divert_occupancy

    retired_total = 0
    fetched_total = 0
    diverted_total = 0
    occupancy_sum = 0
    icache_stalls = 0
    cond_branches = 0
    branch_misses = 0
    indirect_misses = 0
    return_misses = 0

    def origin_of(task):
        point = task.spawn_point
        return point.trigger_pc if point is not None else None

    def enter_scheduler(index):
        # Transcription of core._enter_scheduler: rs-then-rt producer
        # registration, register wake-ups through the static
        # reg_consumers adjacency (the dependents dict keeps memory
        # dependences only), live entries need no generation tag.
        nonlocal sched_occupancy
        pending = 0
        producer = dep0[index]
        if producer >= 0 and state[producer] < _DONE:
            pending += 1
        producer = dep1[index]
        if producer >= 0 and state[producer] < _DONE:
            pending += 1
        if lats[index] == LAT_LOAD:
            producer = mem_deps[index]
            if producer >= 0 and index not in unsafe_mem and state[producer] < _DONE:
                bucket = dependents.get(producer)
                if bucket is None:
                    dependents[producer] = [index]
                else:
                    bucket.append(index)
                pending += 1
        sched_occupancy += 1
        task_owner = owner[index]
        sched_used[task_owner] = sched_used.get(task_owner, 0) + 1
        wait_count[index] = pending
        if pending:
            state[index] = _WAIT
        else:
            state[index] = _READY
            ready_at = earliest[index]
            if ready_at <= cycle:
                ready_at = cycle + 1
            bucket = ready_events.get(ready_at)
            if bucket is None:
                ready_events[ready_at] = [index]
            else:
                bucket.append(index)

    def squash_tasks(position, cause):
        # Transcription of core._squash_from, plus the eager scrub that
        # replaces generation counters: tasks own contiguous,
        # trace-ordered segments, so everything belonging to the
        # squashed suffix sits at or past the first squashed task's
        # start index, and one range predicate cleans every structure.
        nonlocal rob_occupancy, sched_occupancy, divert_occupancy
        chain = list(tasks)[position:]
        chain_depth = len(chain)
        cutoff = chain[0].start_index
        for task in chain:
            squashed = 0
            for index in range(task.start_index, task.fetch_index):
                current = state[index]
                if current == _FREE:
                    continue
                if current == _DIVERT:
                    divert_occupancy -= 1
                    divert_epoch[index] += 1
                    divert_producer_map.pop(index, None)
                elif current == _WAIT or current == _READY:
                    sched_occupancy -= 1
                    sched_used[owner[index]] -= 1
                state[index] = _FREE
                rob_occupancy -= 1
                dependents.pop(index, None)
                unsafe_mem.pop(index, None)
                squashed += 1
            task.reset_for_squash(cycle, restart_penalty)
            bus.emit(
                TaskSquashed(
                    cycle,
                    task.task_id,
                    task.start_index,
                    pcs[task.start_index],
                    origin_of(task),
                    cause,
                    chain_depth,
                    squashed,
                )
            )
        for calendar in (complete_events, ready_events):
            for at in list(calendar):
                bucket = calendar[at]
                kept = [
                    entry
                    for entry in bucket
                    if (entry if entry.__class__ is int else entry[0]) < cutoff
                ]
                if len(kept) != len(bucket):
                    if kept:
                        calendar[at] = kept
                    else:
                        del calendar[at]
        if heap:
            kept = [index for index in heap if index < cutoff]
            if len(kept) != len(heap):
                heap[:] = kept
                heapq.heapify(heap)
        # The divert FIFO is scrubbed lazily via divert_epoch (above).
        for producer in list(dependents):
            bucket = dependents[producer]
            kept = [consumer for consumer in bucket if consumer < cutoff]
            if len(kept) != len(bucket):
                if kept:
                    dependents[producer] = kept
                else:
                    del dependents[producer]
        for index in list(waiting_branches):
            if index >= cutoff:
                del waiting_branches[index]

    def handle_violation(load_index, store_index):
        store_pc = pcs[store_index]
        load_pc = pcs[load_index]
        train_violation(store_pc, load_pc)
        position = core._task_position_of_index(load_index)
        violator = tasks[position]
        if violator.spawn_point is not None:
            spawn_unit.record_squash(violator.spawn_point.trigger_pc)
        bus.emit(
            DependenceViolation(
                cycle,
                violator.task_id,
                load_index,
                load_pc,
                origin_of(violator),
                store_index,
                store_pc,
            )
        )
        squash_tasks(position, "memory-dependence")

    def wake_consumer(consumer):
        # One producer of a _WAIT consumer completed; schedule the
        # wake-up when the count drains.  Callers pre-check the state.
        pending = wait_count[consumer] - 1
        wait_count[consumer] = pending
        if pending == 0:
            state[consumer] = _READY
            ready_at = earliest[consumer]
            if ready_at <= cycle:
                ready_at = cycle + 1
            bucket = ready_events.get(ready_at)
            if bucket is None:
                ready_events[ready_at] = [consumer]
            else:
                bucket.append(consumer)

    countdown = stride if stride and stride > 0 else None

    try:
        while retire_ptr < count:
            if countdown is not None:
                countdown -= 1
                if countdown < 0:
                    yield retire_ptr
                    countdown = stride - 1
            cycle += 1
            core._cycle = cycle
            if cycle > max_cycles:
                raise SimulationError(
                    "no forward progress after {} cycles (retired {}/{})".format(
                        max_cycles, retire_ptr, count
                    )
                )
            # Divert/issue/violation activity this cycle; consulted
            # (with the fetch watermark) by the time skip.
            active = False
            fetch_mark = fetched_total
            # A plain wake-up run eligible for batch issue this cycle
            # (detected while processing the wake-up calendar, issued
            # in the issue stage so the drain sees the same scheduler
            # occupancy as the cycle-exact engines).
            pending_batch = None

            # ---- process completions -------------------------------
            bucket = complete_events.pop(cycle, None)
            if bucket is not None:
                if completions_dirty:
                    fifo_dirty = True
                for index in bucket:
                    if index.__class__ is not int:
                        # (start, end) completion of a plain-run batch.
                        run_start, run_limit = index
                        state[run_start:run_limit] = done_runs[
                            run_limit - run_start
                        ]
                        for position in range(run_start, run_limit):
                            for consumer in reg_consumers[position]:
                                # wake_consumer, inlined (hot path).
                                if state[consumer] == _WAIT:
                                    pending = wait_count[consumer] - 1
                                    wait_count[consumer] = pending
                                    if pending == 0:
                                        state[consumer] = _READY
                                        ready_at = earliest[consumer]
                                        if ready_at <= cycle:
                                            ready_at = cycle + 1
                                        waking = ready_events.get(ready_at)
                                        if waking is None:
                                            ready_events[ready_at] = [consumer]
                                        else:
                                            waking.append(consumer)
                        continue
                    if state[index] != _EXEC:
                        continue
                    state[index] = _DONE
                    if waiting_branches:
                        waiter = waiting_branches.pop(index, None)
                        if (
                            waiter is not None
                            and waiter.waiting_branch_index == index
                        ):
                            resume = fetch_cycle[index] + mispredict_penalty
                            if resume < cycle + 1:
                                resume = cycle + 1
                            waiter.waiting_branch_index = None
                            waiter.fetch_stall_until = resume
                            fetch_wake = 0
                    for consumer in reg_consumers[index]:
                        # wake_consumer, inlined (hot path).
                        if state[consumer] == _WAIT:
                            pending = wait_count[consumer] - 1
                            wait_count[consumer] = pending
                            if pending == 0:
                                state[consumer] = _READY
                                ready_at = earliest[consumer]
                                if ready_at <= cycle:
                                    ready_at = cycle + 1
                                waking = ready_events.get(ready_at)
                                if waking is None:
                                    ready_events[ready_at] = [consumer]
                                else:
                                    waking.append(consumer)
                    # Only memory dependences live in the dict, and
                    # their producers are stores.
                    if lats[index] != LAT_STORE:
                        continue
                    consumers = dependents.pop(index, None)
                    if not consumers:
                        continue
                    for consumer in consumers:
                        if state[consumer] == _WAIT:
                            wake_consumer(consumer)

            # ---- process wake-ups ----------------------------------
            bucket = ready_events.pop(cycle, None)
            if bucket is not None:
                for entry in bucket:
                    if entry.__class__ is int:
                        if state[entry] == _READY:
                            heappush(heap, entry)
                        continue
                    run_start, run_limit = entry
                    # Plain-run batch candidate: the run is the *only*
                    # work that can become ready this cycle (sole
                    # bucket entry, empty heap), it fits the issue
                    # width, every position is still _READY, and it
                    # contains no load, store or multiply — so the
                    # per-index min-first issue order is unobservable
                    # (no cache access, uniform 1-cycle latency) and
                    # the whole run can issue as one batch with a
                    # single range completion next cycle.  The issue
                    # itself is deferred to the issue stage so retire
                    # and the divert drain observe the same scheduler
                    # occupancy as the cycle-exact engines.  Anything
                    # else falls back to per-index heap scheduling.
                    span = run_limit - run_start
                    if (
                        not heap
                        and len(bucket) == 1
                        and span <= units
                        and plain_end[run_start] >= run_limit
                        and state[run_start:run_limit] == ready_runs[span]
                    ):
                        pending_batch = entry
                        continue
                    for position in range(run_start, run_limit):
                        if state[position] == _READY:
                            heappush(heap, position)

            # ---- retire --------------------------------------------
            if state[retire_ptr] == _DONE:
                retired = 0
                head_popped = False
                while retired < width and retire_ptr < count:
                    head = tasks[0]
                    head_end = head.end_index
                    limit = retire_ptr + width - retired
                    if limit > count:
                        limit = count
                    if head_end is not None and head_end < limit:
                        limit = head_end
                    span = limit - retire_ptr
                    probe = state[retire_ptr:limit]
                    if probe == done_runs[span]:
                        committed = span
                    else:
                        committed = 0
                        for value in probe:
                            if value != _DONE:
                                break
                            committed += 1
                        if committed == 0:
                            break
                    state[retire_ptr : retire_ptr + committed] = retired_runs[
                        committed
                    ]
                    rob_occupancy -= committed
                    retire_ptr += committed
                    retired += committed
                    head.in_flight -= committed
                    if head_end is not None and retire_ptr >= head_end:
                        tasks.popleft()
                        core._emit_task_commit(head, head_end)
                        head_popped = True
                    if committed < span:
                        break
                retired_total += retired
                # Retiring can change a drain outcome in exactly two
                # ways: the head task popped (entry ownership and the
                # head scheduler cap shift) or the new retire head is
                # itself a diverted entry (the oldest-release path).
                # Producer-blocked entries are indifferent to retire:
                # _DONE -> _RETIRED stays >= the release threshold.
                if retired and (
                    head_popped
                    or (retire_ptr < count and state[retire_ptr] == _DIVERT)
                ):
                    fifo_dirty = True

            # ---- drain divert queue --------------------------------
            if fifo and fifo_dirty:
                oldest = retire_ptr
                if state[oldest] == _DIVERT:
                    blocked = False
                    for producer in divert_producer_map[oldest]:
                        if state[producer] < _WAIT:
                            blocked = True
                            break
                    if not blocked:
                        oldest_epoch = divert_epoch[oldest]
                        for position, entry in enumerate(fifo):
                            if entry[0] == oldest and entry[1] == oldest_epoch:
                                del fifo[position]
                                break
                        del divert_producer_map[oldest]
                        divert_occupancy -= 1
                        enter_scheduler(oldest)
                        active = True
                if fifo:
                    moved = 0
                    scanned = 0
                    deleted = False
                    capacity_blocked = False
                    head = tasks[0] if tasks else None
                    head_end = head.end_index if head is not None else None
                    index_in_fifo = 0
                    while index_in_fifo < len(fifo) and scanned < 64:
                        entry_index, entry_epoch = fifo[index_in_fifo]
                        scanned += 1
                        if (
                            divert_epoch[entry_index] != entry_epoch
                            or state[entry_index] != _DIVERT
                        ):
                            # Squashed entry: lazily delete (counted
                            # against the scan budget, exactly like the
                            # cycle-exact engines' generation check).
                            del fifo[index_in_fifo]
                            deleted = True
                            continue
                        blocked = False
                        for producer in divert_producer_map[entry_index]:
                            if state[producer] < release_state:
                                blocked = True
                                break
                        if blocked:
                            index_in_fifo += 1
                            continue
                        owned_by_head = head is not None and (
                            head_end is None or entry_index < head_end
                        )
                        cap = sched_entries if owned_by_head else shared_sched_cap
                        if sched_occupancy >= cap:
                            capacity_blocked = True
                            index_in_fifo += 1
                            continue
                        if not owned_by_head and (
                            sched_used.get(owner[entry_index], 0) >= quota
                        ):
                            capacity_blocked = True
                            index_in_fifo += 1
                            continue
                        del fifo[index_in_fifo]
                        del divert_producer_map[entry_index]
                        divert_occupancy -= 1
                        enter_scheduler(entry_index)
                        moved += 1
                        if moved >= width:
                            break
                    if moved:
                        active = True
                    # Whether any surviving entry was turned away on
                    # scheduler capacity or quota; until then, issuing
                    # (which only *frees* those) cannot change a drain
                    # outcome, so the issue stage re-dirties the queue
                    # only when this is set.
                    fifo_capacity_blocked = capacity_blocked
                    # A deletion shifts later entries into the scan
                    # window, so the next cycle's scan can reach
                    # entries this one could not — rescan, exactly as
                    # the cycle-exact engines would.
                    fifo_dirty = active or deleted
                else:
                    fifo_dirty = active

            # ---- issue ---------------------------------------------
            if pending_batch is not None:
                # The candidate run validated during wake-up processing
                # is still intact: retire only touches _DONE prefixes
                # and the drain only admits *new* scheduler entries, so
                # no stage between there and here can disturb a _READY
                # run.  Issue it whole — the heap is necessarily empty
                # (a detection precondition nothing since violated).
                run_start, run_limit = pending_batch
                span = run_limit - run_start
                state[run_start:run_limit] = exec_runs[span]
                sched_occupancy -= span
                sched_used[owner[run_start]] -= span
                complete_at = cycle + 1
                completion = (run_start, run_limit)
                complete_bucket = complete_events.get(complete_at)
                if complete_bucket is None:
                    complete_events[complete_at] = [completion]
                else:
                    complete_bucket.append(completion)
                active = True
                if fifo_capacity_blocked:
                    fifo_dirty = True
            elif heap:
                issued = 0
                deferred = None
                violated = False
                while heap and issued < units:
                    index = heappop(heap)
                    if state[index] != _READY:
                        continue
                    if earliest[index] > cycle:
                        if deferred is None:
                            deferred = [index]
                        else:
                            deferred.append(index)
                        continue
                    lat = lats[index]
                    if lat == LAT_LOAD:
                        unsafe_producer = unsafe_mem.get(index)
                        if (
                            unsafe_producer is not None
                            and state[unsafe_producer] < _DONE
                        ):
                            handle_violation(index, unsafe_producer)
                            active = True
                            fifo_dirty = True
                            fetch_wake = 0
                            violated = True
                            # The violator (and the heap contents from
                            # younger tasks) were squashed; issue no
                            # more this cycle.
                            break
                        latency = data_latency(mem_addrs[index])
                    elif lat == LAT_STORE:
                        data_latency(mem_addrs[index])
                        latency = 1
                    elif lat == LAT_MUL:
                        latency = mul_latency
                    else:
                        latency = 1
                    state[index] = _EXEC
                    sched_occupancy -= 1
                    sched_used[owner[index]] -= 1
                    complete_at = cycle + latency
                    complete_bucket = complete_events.get(complete_at)
                    if complete_bucket is None:
                        complete_events[complete_at] = [index]
                    else:
                        complete_bucket.append(index)
                    issued += 1
                if issued:
                    active = True
                    # Issuing frees scheduler slots and quota — which
                    # can only matter to a drain that was turned away
                    # on capacity, never to a producer-blocked one.
                    if fifo_capacity_blocked:
                        fifo_dirty = True
                if deferred is not None:
                    if violated:
                        # The squash scrub already cleaned the heap;
                        # only survivors may re-enter it.
                        for index in deferred:
                            if state[index] == _READY:
                                heappush(heap, index)
                    else:
                        for index in deferred:
                            heappush(heap, index)

            # ---- fetch ---------------------------------------------
            # Biased-ICount arbitration, inlined for the standard one-
            # and two-port configurations (see _run_fast).
            if cycle < fetch_wake:
                selected = ()
                share = width
            elif fetch_ports <= 2:
                first = None
                second = None
                second_key = None
                position = 0
                for task in tasks:
                    if (
                        task.waiting_branch_index is None
                        and cycle >= task.fetch_stall_until
                        and (
                            task.end_index is None
                            or task.fetch_index < task.end_index
                        )
                    ):
                        if first is None:
                            first = task
                        else:
                            key = (task.in_flight, position)
                            if second_key is None or key < second_key:
                                second_key = key
                                second = task
                    position += 1
                if fetch_ports == 1:
                    second = None
                if first is None:
                    selected = ()
                    share = width
                    wake_f = max_cycles + 2
                    for task in tasks:
                        if task.waiting_branch_index is None and (
                            task.end_index is None
                            or task.fetch_index < task.end_index
                        ):
                            stall = task.fetch_stall_until
                            if stall < wake_f:
                                wake_f = stall
                    fetch_wake = wake_f
                elif second is None:
                    selected = (first,)
                    share = width
                else:
                    selected = (first, second)
                    share = width // 2
            else:  # nonstandard port counts: generic arbitration
                candidates = []
                position = 0
                for task in tasks:
                    if task.can_fetch(cycle):
                        candidates.append((task.task_id, task.in_flight, position))
                    position += 1
                if candidates:
                    chosen = select_fetch_tasks(
                        candidates, fetch_ports, config.head_bias
                    )
                    by_id = {task.task_id: task for task in tasks}
                    selected = tuple(by_id[task_id] for task_id in chosen)
                    share = width // max(len(selected), 1)
                else:
                    selected = ()
                    share = width

            for task in selected:
                budget = share
                is_head = task is tasks[0]
                if is_head:
                    rob_cap = rob_entries
                    sched_cap = sched_entries
                else:
                    rob_cap = shared_rob_cap
                    sched_cap = shared_sched_cap
                task_id = task.task_id
                start = task.start_index
                ras = task.ras
                point = task.spawn_point
                spawn_trigger = point.trigger_pc if point is not None else None
                burst_instructions = 0
                burst_diverts = 0

                while budget > 0:
                    index = task.fetch_index
                    if index >= count:
                        break
                    end_index = task.end_index
                    if end_index is not None and index >= end_index:
                        break
                    if rob_occupancy >= rob_cap:
                        break
                    pc = pcs[index]

                    # Instruction cache: one access per new line.
                    line = lines[index]
                    if line != task.last_fetch_line:
                        latency = fetch_latency(pc)
                        task.last_fetch_line = line
                        if latency > 1:
                            task.fetch_stall_until = cycle + latency
                            icache_stalls += latency - 1
                            break

                    # ---- batched block fetch -----------------------
                    # Consume a compiled straight-line run in one inner
                    # loop (see _run_fast for the full rationale; this
                    # transcription drops the generation writes).
                    if run_end[index] - index >= 2:
                        limit = run_end[index]
                        bound = index + budget
                        if bound < limit:
                            limit = bound
                        if end_index is not None and end_index < limit:
                            limit = end_index
                        bound = index + rob_cap - rob_occupancy
                        if bound < limit:
                            limit = bound
                        bound = index + sched_cap - sched_occupancy
                        if bound < limit:
                            limit = bound
                        if not is_head:
                            bound = index + quota - sched_used.get(task_id, 0)
                            if bound < limit:
                                limit = bound
                        if limit - index >= 2:
                            bstart = index
                            position = index
                            early = cycle + frontend_latency
                            ready_at = early if early > cycle else cycle + 1
                            ready_positions = None
                            while position < limit:
                                # All dispatch decisions are made before
                                # any mutation, so an abort leaves
                                # `position` untouched.
                                producer, producer1, mem_producer = batch_deps[
                                    position
                                ]
                                pending = 0
                                if producer >= 0:
                                    if producer >= bstart:
                                        # Fetched this cycle: still in
                                        # flight by construction.
                                        pending += 1
                                    elif state[producer] < _DONE:
                                        if producer < start:
                                            break
                                        pending += 1
                                if producer1 >= 0:
                                    if producer1 >= bstart:
                                        pending += 1
                                    elif state[producer1] < _DONE:
                                        if producer1 < start:
                                            break
                                        pending += 1
                                if mem_producer >= 0 and (
                                    mem_producer >= bstart
                                    or state[mem_producer] < _DONE
                                ):
                                    if mem_producer < start:
                                        break
                                    pending += 1
                                    dep_bucket = dependents.get(mem_producer)
                                    if dep_bucket is None:
                                        dependents[mem_producer] = [position]
                                    else:
                                        dep_bucket.append(position)
                                owner[position] = task_id
                                earliest[position] = early
                                wait_count[position] = pending
                                if pending:
                                    state[position] = _WAIT
                                else:
                                    state[position] = _READY
                                    if ready_positions is None:
                                        ready_positions = [position]
                                    else:
                                        ready_positions.append(position)
                                position += 1
                            batched = position - bstart
                            if batched:
                                if ready_positions is not None:
                                    # A range entry may only cover
                                    # positions ready *at fetch*: a
                                    # position woken by a completion
                                    # later the same cycle the range
                                    # fires is _READY too, and a
                                    # whole-batch range would sweep it
                                    # into the heap one cycle before
                                    # its own wake-up event — earlier
                                    # than the cycle-exact engines
                                    # issue it.  Mixed batches fall
                                    # back to per-position entries.
                                    if len(ready_positions) == batched:
                                        entry = (bstart, position)
                                        ready_bucket = ready_events.get(
                                            ready_at
                                        )
                                        if ready_bucket is None:
                                            ready_events[ready_at] = [entry]
                                        else:
                                            ready_bucket.append(entry)
                                    else:
                                        ready_bucket = ready_events.get(
                                            ready_at
                                        )
                                        if ready_bucket is None:
                                            ready_events[ready_at] = (
                                                ready_positions
                                            )
                                        else:
                                            ready_bucket.extend(
                                                ready_positions
                                            )
                                task.fetch_index = position
                                task.in_flight += batched
                                rob_occupancy += batched
                                sched_occupancy += batched
                                sched_used[task_id] = (
                                    sched_used.get(task_id, 0) + batched
                                )
                                fetched_total += batched
                                budget -= batched
                                if spawn_trigger is not None:
                                    burst_instructions += batched
                                continue
                            # Zero-length batch (the very first
                            # instruction crosses tasks): fall through
                            # to the per-instruction path.

                    # Decide the dispatch target (see the staged
                    # _fetch_from_task for the full rationale).
                    producers = None
                    unsafe_producer = None
                    producer = dep0[index]
                    if 0 <= producer < start and state[producer] < _DONE:
                        producers = [producer]
                    producer = dep1[index]
                    if 0 <= producer < start and state[producer] < _DONE:
                        if producers is None:
                            producers = [producer]
                        else:
                            producers.append(producer)
                    if lats[index] == LAT_LOAD:
                        mem_producer = mem_deps[index]
                        if (
                            0 <= mem_producer < start
                            and state[mem_producer] < _DONE
                        ):
                            if predicts_dependence(pcs[mem_producer], pc):
                                if producers is None:
                                    producers = [mem_producer]
                                else:
                                    producers.append(mem_producer)
                            else:
                                unsafe_producer = mem_producer

                    # Check the dispatch target's capacity.
                    if producers is not None:
                        if divert_occupancy >= divert_entries:
                            break
                    else:
                        if sched_occupancy >= sched_cap:
                            break
                        if not is_head and sched_used.get(task_id, 0) >= quota:
                            break

                    # Consume the instruction.
                    task.fetch_index = index + 1
                    task.in_flight += 1
                    rob_occupancy += 1
                    owner[index] = task_id
                    earliest[index] = cycle + frontend_latency
                    fetched_total += 1
                    if unsafe_producer is not None:
                        unsafe_mem[index] = unsafe_producer
                    budget -= 1

                    if producers is not None:
                        state[index] = _DIVERT
                        divert_occupancy += 1
                        divert_producer_map[index] = producers
                        fifo.append((index, divert_epoch[index]))
                        diverted_total += 1
                        if spawn_trigger is not None:
                            burst_instructions += 1
                            burst_diverts += 1
                    else:
                        # Inlined scheduler entry (the closure above is
                        # the shared transcription; this is the same
                        # body on the hottest path).
                        pending = 0
                        producer = dep0[index]
                        if producer >= 0 and state[producer] < _DONE:
                            pending += 1
                        producer = dep1[index]
                        if producer >= 0 and state[producer] < _DONE:
                            pending += 1
                        if lats[index] == LAT_LOAD:
                            producer = mem_deps[index]
                            if (
                                producer >= 0
                                and index not in unsafe_mem
                                and state[producer] < _DONE
                            ):
                                dep_bucket = dependents.get(producer)
                                if dep_bucket is None:
                                    dependents[producer] = [index]
                                else:
                                    dep_bucket.append(index)
                                pending += 1
                        sched_occupancy += 1
                        sched_used[task_id] = sched_used.get(task_id, 0) + 1
                        wait_count[index] = pending
                        if pending:
                            state[index] = _WAIT
                        else:
                            state[index] = _READY
                            ready_at = earliest[index]
                            if ready_at <= cycle:
                                ready_at = cycle + 1
                            ready_bucket = ready_events.get(ready_at)
                            if ready_bucket is None:
                                ready_events[ready_at] = [index]
                            else:
                                ready_bucket.append(index)
                        if spawn_trigger is not None:
                            burst_instructions += 1

                    # Spawning: only the tail task spawns (the kernel
                    # never runs with nested_spawns).
                    if len(tasks) < max_tasks:
                        if task.end_index is None and task is tasks[-1]:
                            target = spawn_targets[index]
                            if target >= 0 and pc not in suppressed:
                                core._spawn(task, pc, target, index)

                    # Control flow effects on fetch.  fetch_cycle is
                    # written only where a transfer actually waits: it
                    # is read back solely at branch resolution.
                    kind = kinds[index]
                    if kind:
                        if kind == KIND_COND_BRANCH:
                            cond_branches += 1
                            taken = takens[index]
                            if gshare_update(pc, taken) != taken:
                                branch_misses += 1
                                task.waiting_branch_index = index
                                waiting_branches[index] = task
                                fetch_cycle[index] = cycle
                                break
                            if taken:
                                break  # one taken branch per cycle
                        else:
                            if kind == KIND_CALL_DIRECT:
                                ras.push(fall_throughs[index])
                            elif kind == KIND_CALL_INDIRECT:
                                ras.push(fall_throughs[index])
                                if not indirect_update(pc, next_pcs[index]):
                                    indirect_misses += 1
                                    task.waiting_branch_index = index
                                    waiting_branches[index] = task
                                    fetch_cycle[index] = cycle
                            elif kind == KIND_RETURN:
                                if ras.pop() != next_pcs[index]:
                                    return_misses += 1
                                    task.waiting_branch_index = index
                                    waiting_branches[index] = task
                                    fetch_cycle[index] = cycle
                            elif kind == KIND_SWITCH:
                                if not indirect_update(pc, next_pcs[index]):
                                    indirect_misses += 1
                                    task.waiting_branch_index = index
                                    waiting_branches[index] = task
                                    fetch_cycle[index] = cycle
                            # Every non-branch transfer ends the fetch
                            # stream.
                            break

                if burst_instructions:
                    record_task_instructions(
                        spawn_trigger, burst_instructions, burst_diverts
                    )

            if fetched_total != fetch_mark:
                # Any fetch can matter to the drain: besides appending
                # divert entries, an *older* task fetching a plain
                # dispatch may be the producer an already-diverted
                # younger-task entry blocks on (_FREE -> _WAIT crosses
                # the dispatch-release threshold).
                fifo_dirty = True

            occupancy_sum += len(tasks)

            # ---- time skip -----------------------------------------
            # A cycle in which nothing can change — no ready work,
            # nothing retirable, every task fetch-inert, and the divert
            # queue provably frozen — is a pure no-op until the next
            # calendar entry or fetch timer, so jump straight there.
            # Every state transition is driven by a calendar bucket, a
            # fetch timer expiring, or a same-cycle prior-stage change;
            # the first two bound the jump and the third cannot occur in
            # a cycle that starts quiet.  Only the per-cycle occupancy
            # statistic accrues across the gap, added in closed form.
            if (
                not heap
                and cycle + 1 not in complete_events
                and cycle + 1 not in ready_events
                and retire_ptr < count
                and state[retire_ptr] != _DONE
                and (not fifo or (not active and fetched_total == fetch_mark))
            ):
                wake = min(complete_events) if complete_events else None
                if ready_events:
                    ready_wake = min(ready_events)
                    if wake is None or ready_wake < wake:
                        wake = ready_wake
                skip_ok = True
                head_task = tasks[0] if tasks else None
                next_cycle = cycle + 1
                for task in tasks:
                    if task.waiting_branch_index is not None:
                        continue  # resumes via a completion event
                    findex = task.fetch_index
                    end_i = task.end_index
                    if findex >= (count if end_i is None else end_i):
                        continue  # done fetching
                    stall = task.fetch_stall_until
                    if stall > next_cycle:
                        if wake is None or stall < wake:
                            wake = stall
                        continue
                    is_head = task is head_task
                    if rob_occupancy >= (
                        rob_entries if is_head else shared_rob_cap
                    ):
                        continue  # unblocked only by retire (events)
                    if lines[findex] != task.last_fetch_line:
                        skip_ok = False  # next fetch probes the I-cache
                        break
                    # A capacity-blocked fetch breaks before any
                    # mutation; reconstruct which structure gates the
                    # next instruction (all inputs are frozen while the
                    # machine is quiet).
                    start = task.start_index
                    producer = dep0[findex]
                    live = 0 <= producer < start and state[producer] < _DONE
                    if not live:
                        producer = dep1[findex]
                        live = 0 <= producer < start and state[producer] < _DONE
                    if live:
                        if divert_occupancy >= divert_entries:
                            continue  # divert queue full: inert
                        skip_ok = False
                        break
                    mem_live = False
                    if lats[findex] == LAT_LOAD:
                        producer = mem_deps[findex]
                        mem_live = (
                            0 <= producer < start and state[producer] < _DONE
                        )
                    sched_full = sched_occupancy >= (
                        sched_entries if is_head else shared_sched_cap
                    ) or (
                        not is_head
                        and sched_used.get(task.task_id, 0) >= quota
                    )
                    if mem_live:
                        # Store-set prediction picks divert or
                        # scheduler; inert only when both are full.
                        if sched_full and divert_occupancy >= divert_entries:
                            continue
                        skip_ok = False
                        break
                    if sched_full:
                        continue
                    skip_ok = False
                    break
                if skip_ok and wake is not None and wake > next_cycle:
                    occupancy_sum += (wake - next_cycle) * len(tasks)
                    cycle = wake - 1
    finally:
        core._cycle = cycle
        core._retire_ptr = retire_ptr
        core._rob_occupancy = rob_occupancy
        core._sched_occupancy = sched_occupancy
        core._divert_occupancy = divert_occupancy
        stats.retired_instructions += retired_total
        stats.fetched_instructions += fetched_total
        stats.diverted_instructions += diverted_total
        stats.task_occupancy_sum += occupancy_sum
        stats.icache_stall_cycles += icache_stalls
        stats.conditional_branches += cond_branches
        stats.branch_mispredicts += branch_misses
        stats.indirect_mispredicts += indirect_misses
        stats.return_mispredicts += return_misses
