"""Simulation statistics."""

from collections import defaultdict


class SimStats:
    """Counters collected by one cycle-level simulation run."""

    def __init__(self):
        self.cycles = 0
        self.retired_instructions = 0
        self.fetched_instructions = 0
        self.tasks_created = 1  # the initial task
        self.nested_spawns = 0  # segment splits (future-work extension)
        self.spawns_by_category = defaultdict(int)
        self.violation_squashes = 0
        self.squashed_instructions = 0
        self.diverted_instructions = 0
        self.branch_mispredicts = 0
        self.conditional_branches = 0
        self.return_mispredicts = 0
        self.indirect_mispredicts = 0
        self.icache_stall_cycles = 0
        self.task_occupancy_sum = 0
        self.cache_stats = {}

    @property
    def ipc(self):
        """Retired instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.retired_instructions / self.cycles

    @property
    def branch_mispredict_rate(self):
        """Mispredicts per conditional branch."""
        if not self.conditional_branches:
            return 0.0
        return self.branch_mispredicts / self.conditional_branches

    @property
    def mean_active_tasks(self):
        """Average number of live tasks per cycle."""
        if not self.cycles:
            return 0.0
        return self.task_occupancy_sum / self.cycles

    @property
    def total_spawns(self):
        """Dynamic spawns performed."""
        return sum(self.spawns_by_category.values())

    def as_dict(self):
        """All statistics as a plain dictionary (for reports)."""
        return {
            "cycles": self.cycles,
            "retired_instructions": self.retired_instructions,
            "ipc": self.ipc,
            "tasks_created": self.tasks_created,
            "nested_spawns": self.nested_spawns,
            "total_spawns": self.total_spawns,
            "spawns_by_category": {
                str(category): count
                for category, count in sorted(
                    self.spawns_by_category.items(), key=lambda item: str(item[0])
                )
            },
            "violation_squashes": self.violation_squashes,
            "squashed_instructions": self.squashed_instructions,
            "diverted_instructions": self.diverted_instructions,
            "branch_mispredicts": self.branch_mispredicts,
            "branch_mispredict_rate": self.branch_mispredict_rate,
            "mean_active_tasks": self.mean_active_tasks,
            "cache_stats": dict(self.cache_stats),
        }

    def __repr__(self):
        return "SimStats(ipc={:.3f}, cycles={}, spawns={})".format(
            self.ipc, self.cycles, self.total_spawns
        )


def speedup_percent(polyflow_stats, baseline_stats):
    """Speedup of PolyFlow over the baseline, in percent.

    Both runs retire the same trace, so the speedup is the inverse
    cycle ratio.
    """
    if polyflow_stats.cycles == 0:
        return 0.0
    return (baseline_stats.cycles / polyflow_stats.cycles - 1.0) * 100.0
