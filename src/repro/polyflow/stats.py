"""Simulation statistics.

:class:`SimStats` is a consumer of the simulation event bus (see
:mod:`repro.obs`): the task-lifecycle counters — tasks created, spawns
by category, violation squashes, squashed instructions — accumulate in
:meth:`SimStats.on_event` from the events the core emits, so they can
never drift from what an attached trace sink observes.  Only the
per-instruction hot-path counters (fetched/retired/diverted, branch
outcomes, i-cache stalls) are incremented inline by the core, because
constructing an event per instruction on untraced runs would not be
zero-cost.
"""

from collections import defaultdict


class SimStats:
    """Counters collected by one cycle-level simulation run."""

    def __init__(self):
        self.cycles = 0
        self.retired_instructions = 0
        self.fetched_instructions = 0
        self.tasks_created = 1  # the initial task
        self.nested_spawns = 0  # segment splits (future-work extension)
        self.spawns_by_category = defaultdict(int)
        self.violation_squashes = 0
        self.squashed_instructions = 0
        self.diverted_instructions = 0
        self.branch_mispredicts = 0
        self.conditional_branches = 0
        self.return_mispredicts = 0
        self.indirect_mispredicts = 0
        self.icache_stall_cycles = 0
        self.task_occupancy_sum = 0
        self.cache_stats = {}

    # -- event-bus consumption --------------------------------------------------

    def on_event(self, event):
        """Accumulate one task-lifecycle event (bus-sink interface)."""
        kind = event.kind
        if kind == "spawn_accepted":
            self.tasks_created += 1
            if event.nested:
                self.nested_spawns += 1
            if event.category is not None:
                self.spawns_by_category[event.category] += 1
        elif kind == "squash":
            self.squashed_instructions += event.squashed_instructions
        elif kind == "violation":
            self.violation_squashes += 1

    @property
    def ipc(self):
        """Retired instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.retired_instructions / self.cycles

    @property
    def branch_mispredict_rate(self):
        """Mispredicts per conditional branch."""
        if not self.conditional_branches:
            return 0.0
        return self.branch_mispredicts / self.conditional_branches

    @property
    def mean_active_tasks(self):
        """Average number of live tasks per cycle."""
        if not self.cycles:
            return 0.0
        return self.task_occupancy_sum / self.cycles

    @property
    def total_spawns(self):
        """Dynamic spawns performed."""
        return sum(self.spawns_by_category.values())

    def as_dict(self):
        """All statistics as a plain dictionary (for reports).

        Every plain counter attribute is included automatically, so a
        counter added to ``__init__`` (or accumulated from a new bus
        event) can never be silently dropped from reports — the
        round-trip test in ``tests/polyflow/test_stats_roundtrip.py``
        locks this in.
        """
        result = {
            name: value
            for name, value in vars(self).items()
            if name not in ("spawns_by_category", "cache_stats")
        }
        result["spawns_by_category"] = {
            str(category): count
            for category, count in sorted(
                self.spawns_by_category.items(), key=lambda item: str(item[0])
            )
        }
        result["ipc"] = self.ipc
        result["total_spawns"] = self.total_spawns
        result["branch_mispredict_rate"] = self.branch_mispredict_rate
        result["mean_active_tasks"] = self.mean_active_tasks
        result["cache_stats"] = dict(self.cache_stats)
        return result

    def __repr__(self):
        return "SimStats(ipc={:.3f}, cycles={}, spawns={})".format(
            self.ipc, self.cycles, self.total_spawns
        )


def speedup_percent(polyflow_stats, baseline_stats):
    """Speedup of PolyFlow over the baseline, in percent.

    Both runs retire the same trace, so the speedup is the inverse
    cycle ratio.
    """
    if polyflow_stats.cycles == 0:
        return 0.0
    return (baseline_stats.cycles / polyflow_stats.cycles - 1.0) * 100.0
