"""Inter-task memory dependence prediction (store-set style).

PolyFlow synchronizes inter-task data dependences conservatively,
"without any value prediction or selective re-execution".  Register
dependences are covered by the compiler-generated hint information and
always synchronize.  Memory dependences are learned: the predictor
starts empty, and the first time a load in a younger task executes
before the older-task store it actually depends on, the violating task
(and all tasks beyond it) is squashed and the (store PC, load PC) pair
is learned.  From then on the load is diverted until the store
completes — the synchronizing behaviour of Stone et al.'s
Synchronizing Store Sets.
"""


class StoreSetPredictor:
    """PC-pair memory dependence predictor."""

    def __init__(self):
        #: load PC -> set of store PCs it must synchronize with.
        self._store_sets = {}
        self.predictions = 0
        self.violations = 0

    def predicts_dependence(self, store_pc, load_pc):
        """Whether the load must wait for this store (learned pair)."""
        stores = self._store_sets.get(load_pc)
        if stores is not None and store_pc in stores:
            self.predictions += 1
            return True
        return False

    def train_violation(self, store_pc, load_pc):
        """Learn a pair after a violation squash."""
        self.violations += 1
        self._store_sets.setdefault(load_pc, set()).add(store_pc)

    def learned_pairs(self):
        """Number of learned (store, load) pairs."""
        return sum(len(stores) for stores in self._store_sets.values())

    def __repr__(self):
        return "StoreSetPredictor(pairs={}, violations={})".format(
            self.learned_pairs(), self.violations
        )
