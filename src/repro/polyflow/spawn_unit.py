"""The Task Spawn Unit.

Holds the hint table (trigger PC -> spawn point + dependence info),
resolves each dynamic trigger to the next dynamic instance of its spawn
target, and applies dynamic profitability feedback: spawn points whose
tasks keep suffering violation squashes are suppressed.

The trigger resolution mirrors the paper's methodology: "the Task Spawn
Unit uses a trace to ensure that tasks are not spawned too far into the
future".
"""

from collections import defaultdict


class SpawnUnit:
    """Trace-resolved spawn decisions with profitability feedback."""

    def __init__(self, trace, hint_table, config):
        self.hint_table = hint_table
        self.config = config
        self.spawn_counts = defaultdict(int)
        self.squash_counts = defaultdict(int)
        self._task_instructions = defaultdict(int)
        self._task_diverts = defaultdict(int)
        self._suppressed = set()
        self._target_index = self._resolve_targets(trace)
        # Ascending trace indices with a resolved spawn target; the
        # block engine cuts its straight-line runs at these so spawn
        # decisions always take the per-instruction fetch path.
        self._candidate_indices = [
            index for index, target in enumerate(self._target_index) if target >= 0
        ]

    def _resolve_targets(self, trace):
        """For each trace index, the index where its spawn would start.

        Computed in one backward pass: ``target_index[i] = j`` means the
        trigger at trace index ``i`` spawns a task beginning at trace
        index ``j`` (the next dynamic instance of the spawn target
        within the distance window), or -1.
        """
        records = trace.records
        count = len(records)
        target_index = [-1] * count
        if not len(self.hint_table):
            return target_index
        lookup = self.hint_table.lookup
        min_distance = self.config.min_spawn_distance
        max_distance = self.config.max_spawn_distance
        last_seen = {}
        for index in range(count - 1, -1, -1):
            pc = records[index].inst.pc
            entry = lookup(pc)
            if entry is not None:
                target = last_seen.get(entry.spawn_point.spawn_pc, -1)
                if target >= 0:
                    distance = target - index
                    if min_distance <= distance <= max_distance:
                        target_index[index] = target
            last_seen[pc] = index
        return target_index

    def spawn_target(self, trace_index, pc):
        """The start index for a spawn triggered at ``trace_index``.

        Returns -1 when there is nothing to spawn (no hint, target out
        of range, or the spawn point is suppressed by feedback).
        """
        target = self._target_index[trace_index]
        if target < 0:
            return -1
        if pc in self._suppressed:
            return -1
        return target

    def resolved_targets(self):
        """The live per-trace-index resolved-target list.

        ``resolved_targets()[i]`` is the start index a spawn triggered
        at trace index ``i`` would use, or -1; it is what
        :meth:`spawn_target` consults before the suppression filter.
        The core's fetch loop indexes this directly (together with
        :meth:`suppressed_triggers_live`) on its non-verbose fast path.
        """
        return self._target_index

    def spawn_candidate_indices(self):
        """Ascending trace indices whose resolved spawn target is live.

        The block engine consults this when compiling its run-length
        overlay (see :meth:`~repro.polyflow.core.PolyFlowCore._compile_blocks`):
        candidates bound every batched run, so sparse hint tables make
        the overlay a near-free copy of the shared block table.
        """
        return self._candidate_indices

    def suppressed_triggers_live(self):
        """The live suppression set (mutated by :meth:`record_squash`).

        Unlike :meth:`suppressed_triggers` this is not a snapshot: the
        returned set identity is stable for the unit's lifetime, so the
        fetch loop can hold it across :meth:`record_squash` calls.
        Callers must not mutate it.
        """
        return self._suppressed

    def hint_for(self, pc):
        """The hint entry of the trigger at ``pc``, or None."""
        return self.hint_table.lookup(pc)

    def record_spawn(self, trigger_pc):
        """Count a performed spawn for feedback purposes."""
        self.spawn_counts[trigger_pc] += 1

    def record_squash(self, trigger_pc):
        """Count a violation squash of a task spawned at ``trigger_pc``.

        Applies the profitability filter: a trigger whose tasks are
        squashed too often is suppressed for the rest of the run.
        """
        self.squash_counts[trigger_pc] += 1
        squashes = self.squash_counts[trigger_pc]
        spawns = max(self.spawn_counts[trigger_pc], 1)
        if (
            squashes >= self.config.spawn_feedback_threshold
            and squashes / spawns > self.config.spawn_feedback_ratio
        ):
            self._suppressed.add(trigger_pc)

    def record_task_instruction(self, trigger_pc, diverted):
        """Bookkeeping: how data-dependent a trigger's tasks are.

        Purely observational (reported via :meth:`divert_fraction`);
        suppression is driven by violation squashes, the signal the
        paper's Synchronizing Store Sets mechanism acts on.
        """
        self._task_instructions[trigger_pc] += 1
        if diverted:
            self._task_diverts[trigger_pc] += 1

    def record_task_instructions(self, trigger_pc, count, diverted):
        """Batched :meth:`record_task_instruction`.

        Counts ``count`` task instructions of which ``diverted`` went
        through the divert queue — the fused fetch loop accumulates one
        burst's worth and flushes it in a single call.
        """
        self._task_instructions[trigger_pc] += count
        self._task_diverts[trigger_pc] += diverted

    def divert_fraction(self, trigger_pc):
        """Fraction of a trigger's task instructions that diverted."""
        total = self._task_instructions[trigger_pc]
        if not total:
            return 0.0
        return self._task_diverts[trigger_pc] / total

    def suppressed_triggers(self):
        """Trigger PCs currently suppressed by feedback."""
        return frozenset(self._suppressed)

    def total_spawns(self):
        """Total spawns performed."""
        return sum(self.spawn_counts.values())
