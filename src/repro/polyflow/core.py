"""The PolyFlow cycle-level timing model.

A trace-driven model of the machine in the paper's Figure 7/8: a
simultaneously multithreaded core running up to 8 tasks, with a Task
Spawn Unit, a shared reorder buffer and scheduler, a divert queue for
synchronizing inter-task dependences, and the Figure 8 memory system.

Model summary (see DESIGN.md section 6 for the full rationale):

* Tasks are contiguous segments of the committed trace.  A spawn at
  trace index *i* targeting PC *p* starts a new task at the next
  dynamic instance of *p* — the control-equivalence property.
* Only the tail (youngest) task spawns, as in the paper.
* A branch mispredict stalls only the fetch of its own task until the
  branch resolves (minimum penalty applies); other tasks keep fetching
  — this is how control-equivalent tasks tolerate mispredictions.
* Inter-task register dependences always synchronize through the divert
  queue (the compiler-generated hint information covers them).
  Inter-task memory dependences are learned by a store-set predictor;
  an unlearned conflict squashes the violating task and all younger
  tasks, then trains the predictor.
* Wrong-path fetch is modelled as refill bubbles, not as executed
  wrong-path instructions.

The head (oldest) task gets small reserved shares of the ROB and
scheduler so that it can always make forward progress (younger tasks
can never starve the non-speculative task into deadlock).
"""

import heapq
from collections import deque

from repro.errors import SimulationError
from repro.frontend.branch_predictor import GsharePredictor, IndirectTargetPredictor
from repro.frontend.icount import select_fetch_tasks
from repro.memory.hierarchy import CacheHierarchy
from repro.obs.bus import EventBus
from repro.obs.events import (
    DependenceViolation,
    HintLookup,
    InstructionCommitted,
    InstructionFetched,
    SpawnAccepted,
    SpawnRejected,
    SpawnRequested,
    TaskCommitted,
    TaskSquashed,
    TaskStarted,
)
from repro.polyflow.config import PAPER_CONFIG, superscalar_config
from repro.polyflow.dependences import StoreSetPredictor
from repro.polyflow.spawn_unit import SpawnUnit
from repro.polyflow.stats import SimStats
from repro.polyflow.task import Task
from repro.spawn.hints import HintTable

_RA = 31

# Instruction states.
_FREE = 0
_DIVERT = 1
_WAIT = 2
_READY = 3
_EXEC = 4
_DONE = 5
_RETIRED = 6

# Event kinds.
_EV_COMPLETE = 0
_EV_READY = 1

#: ROB entries only the head task may use.
_HEAD_ROB_RESERVE = 32
#: Scheduler entries only the head task may use.
_HEAD_SCHED_RESERVE = 8


class PolyFlowCore:
    """One simulation run of the PolyFlow core over a trace."""

    def __init__(
        self, trace, config=PAPER_CONFIG, hint_table=None, max_cycles=None, bus=None
    ):
        self.trace = trace
        self.config = config
        self.hint_table = hint_table if hint_table is not None else HintTable()
        self.stats = SimStats()
        #: The event bus.  Task-lifecycle events always flow (SimStats
        #: consumes them); per-instruction events are only constructed
        #: when a verbose sink is attached (``bus.verbose``).
        self.bus = bus if bus is not None else EventBus()
        self.bus.attach(self.stats, verbose=False)
        self.hierarchy = CacheHierarchy()
        self.gshare = GsharePredictor(config.gshare_counters, config.gshare_history_bits)
        self.indirect_predictor = IndirectTargetPredictor()
        self.store_sets = StoreSetPredictor()
        self.spawn_unit = SpawnUnit(trace, self.hint_table, config)
        count = len(trace)
        self.max_cycles = max_cycles if max_cycles is not None else 400 * count + 10_000
        # Per-trace-index dynamic state.
        self._state = bytearray(count)
        self._gen = [0] * count
        self._wait_count = [0] * count
        self._earliest = [0] * count
        self._fetch_cycle = [0] * count
        self._owner = [0] * count
        self._sched_used = {}
        self._dependents = {}
        self._divert_producers = {}
        self._unsafe_mem = {}
        # Machine structures.
        self._tasks = deque()
        self._events = {}
        self._ready_heap = []
        self._divert_fifo = deque()
        self._rob_occupancy = 0
        self._sched_occupancy = 0
        self._divert_occupancy = 0
        self._retire_ptr = 0
        self._next_task_id = 0
        self._cycle = 0

    # -- public API ------------------------------------------------------------

    def run(self):
        """Simulate the whole trace; returns the :class:`SimStats`."""
        if not len(self.trace):
            return self.stats
        if self.config.warm_caches:
            self._warm_caches()
        initial = self._new_task(0)
        self._tasks.append(initial)
        self.bus.emit(
            TaskStarted(0, initial.task_id, 0, self.trace.records[0].inst.pc, None)
        )
        count = len(self.trace)
        while self._retire_ptr < count:
            self._cycle += 1
            if self._cycle > self.max_cycles:
                raise SimulationError(
                    "no forward progress after {} cycles (retired {}/{})".format(
                        self.max_cycles, self._retire_ptr, count
                    )
                )
            self._process_events()
            self._retire()
            self._drain_divert_queue()
            self._issue()
            self._fetch()
            self.stats.task_occupancy_sum += len(self._tasks)
        while self._tasks:
            # The tail task (and only it) is never popped by retire;
            # close out its lifetime so sinks see a balanced stream.
            task = self._tasks.popleft()
            self._emit_task_commit(task, count)
        self.stats.cycles = self._cycle
        self.stats.cache_stats = self.hierarchy.statistics()
        return self.stats

    # -- helpers ---------------------------------------------------------------

    def _warm_caches(self):
        """Replay the trace's footprint to model post-fast-forward state.

        The paper fast-forwards through each benchmark's initialization
        phase before measuring, so the measured region starts with warm
        caches.  The replay applies the trace's accesses once (without
        timing), leaving realistic LRU state: footprints larger than a
        cache level keep missing during measurement.
        """
        hierarchy = self.hierarchy
        l1i = hierarchy.l1i
        last_line = None
        for record in self.trace.records:
            line = l1i.line_address(record.inst.pc)
            if line != last_line:
                hierarchy.fetch_latency(record.inst.pc)
                last_line = line
            if record.mem_keys:
                hierarchy.data_latency(record.mem_keys[0] << 3)
        hierarchy.reset_statistics()

    def _new_task(self, start_index, spawn_point=None):
        task = Task(self._next_task_id, start_index, spawn_point)
        self._next_task_id += 1
        return task

    def _schedule(self, cycle, kind, index):
        self._events.setdefault(cycle, []).append((kind, index, self._gen[index]))

    @staticmethod
    def _origin_of(task):
        """The trigger PC of the spawn point that created ``task``."""
        point = task.spawn_point
        return point.trigger_pc if point is not None else None

    def _emit_task_commit(self, task, end_index):
        self.bus.emit(
            TaskCommitted(
                self._cycle,
                task.task_id,
                task.start_index,
                self.trace.records[task.start_index].inst.pc,
                self._origin_of(task),
                task.start_index,
                end_index,
            )
        )

    # -- pipeline stages ---------------------------------------------------------

    def _process_events(self):
        events = self._events.pop(self._cycle, None)
        if not events:
            return
        state = self._state
        gen = self._gen
        for kind, index, generation in events:
            if gen[index] != generation:
                continue
            if kind == _EV_READY:
                if state[index] == _READY:
                    heapq.heappush(self._ready_heap, index)
                continue
            # Completion.
            if state[index] != _EXEC:
                continue
            state[index] = _DONE
            self._resolve_waiting_branch(index)
            consumers = self._dependents.pop(index, None)
            if not consumers:
                continue
            for consumer, consumer_gen in consumers:
                if gen[consumer] != consumer_gen or state[consumer] != _WAIT:
                    continue
                self._wait_count[consumer] -= 1
                if self._wait_count[consumer] == 0:
                    state[consumer] = _READY
                    ready_at = max(self._cycle + 1, self._earliest[consumer])
                    if ready_at <= self._cycle:
                        heapq.heappush(self._ready_heap, consumer)
                    else:
                        self._schedule(ready_at, _EV_READY, consumer)

    def _resolve_waiting_branch(self, index):
        for task in self._tasks:
            if task.waiting_branch_index == index:
                resume = max(
                    self._cycle + 1,
                    self._fetch_cycle[index] + self.config.mispredict_penalty,
                )
                task.waiting_branch_index = None
                task.fetch_stall_until = resume
                return

    def _retire(self):
        state = self._state
        count = len(self.trace)
        retired = 0
        width = self.config.width
        tasks = self._tasks
        verbose = self.bus.verbose
        while retired < width and self._retire_ptr < count:
            index = self._retire_ptr
            if state[index] != _DONE:
                break
            state[index] = _RETIRED
            self._rob_occupancy -= 1
            self._retire_ptr = index + 1
            retired += 1
            head = tasks[0]
            head.in_flight -= 1
            if verbose:
                self.bus.emit(
                    InstructionCommitted(
                        self._cycle,
                        head.task_id,
                        index,
                        self.trace.records[index].inst.pc,
                        self._origin_of(head),
                    )
                )
            if head.end_index is not None and self._retire_ptr >= head.end_index:
                tasks.popleft()
                self._emit_task_commit(head, head.end_index)
        self.stats.retired_instructions += retired

    def _drain_divert_queue(self):
        fifo = self._divert_fifo
        if not fifo:
            return
        state = self._state
        gen = self._gen
        # Forward-progress guarantee: the globally oldest unretired
        # instruction may always leave the divert queue, even past
        # scheduler capacity (it will issue and retire immediately,
        # unclogging consumers that fill the scheduler).
        release_state = _WAIT if self.config.divert_release == "dispatch" else _DONE
        oldest = self._retire_ptr
        if state[oldest] == _DIVERT:
            producers = self._divert_producers[oldest]
            if all(state[p] >= _WAIT for p in producers):
                for position, (entry_index, entry_gen) in enumerate(fifo):
                    if entry_index == oldest and entry_gen == gen[oldest]:
                        del fifo[position]
                        break
                del self._divert_producers[oldest]
                self._divert_occupancy -= 1
                self._enter_scheduler(oldest)
        if not fifo:
            return
        moved = 0
        scanned = 0
        max_scan = 64
        # Non-head entries must not consume the scheduler share reserved
        # for the head task, or they starve it into deadlock.
        shared_cap = self.config.scheduler_entries - _HEAD_SCHED_RESERVE
        full_cap = self.config.scheduler_entries
        head = self._tasks[0] if self._tasks else None
        head_end = head.end_index if head is not None else None
        index_in_fifo = 0
        while index_in_fifo < len(fifo) and scanned < max_scan:
            entry_index, entry_gen = fifo[index_in_fifo]
            scanned += 1
            if gen[entry_index] != entry_gen or state[entry_index] != _DIVERT:
                # Squashed entry: lazily delete.
                del fifo[index_in_fifo]
                continue
            producers = self._divert_producers[entry_index]
            if any(state[p] < release_state for p in producers):
                index_in_fifo += 1
                continue
            owned_by_head = head is not None and (
                head_end is None or entry_index < head_end
            )
            cap = full_cap if owned_by_head else shared_cap
            if self._sched_occupancy >= cap:
                index_in_fifo += 1
                continue
            if not owned_by_head and (
                self._sched_used.get(self._owner[entry_index], 0)
                >= self.config.scheduler_per_task_quota
            ):
                index_in_fifo += 1
                continue
            del fifo[index_in_fifo]
            del self._divert_producers[entry_index]
            self._divert_occupancy -= 1
            self._enter_scheduler(entry_index)
            moved += 1
            if moved >= self.config.width:
                break

    def _enter_scheduler(self, index):
        """Move a (diverted or fresh) instruction into the scheduler."""
        record = self.trace.records[index]
        state = self._state
        pending = 0
        for producer in record.reg_deps:
            if producer >= 0 and state[producer] < _DONE:
                self._dependents.setdefault(producer, []).append(
                    (index, self._gen[index])
                )
                pending += 1
        mem_producer = record.mem_dep
        if (
            record.inst.is_load
            and mem_producer >= 0
            and index not in self._unsafe_mem
            and state[mem_producer] < _DONE
        ):
            self._dependents.setdefault(mem_producer, []).append(
                (index, self._gen[index])
            )
            pending += 1
        self._sched_occupancy += 1
        owner = self._owner[index]
        self._sched_used[owner] = self._sched_used.get(owner, 0) + 1
        self._wait_count[index] = pending
        if pending:
            state[index] = _WAIT
        else:
            state[index] = _READY
            ready_at = max(self._cycle + 1, self._earliest[index])
            self._schedule(ready_at, _EV_READY, index)

    def _issue(self):
        heap = self._ready_heap
        if not heap:
            return
        state = self._state
        issued = 0
        units = self.config.functional_units
        deferred = []
        while heap and issued < units:
            index = heapq.heappop(heap)
            if state[index] != _READY:
                continue
            if self._earliest[index] > self._cycle:
                deferred.append(index)
                continue
            record = self.trace.records[index]
            inst = record.inst
            if inst.is_load:
                unsafe_producer = self._unsafe_mem.get(index)
                if unsafe_producer is not None and state[unsafe_producer] < _DONE:
                    self._handle_violation(index, unsafe_producer)
                    # The violator (and the heap contents from younger
                    # tasks) were squashed; issue no more this cycle.
                    break
                latency = self.hierarchy.data_latency(record.mem_keys[0] << 3)
            elif inst.is_store:
                self.hierarchy.data_latency(record.mem_keys[0] << 3)
                latency = 1
            elif inst.latency_class == "mul":
                latency = self.config.mul_latency
            else:
                latency = 1
            state[index] = _EXEC
            self._sched_occupancy -= 1
            self._sched_used[self._owner[index]] -= 1
            self._schedule(self._cycle + latency, _EV_COMPLETE, index)
            issued += 1
        for index in deferred:
            heapq.heappush(heap, index)

    # -- violations and squashes -------------------------------------------------

    def _task_position_of_index(self, index):
        for position, task in enumerate(self._tasks):
            end = task.end_index
            if index >= task.start_index and (end is None or index < end):
                return position
        raise SimulationError(
            "trace index {} belongs to no active task".format(index)
        )

    def _handle_violation(self, load_index, store_index):
        records = self.trace.records
        store_pc = records[store_index].inst.pc
        load_pc = records[load_index].inst.pc
        self.store_sets.train_violation(store_pc, load_pc)
        position = self._task_position_of_index(load_index)
        violator = self._tasks[position]
        if violator.spawn_point is not None:
            self.spawn_unit.record_squash(violator.spawn_point.trigger_pc)
        self.bus.emit(
            DependenceViolation(
                self._cycle,
                violator.task_id,
                load_index,
                load_pc,
                self._origin_of(violator),
                store_index,
                store_pc,
            )
        )
        self._squash_from(position, cause="memory-dependence")

    def _squash_from(self, position, cause):
        """Squash tasks[position:] and rewind their fetch."""
        state = self._state
        gen = self._gen
        records = self.trace.records
        chain = list(self._tasks)[position:]
        chain_depth = len(chain)
        for task in chain:
            squashed = 0
            for index in range(task.start_index, task.fetch_index):
                current = state[index]
                if current == _FREE:
                    continue
                if current == _DIVERT:
                    self._divert_occupancy -= 1
                    self._divert_producers.pop(index, None)
                elif current in (_WAIT, _READY):
                    self._sched_occupancy -= 1
                    self._sched_used[self._owner[index]] -= 1
                state[index] = _FREE
                gen[index] += 1
                self._rob_occupancy -= 1
                self._dependents.pop(index, None)
                self._unsafe_mem.pop(index, None)
                squashed += 1
            task.reset_for_squash(self._cycle, self.config.squash_restart_penalty)
            self.bus.emit(
                TaskSquashed(
                    self._cycle,
                    task.task_id,
                    task.start_index,
                    records[task.start_index].inst.pc,
                    self._origin_of(task),
                    cause,
                    chain_depth,
                    squashed,
                )
            )

    # -- fetch --------------------------------------------------------------------

    def _fetch(self):
        tasks = self._tasks
        cycle = self._cycle
        candidates = []
        for position, task in enumerate(tasks):
            if task.can_fetch(cycle):
                candidates.append((task.task_id, task.in_flight, position))
        if not candidates:
            return
        selected = select_fetch_tasks(
            candidates, self.config.fetch_tasks_per_cycle, self.config.head_bias
        )
        by_id = {task.task_id: task for task in tasks}
        # Each selected task owns an equal share of the fetch width (two
        # 4-wide fetch streams on the 8-wide PolyFlow, one 8-wide stream
        # on the superscalar): fetch units cannot recombine dynamically.
        share = self.config.width // max(len(selected), 1)
        for task_id in selected:
            self._fetch_from_task(by_id[task_id], share)

    def _fetch_from_task(self, task, budget):
        records = self.trace.records
        state = self._state
        config = self.config
        cycle = self._cycle
        bus = self.bus
        verbose = bus.verbose
        task_origin = self._origin_of(task)
        is_head = task is self._tasks[0]
        rob_cap = config.rob_entries
        sched_cap = config.scheduler_entries
        divert_cap = config.divert_queue_entries
        if not is_head:
            rob_cap -= _HEAD_ROB_RESERVE
            sched_cap -= _HEAD_SCHED_RESERVE
        count = len(records)

        while budget > 0:
            index = task.fetch_index
            if index >= count:
                break
            if task.end_index is not None and index >= task.end_index:
                break
            if self._rob_occupancy >= rob_cap:
                break
            record = records[index]
            inst = record.inst
            pc = inst.pc

            # Instruction cache: one access per new line.
            line = self.hierarchy.l1i.line_address(pc)
            if line != task.last_fetch_line:
                latency = self.hierarchy.fetch_latency(pc)
                task.last_fetch_line = line
                if latency > 1:
                    task.fetch_stall_until = cycle + latency
                    self.stats.icache_stall_cycles += latency - 1
                    break

            # Decide dispatch target and check its capacity.
            divert_producers, unsafe_producer = self._inter_task_producers(
                record, task
            )
            if divert_producers is not None:
                if self._divert_occupancy >= divert_cap:
                    break
            else:
                if self._sched_occupancy >= sched_cap:
                    break
                if (
                    not is_head
                    and self._sched_used.get(task.task_id, 0)
                    >= config.scheduler_per_task_quota
                ):
                    break

            # Consume the instruction.
            task.fetch_index = index + 1
            task.in_flight += 1
            self._rob_occupancy += 1
            self._gen[index] += 1
            self._owner[index] = task.task_id
            self._fetch_cycle[index] = cycle
            self._earliest[index] = cycle + config.frontend_latency
            self.stats.fetched_instructions += 1
            if unsafe_producer is not None:
                self._unsafe_mem[index] = unsafe_producer
            budget -= 1
            if verbose:
                bus.emit(
                    InstructionFetched(cycle, task.task_id, index, pc, task_origin)
                )

            if divert_producers is not None:
                state[index] = _DIVERT
                self._divert_occupancy += 1
                self._divert_producers[index] = divert_producers
                self._divert_fifo.append((index, self._gen[index]))
                self.stats.diverted_instructions += 1
            else:
                self._enter_scheduler(index)
            if task.spawn_point is not None:
                self.spawn_unit.record_task_instruction(
                    task.spawn_point.trigger_pc, divert_producers is not None
                )

            # Spawning: the tail task extends the task list; with the
            # nested-spawns extension (the paper's future work), a
            # non-tail task may additionally split its own segment to
            # spawn past an inner branch.
            if len(self._tasks) < config.max_tasks:
                if task.end_index is None and task is self._tasks[-1]:
                    target = self.spawn_unit.spawn_target(index, pc)
                    if verbose:
                        self._emit_spawn_decision(task, index, pc, target)
                    if target >= 0:
                        self._spawn(task, pc, target, index)
                elif config.nested_spawns and task.end_index is not None:
                    target = self.spawn_unit.spawn_target(index, pc)
                    if 0 <= target < task.end_index:
                        if verbose:
                            self._emit_spawn_decision(task, index, pc, target)
                        self._spawn_nested(task, pc, target, index)
                    elif verbose:
                        self._emit_spawn_decision(
                            task, index, pc, target,
                            rejected="outside-segment" if target >= 0 else None,
                        )
                elif verbose:
                    target = self.spawn_unit.spawn_target(index, pc)
                    if target >= 0:
                        self._emit_spawn_decision(
                            task, index, pc, target, rejected="not-tail"
                        )
            elif verbose:
                target = self.spawn_unit.spawn_target(index, pc)
                if target >= 0:
                    self._emit_spawn_decision(
                        task, index, pc, target, rejected="task-limit"
                    )

            # Control flow effects on fetch.
            if inst.is_conditional_branch:
                self.stats.conditional_branches += 1
                prediction = self.gshare.predict_and_update(pc, record.taken)
                if prediction != record.taken:
                    self.stats.branch_mispredicts += 1
                    task.waiting_branch_index = index
                    break
                if record.taken:
                    break  # one taken branch per task per cycle
            elif inst.is_call:
                task.ras.push(inst.fall_through_pc())
                if inst.is_indirect_jump:
                    if not self.indirect_predictor.predict_and_update(
                        pc, record.next_pc
                    ):
                        self.stats.indirect_mispredicts += 1
                        task.waiting_branch_index = index
                break
            elif inst.is_return_like:
                if inst.rs == _RA:
                    predicted = task.ras.pop()
                    if predicted != record.next_pc:
                        self.stats.return_mispredicts += 1
                        task.waiting_branch_index = index
                else:
                    if not self.indirect_predictor.predict_and_update(
                        pc, record.next_pc
                    ):
                        self.stats.indirect_mispredicts += 1
                        task.waiting_branch_index = index
                break
            elif inst.is_direct_jump:
                break  # taken transfer; direct targets predict perfectly
        return budget

    def _inter_task_producers(self, record, task):
        """Producers that force this instruction into the divert queue.

        Returns ``(producers, unsafe_producer)``.  ``producers`` is a
        list of trace indices the instruction must divert on, or None
        when it may dispatch straight into the scheduler.  Register
        dependences on older tasks always divert (hint-predicted);
        memory dependences divert only when the store-set predictor has
        learned the pair — otherwise ``unsafe_producer`` names the
        older-task store the load will speculate past (risking a
        violation squash).
        """
        start = task.start_index
        state = self._state
        producers = None
        unsafe_producer = None
        for producer in record.reg_deps:
            if producer >= 0 and producer < start and state[producer] < _DONE:
                if producers is None:
                    producers = [producer]
                else:
                    producers.append(producer)
        if record.inst.is_load:
            mem_producer = record.mem_dep
            if mem_producer >= 0 and mem_producer < start:
                if state[mem_producer] < _DONE:
                    store_pc = self.trace.records[mem_producer].inst.pc
                    if self.store_sets.predicts_dependence(store_pc, record.inst.pc):
                        if producers is None:
                            producers = [mem_producer]
                        else:
                            producers.append(mem_producer)
                    else:
                        unsafe_producer = mem_producer
        return producers, unsafe_producer

    def _emit_spawn_decision(self, task, index, pc, target, rejected=None):
        """Verbose-only bookkeeping of one spawn-unit consultation.

        Emits the hint hit/miss, the spawn request when a target was
        resolved, and — when the machine could not act on it — the
        rejection with its reason.  (Spawn *acceptance* is emitted by
        :meth:`_spawn` / :meth:`_spawn_nested` on every run.)
        """
        hint = self.spawn_unit.hint_for(pc)
        if hint is None and target < 0:
            return
        origin = self._origin_of(task)
        cycle = self._cycle
        task_id = task.task_id
        if hint is not None:
            self.bus.emit(HintLookup(cycle, task_id, index, pc, origin, target >= 0))
        if target >= 0:
            self.bus.emit(SpawnRequested(cycle, task_id, index, pc, origin, target))
            if rejected is not None:
                self.bus.emit(
                    SpawnRejected(cycle, task_id, index, pc, origin, target, rejected)
                )
        elif hint is not None:
            self.bus.emit(
                SpawnRejected(cycle, task_id, index, pc, origin, -1, "no-target")
            )

    def _emit_spawn_accepted(self, spawner, trigger_index, trigger_pc, new_task, nested):
        spawn_point = new_task.spawn_point
        self.bus.emit(
            SpawnAccepted(
                self._cycle,
                spawner.task_id,
                trigger_index,
                trigger_pc,
                self._origin_of(spawner),
                new_task.start_index,
                new_task.task_id,
                spawn_point.category if spawn_point is not None else None,
                nested,
            )
        )
        self.bus.emit(
            TaskStarted(
                self._cycle,
                new_task.task_id,
                new_task.start_index,
                self.trace.records[new_task.start_index].inst.pc,
                trigger_pc,
            )
        )

    def _spawn_nested(self, task, trigger_pc, target_index, trigger_index):
        """Split a bounded task's segment at ``target_index``.

        The new task takes over the split-off suffix of the spawner's
        segment, entering the task list right after it (trace order is
        preserved).  This is the future-work extension that lets
        PolyFlow spawn past the branch of an inner hammock even though
        an outer spawn already bounded the task.
        """
        hint = self.spawn_unit.hint_for(trigger_pc)
        spawn_point = hint.spawn_point if hint is not None else None
        new_task = self._new_task(target_index, spawn_point)
        new_task.end_index = task.end_index
        new_task.fetch_stall_until = self._cycle + 1
        new_task.adopt_spawner_ras(task.ras)
        task.end_index = target_index
        # Insert after the spawner to keep the deque sorted by segment.
        position = self._task_position_of_index(task.start_index)
        self._tasks.insert(position + 1, new_task)
        self.spawn_unit.record_spawn(trigger_pc)
        self._emit_spawn_accepted(task, trigger_index, trigger_pc, new_task, True)

    def _spawn(self, tail, trigger_pc, target_index, trigger_index):
        hint = self.spawn_unit.hint_for(trigger_pc)
        spawn_point = hint.spawn_point if hint is not None else None
        tail.end_index = target_index
        new_task = self._new_task(target_index, spawn_point)
        # The spawned task starts fetching the cycle after the spawn,
        # inheriting the spawner's call context (return address stack).
        new_task.fetch_stall_until = self._cycle + 1
        new_task.adopt_spawner_ras(tail.ras)
        self._tasks.append(new_task)
        self.spawn_unit.record_spawn(trigger_pc)
        self._emit_spawn_accepted(tail, trigger_index, trigger_pc, new_task, False)


def simulate(trace, config=PAPER_CONFIG, hint_table=None, max_cycles=None, bus=None):
    """Run the PolyFlow model over ``trace`` and return its stats."""
    return PolyFlowCore(trace, config, hint_table, max_cycles, bus).run()


def simulate_superscalar(trace, base_config=PAPER_CONFIG, max_cycles=None):
    """Run the superscalar baseline (same resources, one task)."""
    config = superscalar_config(base_config)
    return PolyFlowCore(trace, config, HintTable(), max_cycles).run()
