"""The PolyFlow cycle-level timing model.

A trace-driven model of the machine in the paper's Figure 7/8: a
simultaneously multithreaded core running up to 8 tasks, with a Task
Spawn Unit, a shared reorder buffer and scheduler, a divert queue for
synchronizing inter-task dependences, and the Figure 8 memory system.

Model summary (see DESIGN.md section 6 for the full rationale):

* Tasks are contiguous segments of the committed trace.  A spawn at
  trace index *i* targeting PC *p* starts a new task at the next
  dynamic instance of *p* — the control-equivalence property.
* Only the tail (youngest) task spawns, as in the paper.
* A branch mispredict stalls only the fetch of its own task until the
  branch resolves (minimum penalty applies); other tasks keep fetching
  — this is how control-equivalent tasks tolerate mispredictions.
* Inter-task register dependences always synchronize through the divert
  queue (the compiler-generated hint information covers them).
  Inter-task memory dependences are learned by a store-set predictor;
  an unlearned conflict squashes the violating task and all younger
  tasks, then trains the predictor.
* Wrong-path fetch is modelled as refill bubbles, not as executed
  wrong-path instructions.

The head (oldest) task gets small reserved shares of the ROB and
scheduler so that it can always make forward progress (younger tasks
can never starve the non-speculative task into deadlock).

The per-cycle loops run on the flat pre-decoded arrays of
:meth:`~repro.sim.trace.Trace.decoded` (see :mod:`repro.sim.predecode`)
rather than the trace's record/instruction objects: fetch, dependence
checks, issue and commit index parallel lists of plain ints, which is
what makes the kernel fast in pure Python.  The decoded view is a pure
function of the trace, so behaviour is unchanged — the golden-trace
suite pins the event streams byte for byte.
"""

import heapq
from collections import deque

from repro.errors import SimulationError
from repro.frontend.branch_predictor import GsharePredictor, IndirectTargetPredictor
from repro.frontend.icount import select_fetch_tasks
from repro.memory.hierarchy import CacheHierarchy
from repro.obs.bus import EventBus
from repro.obs.events import (
    DependenceViolation,
    HintLookup,
    InstructionCommitted,
    InstructionFetched,
    SpawnAccepted,
    SpawnRejected,
    SpawnRequested,
    TaskCommitted,
    TaskSquashed,
    TaskStarted,
)
from repro.polyflow.config import PAPER_CONFIG, superscalar_config
from repro.polyflow.dependences import StoreSetPredictor
from repro.polyflow.spawn_unit import SpawnUnit
from repro.polyflow.stats import SimStats
from repro.polyflow.task import Task
from repro.polyflow.event_kernel import (
    event_kernel_steps,
    kernel_enabled_default,
    run_event_kernel,
)
from repro.sim.blocks import block_table_for, engine_enabled_default
from repro.sim.predecode import (
    KIND_CALL_DIRECT,
    KIND_CALL_INDIRECT,
    KIND_COND_BRANCH,
    KIND_RETURN,
    KIND_SWITCH,
    LAT_LOAD,
    LAT_MUL,
    LAT_STORE,
)
from repro.spawn.hints import HintTable

# Instruction states.
_FREE = 0
_DIVERT = 1
_WAIT = 2
_READY = 3
_EXEC = 4
_DONE = 5
_RETIRED = 6

# Event kinds.
_EV_COMPLETE = 0
_EV_READY = 1
# Batched ready: ``(kind, start, end)`` covers a whole fetched run with
# one bucket entry.  Carries no generation — positions that left _READY
# are filtered by the state check, and a squashed-then-refetched
# position pushed early is deferred by the issue stage's earliest-cycle
# guard until its true ready cycle.
_EV_READY_RUN = 2

#: ROB entries only the head task may use.
_HEAD_ROB_RESERVE = 32
#: Scheduler entries only the head task may use.
_HEAD_SCHED_RESERVE = 8

#: The pipeline-stage methods that make up the staged reference engine.
#: A subclass overriding any of them (tests use this to probe per-cycle
#: invariants) opts the instance out of the fused fast loop.
_STAGE_HOOKS = (
    "_process_events",
    "_resolve_waiting_branch",
    "_retire",
    "_drain_divert_queue",
    "_enter_scheduler",
    "_issue",
    "_fetch",
    "_fetch_from_task",
    "_schedule",
)


class PolyFlowCore:
    """One simulation run of the PolyFlow core over a trace."""

    def __init__(
        self,
        trace,
        config=PAPER_CONFIG,
        hint_table=None,
        max_cycles=None,
        bus=None,
        block_engine=None,
        event_kernel=None,
    ):
        self.trace = trace
        self.config = config
        # Block-at-a-time engine toggle (see repro.sim.blocks).  Not a
        # MachineConfig field: the engine is observably identical to the
        # per-instruction path, so it must not move config_fingerprint.
        self.block_engine = (
            engine_enabled_default() if block_engine is None else bool(block_engine)
        )
        # Event-calendar kernel toggle (see repro.polyflow.event_kernel;
        # same contract as block_engine: observably identical, so never
        # part of config_fingerprint).  run() additionally requires the
        # block tables and a non-verbose bus before selecting it.
        self.event_kernel = (
            kernel_enabled_default() if event_kernel is None else bool(event_kernel)
        )
        self.hint_table = hint_table if hint_table is not None else HintTable()
        self.stats = SimStats()
        #: The event bus.  Task-lifecycle events always flow (SimStats
        #: consumes them); per-instruction events are only constructed
        #: when a verbose sink is attached (``bus.verbose``).
        self.bus = bus if bus is not None else EventBus()
        self.bus.attach(self.stats, verbose=False)
        self.hierarchy = CacheHierarchy()
        self.gshare = GsharePredictor(config.gshare_counters, config.gshare_history_bits)
        self.indirect_predictor = IndirectTargetPredictor()
        self.store_sets = StoreSetPredictor()
        self.spawn_unit = SpawnUnit(trace, self.hint_table, config)
        count = len(trace)
        self.max_cycles = max_cycles if max_cycles is not None else 400 * count + 10_000
        # Flat pre-decoded views of the trace (shared across runs of the
        # same trace); every per-cycle loop below indexes these instead
        # of walking record.inst attribute chains.
        decoded = trace.decoded()
        self._pcs = decoded.pc
        self._kinds = decoded.kind
        self._lats = decoded.lat
        self._takens = decoded.taken
        self._next_pcs = decoded.next_pc
        self._fall_throughs = decoded.fall_through
        self._mem_addrs = decoded.mem_addr
        self._mem_deps = decoded.mem_dep
        self._dep0 = decoded.dep0
        self._dep1 = decoded.dep1
        self._lines = decoded.icache_lines(self.hierarchy.l1i.offset_bits)
        #: Set when the warm-cache replay already ran (or its result was
        #: installed from a shared snapshot by the grid-batch runner).
        self._warmed = False
        # Per-trace-index dynamic state.
        self._state = bytearray(count)
        self._gen = [0] * count
        self._wait_count = [0] * count
        self._earliest = [0] * count
        self._fetch_cycle = [0] * count
        self._owner = [0] * count
        self._sched_used = {}
        self._dependents = {}
        self._divert_producers = {}
        self._unsafe_mem = {}
        # Machine structures.
        self._tasks = deque()
        self._events = {}
        self._ready_heap = []
        self._divert_fifo = deque()
        self._rob_occupancy = 0
        self._sched_occupancy = 0
        self._divert_occupancy = 0
        self._retire_ptr = 0
        self._next_task_id = 0
        self._cycle = 0
        # Block engine tables.  Compiled eagerly (construction is off
        # the benchmarked path), and recompiled by run() if the spawn
        # unit was swapped after construction — the run_end overlay
        # depends on its resolved targets.
        self._reg_consumers = None
        self._batch_deps = None
        self._plain_end = None
        self._run_end = None
        self._compiled_for = None
        if self.block_engine and not config.nested_spawns:
            self._compile_blocks()

    # -- public API ------------------------------------------------------------

    def run(self):
        """Simulate the whole trace; returns the :class:`SimStats`.

        Three observably identical engines back this method: the staged
        reference loop (:meth:`_run_staged`, one method per stage), the
        fused fast loop (:meth:`_run_fast`, all five pipeline stages
        inlined over the flat decoded arrays), and the event-calendar
        kernel (:func:`~repro.polyflow.event_kernel.run_event_kernel`,
        which additionally jumps the clock over provably frozen
        cycles).  Instances whose class overrides a stage hook — or
        whose spawn unit overrides
        :meth:`~repro.polyflow.spawn_unit.SpawnUnit.spawn_target` —
        run staged; the event kernel is selected only with the block
        tables compiled, ``nested_spawns`` off and no verbose sink
        attached (verbose emission needs every cycle visited);
        everything else takes the fast path.  The engine-equivalence
        tests pin that all three produce identical event streams and
        statistics.
        """
        for _ in self.run_incremental(stride=0):
            pass  # pragma: no cover - stride 0 never yields
        return self.stats

    def prewarm(self):
        """Run the warm-cache replay now (idempotent); returns the
        post-warm hierarchy LRU snapshot.

        The grid-batch runner warms the first cell of each trace this
        way and installs the snapshot into siblings via
        :meth:`install_warm_state`, so the O(trace) replay runs once
        per trace instead of once per cell.  State after ``prewarm`` is
        byte-identical to what ``run`` would have produced on its own.
        """
        if self.config.warm_caches and not self._warmed:
            self._warm_caches()
            self._warmed = True
        return self.hierarchy.snapshot_sets()

    def install_warm_state(self, snapshot):
        """Adopt a sibling core's post-warm hierarchy state (see
        :meth:`prewarm`); ``run`` then skips its own replay."""
        if self.config.warm_caches and not self._warmed:
            self.hierarchy.restore_sets(snapshot)
            self._warmed = True

    def run_incremental(self, stride=4096):
        """Generator form of :meth:`run` for the grid-batch runner.

        Advances the simulation and yields the retire pointer every
        ``stride`` event-calendar steps, so a driver can advance many
        independent cells in lockstep (round-robin ``next()``).  Only
        the event-calendar kernel is resumable; runs that select the
        staged or fused engines (or an empty trace) complete during the
        first ``next()`` without intermediate yields.  A ``stride`` of
        0 (or ``None``) never yields — :meth:`run` drains exactly that.
        Statistics and event streams are identical for every stride;
        after exhaustion ``self.stats`` is final.
        """
        if not len(self.trace):
            return
        if self.config.warm_caches and not self._warmed:
            self._warm_caches()
            self._warmed = True
        initial = self._new_task(0)
        self._tasks.append(initial)
        self.bus.emit(TaskStarted(0, initial.task_id, 0, self._pcs[0], None))
        if self._stage_hooks_overridden():
            self._run_staged()
        else:
            if (
                self.block_engine
                and not self.config.nested_spawns
                and self._compiled_for is not self.spawn_unit
            ):
                self._compile_blocks()
            if (
                self.event_kernel
                and self._run_end is not None
                and not self.config.nested_spawns
                and not self.bus.verbose
            ):
                # Next-event calendar: exact for non-verbose runs on
                # the compiled block tables.  Verbose buses (and the
                # stage-hook/nested cases above) keep a cycle-exact
                # engine — the same auto-fallback as the staged split.
                if stride and stride > 0:
                    yield from event_kernel_steps(self, stride)
                else:
                    run_event_kernel(self)
            else:
                self._run_fast()
        count = len(self.trace)
        while self._tasks:
            # The tail task (and only it) is never popped by retire;
            # close out its lifetime so sinks see a balanced stream.
            task = self._tasks.popleft()
            self._emit_task_commit(task, count)
        self.stats.cycles = self._cycle
        self.stats.cache_stats = self.hierarchy.statistics()

    def _compile_blocks(self):
        """Bind the block engine's tables for the fast loop.

        The per-trace :class:`~repro.sim.blocks.BlockTable` is memoized
        across cores; the ``run_end`` overlay additionally cuts every
        straight-line run at this policy's spawn-candidate indices so
        the per-instruction path (and only it) consults the spawn unit
        there.  Suppression is ignored on purpose — cutting at a
        suppressed trigger is merely conservative.
        """
        table = block_table_for(self.trace)
        self._reg_consumers = table.reg_consumers
        self._batch_deps = table.batch_deps
        self._plain_end = table.plain_end
        batch_end = table.batch_end
        spawn_unit = self.spawn_unit
        candidates = spawn_unit.spawn_candidate_indices()
        if not candidates:
            # No spawn candidates (empty hint table): the shared block
            # table needs no cuts, so alias it outright.
            self._run_end = batch_end
        else:
            # Patch only around the candidates: each cut truncates its
            # own straight-line run, walking back at most one run.
            run_end = batch_end[:]
            for cut in candidates:
                run_end[cut] = cut
                index = cut - 1
                while index >= 0 and run_end[index] > cut:
                    run_end[index] = cut
                    index -= 1
            self._run_end = run_end
        self._compiled_for = spawn_unit

    def _stage_hooks_overridden(self):
        """Whether this instance must run the staged reference engine."""
        unit = type(self.spawn_unit)
        if unit.spawn_target is not SpawnUnit.spawn_target:
            return True
        cls = type(self)
        if cls is PolyFlowCore:
            return False
        for name in _STAGE_HOOKS:
            if getattr(cls, name) is not getattr(PolyFlowCore, name):
                return True
        return False

    def _run_staged(self):
        """The staged reference engine: one method call per stage.

        This is the readable specification of the cycle loop; the fast
        engine (:meth:`_run_fast`) is a fused transcription of exactly
        these stages.  Keep the two in lockstep — the equivalence suite
        compares their event streams byte for byte.
        """
        count = len(self.trace)
        while self._retire_ptr < count:
            self._cycle += 1
            if self._cycle > self.max_cycles:
                raise SimulationError(
                    "no forward progress after {} cycles (retired {}/{})".format(
                        self.max_cycles, self._retire_ptr, count
                    )
                )
            self._process_events()
            self._retire()
            self._drain_divert_queue()
            self._issue()
            self._fetch()
            self.stats.task_occupancy_sum += len(self._tasks)

    def _run_fast(self):
        """The fused fast loop: all pipeline stages inlined.

        Every hot structure is bound to a local once per run and the
        per-cycle stage bodies run back to back without method
        dispatch; rare paths (violations, spawns, verbose emission)
        call back into the shared helper methods after syncing the
        mutable scalars they read.  Observable behaviour must match
        :meth:`_run_staged` exactly.
        """
        config = self.config
        bus = self.bus
        stats = self.stats
        state = self._state
        gen = self._gen
        wait_count = self._wait_count
        earliest = self._earliest
        fetch_cycle = self._fetch_cycle
        owner = self._owner
        sched_used = self._sched_used
        dependents = self._dependents
        divert_producer_map = self._divert_producers
        unsafe_mem = self._unsafe_mem
        tasks = self._tasks
        events = self._events
        heap = self._ready_heap
        fifo = self._divert_fifo
        pcs = self._pcs
        kinds = self._kinds
        lats = self._lats
        takens = self._takens
        next_pcs = self._next_pcs
        fall_throughs = self._fall_throughs
        lines = self._lines
        mem_addrs = self._mem_addrs
        mem_deps = self._mem_deps
        dep0 = self._dep0
        dep1 = self._dep1
        heappush = heapq.heappush
        heappop = heapq.heappop
        fetch_latency = self.hierarchy.fetch_latency
        data_latency = self.hierarchy.data_latency
        gshare_update = self.gshare.predict_and_update
        indirect_update = self.indirect_predictor.predict_and_update
        predicts_dependence = self.store_sets.predicts_dependence
        spawn_unit = self.spawn_unit
        spawn_target_of = spawn_unit.spawn_target
        record_task_instructions = spawn_unit.record_task_instructions
        spawn_targets = spawn_unit.resolved_targets()
        suppressed = spawn_unit.suppressed_triggers_live()

        width = config.width
        units = config.functional_units
        mul_latency = config.mul_latency
        mispredict_penalty = config.mispredict_penalty
        frontend_latency = config.frontend_latency
        quota = config.scheduler_per_task_quota
        max_tasks = config.max_tasks
        nested = config.nested_spawns
        fetch_ports = config.fetch_tasks_per_cycle
        rob_entries = config.rob_entries
        sched_entries = config.scheduler_entries
        divert_entries = config.divert_queue_entries
        shared_rob_cap = rob_entries - _HEAD_ROB_RESERVE
        shared_sched_cap = sched_entries - _HEAD_SCHED_RESERVE
        release_state = _WAIT if config.divert_release == "dispatch" else _DONE

        count = len(pcs)

        # Block engine tables, compiled in __init__ (see there for the
        # overlay rationale).
        run_end = self._run_end
        reg_consumers = self._reg_consumers
        batch_deps = self._batch_deps
        use_blocks = run_end is not None
        # Fetch-arbitration wake: no task can become fetch-eligible
        # before this cycle (computed whenever arbitration comes up
        # empty; reset by branch resolution and violations).
        fetch_wake = 0
        # Divert-queue dirty flag: the drain scan only runs on cycles
        # after something that could unblock or add an entry (fetch,
        # issue, retire, violation, a completion when release waits for
        # _DONE, or drain progress itself).
        fifo_dirty = True
        completions_dirty = release_state == _DONE
        # Tasks stalled on an unresolved transfer, keyed by the trace
        # index they wait on (the staged engine scans the task deque
        # instead; at most one live waiter exists per index, and stale
        # entries are filtered by the waiting_branch_index re-check).
        waiting_branches = {}
        # Byte runs for the batched retire's slice compare/assign.
        done_runs = [bytes([_DONE]) * size for size in range(width + 1)]
        retired_runs = [bytes([_RETIRED]) * size for size in range(width + 1)]
        max_cycles = self.max_cycles
        cycle = self._cycle
        retire_ptr = self._retire_ptr
        rob_occupancy = self._rob_occupancy
        sched_occupancy = self._sched_occupancy
        divert_occupancy = self._divert_occupancy

        # Stage counters flushed to SimStats when the loop exits.
        retired_total = 0
        fetched_total = 0
        diverted_total = 0
        occupancy_sum = 0
        icache_stalls = 0
        cond_branches = 0
        branch_misses = 0
        indirect_misses = 0
        return_misses = 0

        def enter_scheduler(index):
            # Inlined transcription of _enter_scheduler; mirrors the
            # rs-then-rt (duplicates included) producer registration.
            # With the block engine, register producers are woken
            # through the static reg_consumers adjacency instead of the
            # dependents dict (the dict keeps memory dependences, whose
            # producers the store-set predictor resolves at runtime).
            nonlocal sched_occupancy
            generation = gen[index]
            pending = 0
            producer = dep0[index]
            if producer >= 0 and state[producer] < _DONE:
                if not use_blocks:
                    bucket = dependents.get(producer)
                    if bucket is None:
                        dependents[producer] = [(index, generation)]
                    else:
                        bucket.append((index, generation))
                pending += 1
            producer = dep1[index]
            if producer >= 0 and state[producer] < _DONE:
                if not use_blocks:
                    bucket = dependents.get(producer)
                    if bucket is None:
                        dependents[producer] = [(index, generation)]
                    else:
                        bucket.append((index, generation))
                pending += 1
            if lats[index] == LAT_LOAD:
                producer = mem_deps[index]
                if (
                    producer >= 0
                    and index not in unsafe_mem
                    and state[producer] < _DONE
                ):
                    bucket = dependents.get(producer)
                    if bucket is None:
                        dependents[producer] = [(index, generation)]
                    else:
                        bucket.append((index, generation))
                    pending += 1
            sched_occupancy += 1
            task_owner = owner[index]
            sched_used[task_owner] = sched_used.get(task_owner, 0) + 1
            wait_count[index] = pending
            if pending:
                state[index] = _WAIT
            else:
                state[index] = _READY
                ready_at = earliest[index]
                if ready_at <= cycle:
                    ready_at = cycle + 1
                entry = (_EV_READY, index, generation)
                bucket = events.get(ready_at)
                if bucket is None:
                    events[ready_at] = [entry]
                else:
                    bucket.append(entry)

        try:
            while retire_ptr < count:
                cycle += 1
                self._cycle = cycle
                if cycle > max_cycles:
                    raise SimulationError(
                        "no forward progress after {} cycles (retired {}/{})".format(
                            max_cycles, retire_ptr, count
                        )
                    )
                verbose = bus.verbose
                # Verbose cycles emit per-instruction fetch events, so
                # the batched fetch stands down for the cycle.
                batch_ok = use_blocks and not verbose
                # Divert/issue/violation activity this cycle; consulted
                # (with the fetch watermark) by the quiet-cycle skip.
                active = False
                fetch_mark = fetched_total

                # ---- process events ------------------------------------
                bucket = events.pop(cycle, None)
                if bucket is not None:
                    if completions_dirty:
                        # A completion may unblock a diverted consumer
                        # when releases wait for _DONE producers.
                        fifo_dirty = True
                    for kind, index, generation in bucket:
                        if kind:
                            if kind == _EV_READY:
                                if (
                                    gen[index] == generation
                                    and state[index] == _READY
                                ):
                                    heappush(heap, index)
                            else:
                                # _EV_READY_RUN: (start, end) of a
                                # batched run; see the constant's note
                                # for why no generation is needed.
                                for run_index in range(index, generation):
                                    if state[run_index] == _READY:
                                        heappush(heap, run_index)
                            continue
                        # Completion.
                        if gen[index] != generation:
                            continue
                        if state[index] != _EXEC:
                            continue
                        state[index] = _DONE
                        if use_blocks:
                            # O(1) waiter lookup; squashes leave stale
                            # entries, hence the re-check.  Register
                            # consumers wake through the static
                            # adjacency: a consumer sitting in _WAIT
                            # has counted this producer exactly once
                            # per dependence slot (a squash of the
                            # producer always squashes the consumer,
                            # so no consumer outlives its count).
                            if waiting_branches:
                                waiter = waiting_branches.pop(index, None)
                                if (
                                    waiter is not None
                                    and waiter.waiting_branch_index == index
                                ):
                                    resume = fetch_cycle[index] + mispredict_penalty
                                    if resume < cycle + 1:
                                        resume = cycle + 1
                                    waiter.waiting_branch_index = None
                                    waiter.fetch_stall_until = resume
                                    fetch_wake = 0
                            for consumer in reg_consumers[index]:
                                if state[consumer] != _WAIT:
                                    continue
                                pending = wait_count[consumer] - 1
                                wait_count[consumer] = pending
                                if pending == 0:
                                    state[consumer] = _READY
                                    ready_at = earliest[consumer]
                                    if ready_at <= cycle:
                                        ready_at = cycle + 1
                                    entry = (_EV_READY, consumer, gen[consumer])
                                    ready_bucket = events.get(ready_at)
                                    if ready_bucket is None:
                                        events[ready_at] = [entry]
                                    else:
                                        ready_bucket.append(entry)
                            # Only memory dependences live in the dict
                            # here, and their producers are stores.
                            if lats[index] != LAT_STORE:
                                continue
                        else:
                            for task in tasks:
                                if task.waiting_branch_index == index:
                                    resume = fetch_cycle[index] + mispredict_penalty
                                    if resume < cycle + 1:
                                        resume = cycle + 1
                                    task.waiting_branch_index = None
                                    task.fetch_stall_until = resume
                                    break
                        consumers = dependents.pop(index, None)
                        if not consumers:
                            continue
                        for consumer, consumer_gen in consumers:
                            if (
                                gen[consumer] != consumer_gen
                                or state[consumer] != _WAIT
                            ):
                                continue
                            pending = wait_count[consumer] - 1
                            wait_count[consumer] = pending
                            if pending == 0:
                                state[consumer] = _READY
                                ready_at = earliest[consumer]
                                if ready_at <= cycle:
                                    ready_at = cycle + 1
                                entry = (_EV_READY, consumer, consumer_gen)
                                ready_bucket = events.get(ready_at)
                                if ready_bucket is None:
                                    events[ready_at] = [entry]
                                else:
                                    ready_bucket.append(entry)

                # ---- retire --------------------------------------------
                if state[retire_ptr] == _DONE:
                    if verbose or not use_blocks:
                        retired = 0
                        while retired < width and retire_ptr < count:
                            index = retire_ptr
                            if state[index] != _DONE:
                                break
                            state[index] = _RETIRED
                            rob_occupancy -= 1
                            retire_ptr = index + 1
                            retired += 1
                            head = tasks[0]
                            head.in_flight -= 1
                            if verbose:
                                point = head.spawn_point
                                bus.emit(
                                    InstructionCommitted(
                                        cycle,
                                        head.task_id,
                                        index,
                                        pcs[index],
                                        point.trigger_pc if point is not None else None,
                                    )
                                )
                            head_end = head.end_index
                            if head_end is not None and retire_ptr >= head_end:
                                tasks.popleft()
                                self._emit_task_commit(head, head_end)
                        retired_total += retired
                        if retired:
                            fifo_dirty = True
                    else:
                        # Batched retire: commit whole _DONE byte runs
                        # with slice compare/assign instead of walking
                        # the window one state at a time.
                        retired = 0
                        while retired < width and retire_ptr < count:
                            head = tasks[0]
                            head_end = head.end_index
                            limit = retire_ptr + width - retired
                            if limit > count:
                                limit = count
                            if head_end is not None and head_end < limit:
                                limit = head_end
                            span = limit - retire_ptr
                            probe = state[retire_ptr:limit]
                            if probe == done_runs[span]:
                                committed = span
                            else:
                                committed = 0
                                for value in probe:
                                    if value != _DONE:
                                        break
                                    committed += 1
                                if committed == 0:
                                    break
                            state[retire_ptr : retire_ptr + committed] = retired_runs[
                                committed
                            ]
                            rob_occupancy -= committed
                            retire_ptr += committed
                            retired += committed
                            head.in_flight -= committed
                            if head_end is not None and retire_ptr >= head_end:
                                tasks.popleft()
                                self._emit_task_commit(head, head_end)
                            if committed < span:
                                break
                        retired_total += retired
                        if retired:
                            fifo_dirty = True

                # ---- drain divert queue --------------------------------
                if fifo and (fifo_dirty or not use_blocks):
                    oldest = retire_ptr
                    if state[oldest] == _DIVERT:
                        blocked = False
                        for producer in divert_producer_map[oldest]:
                            if state[producer] < _WAIT:
                                blocked = True
                                break
                        if not blocked:
                            oldest_gen = gen[oldest]
                            for position, entry in enumerate(fifo):
                                if entry[0] == oldest and entry[1] == oldest_gen:
                                    del fifo[position]
                                    break
                            del divert_producer_map[oldest]
                            divert_occupancy -= 1
                            enter_scheduler(oldest)
                            active = True
                    if fifo:
                        moved = 0
                        scanned = 0
                        head = tasks[0] if tasks else None
                        head_end = head.end_index if head is not None else None
                        index_in_fifo = 0
                        while index_in_fifo < len(fifo) and scanned < 64:
                            entry_index, entry_gen = fifo[index_in_fifo]
                            scanned += 1
                            if (
                                gen[entry_index] != entry_gen
                                or state[entry_index] != _DIVERT
                            ):
                                # Squashed entry: lazily delete.
                                del fifo[index_in_fifo]
                                continue
                            blocked = False
                            for producer in divert_producer_map[entry_index]:
                                if state[producer] < release_state:
                                    blocked = True
                                    break
                            if blocked:
                                index_in_fifo += 1
                                continue
                            owned_by_head = head is not None and (
                                head_end is None or entry_index < head_end
                            )
                            cap = sched_entries if owned_by_head else shared_sched_cap
                            if sched_occupancy >= cap:
                                index_in_fifo += 1
                                continue
                            if not owned_by_head and (
                                sched_used.get(owner[entry_index], 0) >= quota
                            ):
                                index_in_fifo += 1
                                continue
                            del fifo[index_in_fifo]
                            del divert_producer_map[entry_index]
                            divert_occupancy -= 1
                            enter_scheduler(entry_index)
                            moved += 1
                            if moved >= width:
                                break
                        if moved:
                            active = True
                    if use_blocks:
                        # Any release this cycle can unblock further
                        # entries next cycle; otherwise the scan found
                        # nothing and nothing has changed since.
                        fifo_dirty = active

                # ---- issue ---------------------------------------------
                if heap:
                    issued = 0
                    deferred = None
                    while heap and issued < units:
                        index = heappop(heap)
                        if state[index] != _READY:
                            continue
                        if earliest[index] > cycle:
                            if deferred is None:
                                deferred = [index]
                            else:
                                deferred.append(index)
                            continue
                        lat = lats[index]
                        if lat == LAT_LOAD:
                            unsafe_producer = unsafe_mem.get(index)
                            if (
                                unsafe_producer is not None
                                and state[unsafe_producer] < _DONE
                            ):
                                self._rob_occupancy = rob_occupancy
                                self._sched_occupancy = sched_occupancy
                                self._divert_occupancy = divert_occupancy
                                self._handle_violation(index, unsafe_producer)
                                rob_occupancy = self._rob_occupancy
                                sched_occupancy = self._sched_occupancy
                                divert_occupancy = self._divert_occupancy
                                active = True
                                fifo_dirty = True
                                fetch_wake = 0
                                # The violator (and the heap contents
                                # from younger tasks) were squashed;
                                # issue no more this cycle.
                                break
                            latency = data_latency(mem_addrs[index])
                        elif lat == LAT_STORE:
                            data_latency(mem_addrs[index])
                            latency = 1
                        elif lat == LAT_MUL:
                            latency = mul_latency
                        else:
                            latency = 1
                        state[index] = _EXEC
                        sched_occupancy -= 1
                        sched_used[owner[index]] -= 1
                        complete_at = cycle + latency
                        entry = (_EV_COMPLETE, index, gen[index])
                        complete_bucket = events.get(complete_at)
                        if complete_bucket is None:
                            events[complete_at] = [entry]
                        else:
                            complete_bucket.append(entry)
                        issued += 1
                    if issued:
                        active = True
                        fifo_dirty = True
                    if deferred is not None:
                        for index in deferred:
                            heappush(heap, index)

                # ---- fetch ---------------------------------------------
                # Biased-ICount arbitration, inlined for the standard
                # one- and two-port configurations: the oldest
                # fetch-ready task takes the first port, the lowest
                # (in_flight, age) candidate among the rest the second.
                if use_blocks and cycle < fetch_wake:
                    # No task can pass the candidate predicate before
                    # fetch_wake: the only ways in are a stall timer
                    # expiring (bounded below by the minimum recorded
                    # when arbitration last came up empty) or a branch
                    # resolution / violation, both of which reset
                    # fetch_wake to 0.
                    selected = ()
                    share = width
                elif fetch_ports <= 2:
                    first = None
                    second = None
                    second_key = None
                    position = 0
                    for task in tasks:
                        if (
                            task.waiting_branch_index is None
                            and cycle >= task.fetch_stall_until
                            and (
                                task.end_index is None
                                or task.fetch_index < task.end_index
                            )
                        ):
                            if first is None:
                                first = task
                            else:
                                key = (task.in_flight, position)
                                if second_key is None or key < second_key:
                                    second_key = key
                                    second = task
                        position += 1
                    if fetch_ports == 1:
                        second = None
                    if first is None:
                        selected = ()
                        share = width
                        if use_blocks:
                            # Next cycle any candidate predicate can
                            # flip on its own is the earliest stall
                            # timer among tasks that pass the other two
                            # tests (timers of branch-waiting tasks are
                            # rewritten at resolution, which also
                            # resets fetch_wake).
                            wake_f = max_cycles + 2
                            for task in tasks:
                                if task.waiting_branch_index is None and (
                                    task.end_index is None
                                    or task.fetch_index < task.end_index
                                ):
                                    stall = task.fetch_stall_until
                                    if stall < wake_f:
                                        wake_f = stall
                            fetch_wake = wake_f
                    elif second is None:
                        selected = (first,)
                        share = width
                    else:
                        selected = (first, second)
                        share = width // 2
                else:  # nonstandard port counts: generic arbitration
                    candidates = []
                    position = 0
                    for task in tasks:
                        if task.can_fetch(cycle):
                            candidates.append((task.task_id, task.in_flight, position))
                        position += 1
                    if candidates:
                        chosen = select_fetch_tasks(
                            candidates, fetch_ports, config.head_bias
                        )
                        by_id = {task.task_id: task for task in tasks}
                        selected = tuple(by_id[task_id] for task_id in chosen)
                        share = width // max(len(selected), 1)
                    else:
                        selected = ()
                        share = width

                for task in selected:
                    budget = share
                    is_head = task is tasks[0]
                    if is_head:
                        rob_cap = rob_entries
                        sched_cap = sched_entries
                    else:
                        rob_cap = shared_rob_cap
                        sched_cap = shared_sched_cap
                    task_id = task.task_id
                    start = task.start_index
                    ras = task.ras
                    point = task.spawn_point
                    spawn_trigger = point.trigger_pc if point is not None else None
                    burst_instructions = 0
                    burst_diverts = 0

                    while budget > 0:
                        index = task.fetch_index
                        if index >= count:
                            break
                        end_index = task.end_index
                        if end_index is not None and index >= end_index:
                            break
                        if rob_occupancy >= rob_cap:
                            break
                        pc = pcs[index]

                        # Instruction cache: one access per new line.
                        line = lines[index]
                        if line != task.last_fetch_line:
                            latency = fetch_latency(pc)
                            task.last_fetch_line = line
                            if latency > 1:
                                task.fetch_stall_until = cycle + latency
                                icache_stalls += latency - 1
                                break

                        # ---- batched block fetch -----------------------
                        # Consume a compiled straight-line run in one
                        # inner loop: no control transfers, no spawn
                        # candidates, no new I-cache lines inside the
                        # run (run_end guarantees all three), so only
                        # the dependence bookkeeping remains.  Aborts at
                        # the first cross-task live dependence — the
                        # per-instruction path below owns the
                        # divert/store-set decision — committing the
                        # prefix fetched so far.
                        if batch_ok and run_end[index] - index >= 2:
                            limit = run_end[index]
                            bound = index + budget
                            if bound < limit:
                                limit = bound
                            if end_index is not None and end_index < limit:
                                limit = end_index
                            bound = index + rob_cap - rob_occupancy
                            if bound < limit:
                                limit = bound
                            bound = index + sched_cap - sched_occupancy
                            if bound < limit:
                                limit = bound
                            if not is_head:
                                bound = index + quota - sched_used.get(task_id, 0)
                                if bound < limit:
                                    limit = bound
                            if limit - index >= 2:
                                bstart = index
                                position = index
                                early = cycle + frontend_latency
                                ready_at = early if early > cycle else cycle + 1
                                any_ready = False
                                while position < limit:
                                    # All dispatch decisions are made
                                    # before any mutation, so an abort
                                    # leaves `position` untouched.
                                    producer, producer1, mem_producer = batch_deps[
                                        position
                                    ]
                                    pending = 0
                                    if producer >= 0:
                                        if producer >= bstart:
                                            # Fetched this cycle: still
                                            # in flight by construction.
                                            pending += 1
                                        elif state[producer] < _DONE:
                                            if producer < start:
                                                break
                                            pending += 1
                                    if producer1 >= 0:
                                        if producer1 >= bstart:
                                            pending += 1
                                        elif state[producer1] < _DONE:
                                            if producer1 < start:
                                                break
                                            pending += 1
                                    generation = gen[position] + 1
                                    if mem_producer >= 0 and (
                                        mem_producer >= bstart
                                        or state[mem_producer] < _DONE
                                    ):
                                        if mem_producer < start:
                                            break
                                        pending += 1
                                        dep_bucket = dependents.get(mem_producer)
                                        if dep_bucket is None:
                                            dependents[mem_producer] = [
                                                (position, generation)
                                            ]
                                        else:
                                            dep_bucket.append((position, generation))
                                    gen[position] = generation
                                    # fetch_cycle stays unwritten: it is
                                    # only read when a control transfer
                                    # resolves, and runs are plain.
                                    owner[position] = task_id
                                    earliest[position] = early
                                    wait_count[position] = pending
                                    if pending:
                                        state[position] = _WAIT
                                    else:
                                        state[position] = _READY
                                        any_ready = True
                                    position += 1
                                batched = position - bstart
                                if batched:
                                    if any_ready:
                                        # One range event covers every
                                        # position that is still _READY
                                        # when it fires.
                                        entry = (_EV_READY_RUN, bstart, position)
                                        ready_bucket = events.get(ready_at)
                                        if ready_bucket is None:
                                            events[ready_at] = [entry]
                                        else:
                                            ready_bucket.append(entry)
                                    task.fetch_index = position
                                    task.in_flight += batched
                                    rob_occupancy += batched
                                    sched_occupancy += batched
                                    sched_used[task_id] = (
                                        sched_used.get(task_id, 0) + batched
                                    )
                                    fetched_total += batched
                                    budget -= batched
                                    if spawn_trigger is not None:
                                        burst_instructions += batched
                                    continue
                                # Zero-length batch (the very first
                                # instruction crosses tasks): fall
                                # through to the per-instruction path.

                        # Decide the dispatch target (see the staged
                        # _fetch_from_task for the full rationale).
                        producers = None
                        unsafe_producer = None
                        producer = dep0[index]
                        if 0 <= producer < start and state[producer] < _DONE:
                            producers = [producer]
                        producer = dep1[index]
                        if 0 <= producer < start and state[producer] < _DONE:
                            if producers is None:
                                producers = [producer]
                            else:
                                producers.append(producer)
                        if lats[index] == LAT_LOAD:
                            mem_producer = mem_deps[index]
                            if (
                                0 <= mem_producer < start
                                and state[mem_producer] < _DONE
                            ):
                                if predicts_dependence(pcs[mem_producer], pc):
                                    if producers is None:
                                        producers = [mem_producer]
                                    else:
                                        producers.append(mem_producer)
                                else:
                                    unsafe_producer = mem_producer

                        # Check the dispatch target's capacity.
                        if producers is not None:
                            if divert_occupancy >= divert_entries:
                                break
                        else:
                            if sched_occupancy >= sched_cap:
                                break
                            if (
                                not is_head
                                and sched_used.get(task_id, 0) >= quota
                            ):
                                break

                        # Consume the instruction.
                        task.fetch_index = index + 1
                        task.in_flight += 1
                        rob_occupancy += 1
                        generation = gen[index] + 1
                        gen[index] = generation
                        owner[index] = task_id
                        fetch_cycle[index] = cycle
                        earliest[index] = cycle + frontend_latency
                        fetched_total += 1
                        if unsafe_producer is not None:
                            unsafe_mem[index] = unsafe_producer
                        budget -= 1
                        if verbose:
                            bus.emit(
                                InstructionFetched(
                                    cycle, task_id, index, pc, spawn_trigger
                                )
                            )

                        if producers is not None:
                            state[index] = _DIVERT
                            divert_occupancy += 1
                            divert_producer_map[index] = producers
                            fifo.append((index, generation))
                            diverted_total += 1
                            if spawn_trigger is not None:
                                burst_instructions += 1
                                burst_diverts += 1
                        else:
                            # Inlined scheduler entry (the closure
                            # above is the shared transcription; this
                            # is the same body on the hottest path).
                            pending = 0
                            producer = dep0[index]
                            if producer >= 0 and state[producer] < _DONE:
                                if not use_blocks:
                                    dep_bucket = dependents.get(producer)
                                    if dep_bucket is None:
                                        dependents[producer] = [(index, generation)]
                                    else:
                                        dep_bucket.append((index, generation))
                                pending += 1
                            producer = dep1[index]
                            if producer >= 0 and state[producer] < _DONE:
                                if not use_blocks:
                                    dep_bucket = dependents.get(producer)
                                    if dep_bucket is None:
                                        dependents[producer] = [(index, generation)]
                                    else:
                                        dep_bucket.append((index, generation))
                                pending += 1
                            if lats[index] == LAT_LOAD:
                                producer = mem_deps[index]
                                if (
                                    producer >= 0
                                    and index not in unsafe_mem
                                    and state[producer] < _DONE
                                ):
                                    dep_bucket = dependents.get(producer)
                                    if dep_bucket is None:
                                        dependents[producer] = [
                                            (index, generation)
                                        ]
                                    else:
                                        dep_bucket.append((index, generation))
                                    pending += 1
                            sched_occupancy += 1
                            sched_used[task_id] = sched_used.get(task_id, 0) + 1
                            wait_count[index] = pending
                            if pending:
                                state[index] = _WAIT
                            else:
                                state[index] = _READY
                                ready_at = earliest[index]
                                if ready_at <= cycle:
                                    ready_at = cycle + 1
                                entry = (_EV_READY, index, generation)
                                ready_bucket = events.get(ready_at)
                                if ready_bucket is None:
                                    events[ready_at] = [entry]
                                else:
                                    ready_bucket.append(entry)
                            if spawn_trigger is not None:
                                burst_instructions += 1

                        # Spawning (see the staged loop for rationale).
                        if len(tasks) < max_tasks:
                            if task.end_index is None and task is tasks[-1]:
                                if verbose:
                                    target = spawn_target_of(index, pc)
                                    self._emit_spawn_decision(task, index, pc, target)
                                    if target >= 0:
                                        self._spawn(task, pc, target, index)
                                else:
                                    target = spawn_targets[index]
                                    if target >= 0 and pc not in suppressed:
                                        self._spawn(task, pc, target, index)
                            elif nested and task.end_index is not None:
                                target = spawn_target_of(index, pc)
                                if 0 <= target < task.end_index:
                                    if verbose:
                                        self._emit_spawn_decision(
                                            task, index, pc, target
                                        )
                                    self._spawn_nested(task, pc, target, index)
                                elif verbose:
                                    self._emit_spawn_decision(
                                        task, index, pc, target,
                                        rejected="outside-segment"
                                        if target >= 0
                                        else None,
                                    )
                            elif verbose:
                                target = spawn_target_of(index, pc)
                                if target >= 0:
                                    self._emit_spawn_decision(
                                        task, index, pc, target, rejected="not-tail"
                                    )
                        elif verbose:
                            target = spawn_target_of(index, pc)
                            if target >= 0:
                                self._emit_spawn_decision(
                                    task, index, pc, target, rejected="task-limit"
                                )

                        # Control flow effects on fetch.
                        kind = kinds[index]
                        if kind:
                            if kind == KIND_COND_BRANCH:
                                cond_branches += 1
                                taken = takens[index]
                                if gshare_update(pc, taken) != taken:
                                    branch_misses += 1
                                    task.waiting_branch_index = index
                                    if use_blocks:
                                        waiting_branches[index] = task
                                    break
                                if taken:
                                    break  # one taken branch per cycle
                            else:
                                if kind == KIND_CALL_DIRECT:
                                    ras.push(fall_throughs[index])
                                elif kind == KIND_CALL_INDIRECT:
                                    ras.push(fall_throughs[index])
                                    if not indirect_update(pc, next_pcs[index]):
                                        indirect_misses += 1
                                        task.waiting_branch_index = index
                                        if use_blocks:
                                            waiting_branches[index] = task
                                elif kind == KIND_RETURN:
                                    if ras.pop() != next_pcs[index]:
                                        return_misses += 1
                                        task.waiting_branch_index = index
                                        if use_blocks:
                                            waiting_branches[index] = task
                                elif kind == KIND_SWITCH:
                                    if not indirect_update(pc, next_pcs[index]):
                                        indirect_misses += 1
                                        task.waiting_branch_index = index
                                        if use_blocks:
                                            waiting_branches[index] = task
                                # Every non-branch transfer ends the
                                # fetch stream.
                                break

                    if burst_instructions:
                        record_task_instructions(
                            spawn_trigger, burst_instructions, burst_diverts
                        )

                if fetched_total != fetch_mark:
                    # Fresh fetches may have added divert entries or new
                    # producers; rescan the queue next cycle.
                    fifo_dirty = True

                occupancy_sum += len(tasks)

                # ---- quiet-cycle skip ----------------------------------
                # With the block engine on, a cycle in which nothing can
                # change — no ready work, nothing retirable, every task
                # fetch-inert, and the divert queue provably frozen — is
                # a pure no-op until the next scheduled event or fetch
                # timer, so jump straight there.  Every state transition
                # is driven by an event bucket, a fetch timer expiring,
                # or a same-cycle prior-stage change; the first two
                # bound the jump and the third cannot occur in a cycle
                # that starts quiet.  Only the per-cycle occupancy
                # statistic accrues across the gap, added in closed
                # form, so stats and event streams are exact.
                if (
                    batch_ok
                    and not heap
                    and cycle + 1 not in events
                    and retire_ptr < count
                    and state[retire_ptr] != _DONE
                    and (
                        not fifo
                        or (not active and fetched_total == fetch_mark)
                    )
                ):
                    wake = min(events) if events else None
                    skip_ok = True
                    head_task = tasks[0] if tasks else None
                    next_cycle = cycle + 1
                    for task in tasks:
                        if task.waiting_branch_index is not None:
                            continue  # resumes via a completion event
                        findex = task.fetch_index
                        end_i = task.end_index
                        if findex >= (count if end_i is None else end_i):
                            continue  # done fetching
                        stall = task.fetch_stall_until
                        if stall > next_cycle:
                            if wake is None or stall < wake:
                                wake = stall
                            continue
                        is_head = task is head_task
                        if rob_occupancy >= (
                            rob_entries if is_head else shared_rob_cap
                        ):
                            continue  # unblocked only by retire (events)
                        if lines[findex] != task.last_fetch_line:
                            skip_ok = False  # next fetch probes the I-cache
                            break
                        # A capacity-blocked fetch breaks before any
                        # mutation; reconstruct which structure gates
                        # the next instruction (all inputs are frozen
                        # while the machine is quiet).
                        start = task.start_index
                        producer = dep0[findex]
                        live = 0 <= producer < start and state[producer] < _DONE
                        if not live:
                            producer = dep1[findex]
                            live = (
                                0 <= producer < start and state[producer] < _DONE
                            )
                        if live:
                            if divert_occupancy >= divert_entries:
                                continue  # divert queue full: inert
                            skip_ok = False
                            break
                        mem_live = False
                        if lats[findex] == LAT_LOAD:
                            producer = mem_deps[findex]
                            mem_live = (
                                0 <= producer < start and state[producer] < _DONE
                            )
                        sched_full = sched_occupancy >= (
                            sched_entries if is_head else shared_sched_cap
                        ) or (
                            not is_head
                            and sched_used.get(task.task_id, 0) >= quota
                        )
                        if mem_live:
                            # Store-set prediction picks divert or
                            # scheduler; inert only when both are full.
                            if sched_full and divert_occupancy >= divert_entries:
                                continue
                            skip_ok = False
                            break
                        if sched_full:
                            continue
                        skip_ok = False
                        break
                    if skip_ok and wake is not None and wake > next_cycle:
                        occupancy_sum += (wake - next_cycle) * len(tasks)
                        cycle = wake - 1
        finally:
            self._retire_ptr = retire_ptr
            self._rob_occupancy = rob_occupancy
            self._sched_occupancy = sched_occupancy
            self._divert_occupancy = divert_occupancy
            stats.retired_instructions += retired_total
            stats.fetched_instructions += fetched_total
            stats.diverted_instructions += diverted_total
            stats.task_occupancy_sum += occupancy_sum
            stats.icache_stall_cycles += icache_stalls
            stats.conditional_branches += cond_branches
            stats.branch_mispredicts += branch_misses
            stats.indirect_mispredicts += indirect_misses
            stats.return_mispredicts += return_misses

    # -- helpers ---------------------------------------------------------------

    def _warm_caches(self):
        """Replay the trace's footprint to model post-fast-forward state.

        The paper fast-forwards through each benchmark's initialization
        phase before measuring, so the measured region starts with warm
        caches.  The replay applies the trace's accesses once (without
        timing), leaving realistic LRU state: footprints larger than a
        cache level keep missing during measurement.
        """
        hierarchy = self.hierarchy
        fetch_latency = hierarchy.fetch_latency
        data_latency = hierarchy.data_latency
        pcs = self._pcs
        lines = self._lines
        lats = self._lats
        mem_addrs = self._mem_addrs
        last_line = None
        for index in range(len(pcs)):
            line = lines[index]
            if line != last_line:
                fetch_latency(pcs[index])
                last_line = line
            if lats[index] >= LAT_LOAD:
                data_latency(mem_addrs[index])
        hierarchy.reset_statistics()

    def _new_task(self, start_index, spawn_point=None):
        task = Task(self._next_task_id, start_index, spawn_point)
        self._next_task_id += 1
        return task

    def _schedule(self, cycle, kind, index):
        self._events.setdefault(cycle, []).append((kind, index, self._gen[index]))

    @staticmethod
    def _origin_of(task):
        """The trigger PC of the spawn point that created ``task``."""
        point = task.spawn_point
        return point.trigger_pc if point is not None else None

    def _emit_task_commit(self, task, end_index):
        self.bus.emit(
            TaskCommitted(
                self._cycle,
                task.task_id,
                task.start_index,
                self._pcs[task.start_index],
                self._origin_of(task),
                task.start_index,
                end_index,
            )
        )

    # -- pipeline stages ---------------------------------------------------------

    def _process_events(self):
        events = self._events.pop(self._cycle, None)
        if not events:
            return
        state = self._state
        gen = self._gen
        wait_count = self._wait_count
        earliest = self._earliest
        dependents = self._dependents
        heap = self._ready_heap
        cycle = self._cycle
        push = heapq.heappush
        for kind, index, generation in events:
            if gen[index] != generation:
                continue
            if kind == _EV_READY:
                if state[index] == _READY:
                    push(heap, index)
                continue
            # Completion.
            if state[index] != _EXEC:
                continue
            state[index] = _DONE
            self._resolve_waiting_branch(index)
            consumers = dependents.pop(index, None)
            if not consumers:
                continue
            for consumer, consumer_gen in consumers:
                if gen[consumer] != consumer_gen or state[consumer] != _WAIT:
                    continue
                pending = wait_count[consumer] - 1
                wait_count[consumer] = pending
                if pending == 0:
                    state[consumer] = _READY
                    ready_at = max(cycle + 1, earliest[consumer])
                    self._schedule(ready_at, _EV_READY, consumer)

    def _resolve_waiting_branch(self, index):
        for task in self._tasks:
            if task.waiting_branch_index == index:
                resume = max(
                    self._cycle + 1,
                    self._fetch_cycle[index] + self.config.mispredict_penalty,
                )
                task.waiting_branch_index = None
                task.fetch_stall_until = resume
                return

    def _retire(self):
        state = self._state
        count = len(self.trace)
        retired = 0
        width = self.config.width
        tasks = self._tasks
        verbose = self.bus.verbose
        while retired < width and self._retire_ptr < count:
            index = self._retire_ptr
            if state[index] != _DONE:
                break
            state[index] = _RETIRED
            self._rob_occupancy -= 1
            self._retire_ptr = index + 1
            retired += 1
            head = tasks[0]
            head.in_flight -= 1
            if verbose:
                self.bus.emit(
                    InstructionCommitted(
                        self._cycle,
                        head.task_id,
                        index,
                        self._pcs[index],
                        self._origin_of(head),
                    )
                )
            if head.end_index is not None and self._retire_ptr >= head.end_index:
                tasks.popleft()
                self._emit_task_commit(head, head.end_index)
        self.stats.retired_instructions += retired

    def _drain_divert_queue(self):
        fifo = self._divert_fifo
        if not fifo:
            return
        state = self._state
        gen = self._gen
        # Forward-progress guarantee: the globally oldest unretired
        # instruction may always leave the divert queue, even past
        # scheduler capacity (it will issue and retire immediately,
        # unclogging consumers that fill the scheduler).
        release_state = _WAIT if self.config.divert_release == "dispatch" else _DONE
        oldest = self._retire_ptr
        if state[oldest] == _DIVERT:
            producers = self._divert_producers[oldest]
            if all(state[p] >= _WAIT for p in producers):
                for position, (entry_index, entry_gen) in enumerate(fifo):
                    if entry_index == oldest and entry_gen == gen[oldest]:
                        del fifo[position]
                        break
                del self._divert_producers[oldest]
                self._divert_occupancy -= 1
                self._enter_scheduler(oldest)
        if not fifo:
            return
        moved = 0
        scanned = 0
        max_scan = 64
        # Non-head entries must not consume the scheduler share reserved
        # for the head task, or they starve it into deadlock.
        shared_cap = self.config.scheduler_entries - _HEAD_SCHED_RESERVE
        full_cap = self.config.scheduler_entries
        head = self._tasks[0] if self._tasks else None
        head_end = head.end_index if head is not None else None
        index_in_fifo = 0
        while index_in_fifo < len(fifo) and scanned < max_scan:
            entry_index, entry_gen = fifo[index_in_fifo]
            scanned += 1
            if gen[entry_index] != entry_gen or state[entry_index] != _DIVERT:
                # Squashed entry: lazily delete.
                del fifo[index_in_fifo]
                continue
            producers = self._divert_producers[entry_index]
            if any(state[p] < release_state for p in producers):
                index_in_fifo += 1
                continue
            owned_by_head = head is not None and (
                head_end is None or entry_index < head_end
            )
            cap = full_cap if owned_by_head else shared_cap
            if self._sched_occupancy >= cap:
                index_in_fifo += 1
                continue
            if not owned_by_head and (
                self._sched_used.get(self._owner[entry_index], 0)
                >= self.config.scheduler_per_task_quota
            ):
                index_in_fifo += 1
                continue
            del fifo[index_in_fifo]
            del self._divert_producers[entry_index]
            self._divert_occupancy -= 1
            self._enter_scheduler(entry_index)
            moved += 1
            if moved >= self.config.width:
                break

    def _enter_scheduler(self, index):
        """Move a (diverted or fresh) instruction into the scheduler."""
        state = self._state
        dependents = self._dependents
        generation = self._gen[index]
        pending = 0
        # Source-register producers in rs-then-rt order; a duplicated
        # producer (rs == rt) registers twice, exactly like the record's
        # reg_deps tuple.
        producer = self._dep0[index]
        if producer >= 0 and state[producer] < _DONE:
            dependents.setdefault(producer, []).append((index, generation))
            pending += 1
        producer = self._dep1[index]
        if producer >= 0 and state[producer] < _DONE:
            dependents.setdefault(producer, []).append((index, generation))
            pending += 1
        if self._lats[index] == LAT_LOAD:
            mem_producer = self._mem_deps[index]
            if (
                mem_producer >= 0
                and index not in self._unsafe_mem
                and state[mem_producer] < _DONE
            ):
                dependents.setdefault(mem_producer, []).append((index, generation))
                pending += 1
        self._sched_occupancy += 1
        owner = self._owner[index]
        self._sched_used[owner] = self._sched_used.get(owner, 0) + 1
        self._wait_count[index] = pending
        if pending:
            state[index] = _WAIT
        else:
            state[index] = _READY
            ready_at = max(self._cycle + 1, self._earliest[index])
            self._schedule(ready_at, _EV_READY, index)

    def _issue(self):
        heap = self._ready_heap
        if not heap:
            return
        state = self._state
        earliest = self._earliest
        lats = self._lats
        mem_addrs = self._mem_addrs
        data_latency = self.hierarchy.data_latency
        cycle = self._cycle
        sched_used = self._sched_used
        owner = self._owner
        mul_latency = self.config.mul_latency
        issued = 0
        units = self.config.functional_units
        deferred = []
        pop = heapq.heappop
        while heap and issued < units:
            index = pop(heap)
            if state[index] != _READY:
                continue
            if earliest[index] > cycle:
                deferred.append(index)
                continue
            lat = lats[index]
            if lat == LAT_LOAD:
                unsafe_producer = self._unsafe_mem.get(index)
                if unsafe_producer is not None and state[unsafe_producer] < _DONE:
                    self._handle_violation(index, unsafe_producer)
                    # The violator (and the heap contents from younger
                    # tasks) were squashed; issue no more this cycle.
                    break
                latency = data_latency(mem_addrs[index])
            elif lat == LAT_STORE:
                data_latency(mem_addrs[index])
                latency = 1
            elif lat == LAT_MUL:
                latency = mul_latency
            else:
                latency = 1
            state[index] = _EXEC
            self._sched_occupancy -= 1
            sched_used[owner[index]] -= 1
            self._schedule(cycle + latency, _EV_COMPLETE, index)
            issued += 1
        for index in deferred:
            heapq.heappush(heap, index)

    # -- violations and squashes -------------------------------------------------

    def _task_position_of_index(self, index):
        for position, task in enumerate(self._tasks):
            end = task.end_index
            if index >= task.start_index and (end is None or index < end):
                return position
        raise SimulationError(
            "trace index {} belongs to no active task".format(index)
        )

    def _handle_violation(self, load_index, store_index):
        store_pc = self._pcs[store_index]
        load_pc = self._pcs[load_index]
        self.store_sets.train_violation(store_pc, load_pc)
        position = self._task_position_of_index(load_index)
        violator = self._tasks[position]
        if violator.spawn_point is not None:
            self.spawn_unit.record_squash(violator.spawn_point.trigger_pc)
        self.bus.emit(
            DependenceViolation(
                self._cycle,
                violator.task_id,
                load_index,
                load_pc,
                self._origin_of(violator),
                store_index,
                store_pc,
            )
        )
        self._squash_from(position, cause="memory-dependence")

    def _squash_from(self, position, cause):
        """Squash tasks[position:] and rewind their fetch."""
        state = self._state
        gen = self._gen
        pcs = self._pcs
        chain = list(self._tasks)[position:]
        chain_depth = len(chain)
        for task in chain:
            squashed = 0
            for index in range(task.start_index, task.fetch_index):
                current = state[index]
                if current == _FREE:
                    continue
                if current == _DIVERT:
                    self._divert_occupancy -= 1
                    self._divert_producers.pop(index, None)
                elif current in (_WAIT, _READY):
                    self._sched_occupancy -= 1
                    self._sched_used[self._owner[index]] -= 1
                state[index] = _FREE
                gen[index] += 1
                self._rob_occupancy -= 1
                self._dependents.pop(index, None)
                self._unsafe_mem.pop(index, None)
                squashed += 1
            task.reset_for_squash(self._cycle, self.config.squash_restart_penalty)
            self.bus.emit(
                TaskSquashed(
                    self._cycle,
                    task.task_id,
                    task.start_index,
                    pcs[task.start_index],
                    self._origin_of(task),
                    cause,
                    chain_depth,
                    squashed,
                )
            )

    # -- fetch --------------------------------------------------------------------

    def _fetch(self):
        tasks = self._tasks
        cycle = self._cycle
        candidates = []
        for position, task in enumerate(tasks):
            if task.can_fetch(cycle):
                candidates.append((task.task_id, task.in_flight, position))
        if not candidates:
            return
        selected = select_fetch_tasks(
            candidates, self.config.fetch_tasks_per_cycle, self.config.head_bias
        )
        by_id = {task.task_id: task for task in tasks}
        # Each selected task owns an equal share of the fetch width (two
        # 4-wide fetch streams on the 8-wide PolyFlow, one 8-wide stream
        # on the superscalar): fetch units cannot recombine dynamically.
        share = self.config.width // max(len(selected), 1)
        for task_id in selected:
            self._fetch_from_task(by_id[task_id], share)

    def _fetch_from_task(self, task, budget):
        state = self._state
        gen = self._gen
        config = self.config
        cycle = self._cycle
        bus = self.bus
        verbose = bus.verbose
        stats = self.stats
        tasks = self._tasks
        spawn_unit = self.spawn_unit
        task_origin = self._origin_of(task)
        is_head = task is tasks[0]
        rob_cap = config.rob_entries
        sched_cap = config.scheduler_entries
        divert_cap = config.divert_queue_entries
        if not is_head:
            rob_cap -= _HEAD_ROB_RESERVE
            sched_cap -= _HEAD_SCHED_RESERVE
        # Flat decoded arrays and hot locals.
        pcs = self._pcs
        kinds = self._kinds
        lats = self._lats
        takens = self._takens
        next_pcs = self._next_pcs
        fall_throughs = self._fall_throughs
        lines = self._lines
        dep0 = self._dep0
        dep1 = self._dep1
        mem_deps = self._mem_deps
        owner = self._owner
        fetch_cycle = self._fetch_cycle
        earliest = self._earliest
        sched_used = self._sched_used
        unsafe_mem = self._unsafe_mem
        divert_producer_map = self._divert_producers
        divert_fifo = self._divert_fifo
        fetch_latency = self.hierarchy.fetch_latency
        predicts_dependence = self.store_sets.predicts_dependence
        gshare_update = self.gshare.predict_and_update
        indirect_update = self.indirect_predictor.predict_and_update
        record_task_instruction = spawn_unit.record_task_instruction
        spawn_targets = spawn_unit.resolved_targets()
        suppressed = spawn_unit.suppressed_triggers_live()
        count = len(pcs)
        start = task.start_index
        task_id = task.task_id
        frontend_latency = config.frontend_latency
        quota = config.scheduler_per_task_quota
        max_tasks = config.max_tasks
        nested = config.nested_spawns
        ras = task.ras
        spawn_trigger = (
            task.spawn_point.trigger_pc if task.spawn_point is not None else None
        )

        while budget > 0:
            index = task.fetch_index
            if index >= count:
                break
            end_index = task.end_index
            if end_index is not None and index >= end_index:
                break
            if self._rob_occupancy >= rob_cap:
                break
            pc = pcs[index]

            # Instruction cache: one access per new line.
            line = lines[index]
            if line != task.last_fetch_line:
                latency = fetch_latency(pc)
                task.last_fetch_line = line
                if latency > 1:
                    task.fetch_stall_until = cycle + latency
                    stats.icache_stall_cycles += latency - 1
                    break

            # Decide the dispatch target.  Register dependences on older
            # tasks always divert (hint-predicted); memory dependences
            # divert only when the store-set predictor has learned the
            # pair — otherwise the load speculates past the older-task
            # store (risking a violation squash).
            producers = None
            unsafe_producer = None
            producer = dep0[index]
            if 0 <= producer < start and state[producer] < _DONE:
                producers = [producer]
            producer = dep1[index]
            if 0 <= producer < start and state[producer] < _DONE:
                if producers is None:
                    producers = [producer]
                else:
                    producers.append(producer)
            if lats[index] == LAT_LOAD:
                mem_producer = mem_deps[index]
                if 0 <= mem_producer < start and state[mem_producer] < _DONE:
                    if predicts_dependence(pcs[mem_producer], pc):
                        if producers is None:
                            producers = [mem_producer]
                        else:
                            producers.append(mem_producer)
                    else:
                        unsafe_producer = mem_producer

            # Check the dispatch target's capacity.
            if producers is not None:
                if self._divert_occupancy >= divert_cap:
                    break
            else:
                if self._sched_occupancy >= sched_cap:
                    break
                if not is_head and sched_used.get(task_id, 0) >= quota:
                    break

            # Consume the instruction.
            task.fetch_index = index + 1
            task.in_flight += 1
            self._rob_occupancy += 1
            gen[index] += 1
            owner[index] = task_id
            fetch_cycle[index] = cycle
            earliest[index] = cycle + frontend_latency
            stats.fetched_instructions += 1
            if unsafe_producer is not None:
                unsafe_mem[index] = unsafe_producer
            budget -= 1
            if verbose:
                bus.emit(
                    InstructionFetched(cycle, task_id, index, pc, task_origin)
                )

            if producers is not None:
                state[index] = _DIVERT
                self._divert_occupancy += 1
                divert_producer_map[index] = producers
                divert_fifo.append((index, gen[index]))
                stats.diverted_instructions += 1
            else:
                self._enter_scheduler(index)
            if spawn_trigger is not None:
                record_task_instruction(spawn_trigger, producers is not None)

            # Spawning: the tail task extends the task list; with the
            # nested-spawns extension (the paper's future work), a
            # non-tail task may additionally split its own segment to
            # spawn past an inner branch.
            if len(tasks) < max_tasks:
                if task.end_index is None and task is tasks[-1]:
                    if verbose:
                        target = spawn_unit.spawn_target(index, pc)
                        self._emit_spawn_decision(task, index, pc, target)
                        if target >= 0:
                            self._spawn(task, pc, target, index)
                    else:
                        target = spawn_targets[index]
                        if target >= 0 and pc not in suppressed:
                            self._spawn(task, pc, target, index)
                elif nested and task.end_index is not None:
                    target = spawn_unit.spawn_target(index, pc)
                    if 0 <= target < task.end_index:
                        if verbose:
                            self._emit_spawn_decision(task, index, pc, target)
                        self._spawn_nested(task, pc, target, index)
                    elif verbose:
                        self._emit_spawn_decision(
                            task, index, pc, target,
                            rejected="outside-segment" if target >= 0 else None,
                        )
                elif verbose:
                    target = spawn_unit.spawn_target(index, pc)
                    if target >= 0:
                        self._emit_spawn_decision(
                            task, index, pc, target, rejected="not-tail"
                        )
            elif verbose:
                target = spawn_unit.spawn_target(index, pc)
                if target >= 0:
                    self._emit_spawn_decision(
                        task, index, pc, target, rejected="task-limit"
                    )

            # Control flow effects on fetch.
            kind = kinds[index]
            if kind:
                if kind == KIND_COND_BRANCH:
                    stats.conditional_branches += 1
                    taken = takens[index]
                    if gshare_update(pc, taken) != taken:
                        stats.branch_mispredicts += 1
                        task.waiting_branch_index = index
                        break
                    if taken:
                        break  # one taken branch per task per cycle
                else:
                    if kind == KIND_CALL_DIRECT:
                        ras.push(fall_throughs[index])
                    elif kind == KIND_CALL_INDIRECT:
                        ras.push(fall_throughs[index])
                        if not indirect_update(pc, next_pcs[index]):
                            stats.indirect_mispredicts += 1
                            task.waiting_branch_index = index
                    elif kind == KIND_RETURN:
                        if ras.pop() != next_pcs[index]:
                            stats.return_mispredicts += 1
                            task.waiting_branch_index = index
                    elif kind == KIND_SWITCH:
                        if not indirect_update(pc, next_pcs[index]):
                            stats.indirect_mispredicts += 1
                            task.waiting_branch_index = index
                    # Every non-branch transfer (calls, returns,
                    # switches, direct jumps) ends the fetch stream.
                    break
        return budget

    def _emit_spawn_decision(self, task, index, pc, target, rejected=None):
        """Verbose-only bookkeeping of one spawn-unit consultation.

        Emits the hint hit/miss, the spawn request when a target was
        resolved, and — when the machine could not act on it — the
        rejection with its reason.  (Spawn *acceptance* is emitted by
        :meth:`_spawn` / :meth:`_spawn_nested` on every run.)
        """
        hint = self.spawn_unit.hint_for(pc)
        if hint is None and target < 0:
            return
        origin = self._origin_of(task)
        cycle = self._cycle
        task_id = task.task_id
        if hint is not None:
            self.bus.emit(HintLookup(cycle, task_id, index, pc, origin, target >= 0))
        if target >= 0:
            self.bus.emit(SpawnRequested(cycle, task_id, index, pc, origin, target))
            if rejected is not None:
                self.bus.emit(
                    SpawnRejected(cycle, task_id, index, pc, origin, target, rejected)
                )
        elif hint is not None:
            self.bus.emit(
                SpawnRejected(cycle, task_id, index, pc, origin, -1, "no-target")
            )

    def _emit_spawn_accepted(self, spawner, trigger_index, trigger_pc, new_task, nested):
        spawn_point = new_task.spawn_point
        self.bus.emit(
            SpawnAccepted(
                self._cycle,
                spawner.task_id,
                trigger_index,
                trigger_pc,
                self._origin_of(spawner),
                new_task.start_index,
                new_task.task_id,
                spawn_point.category if spawn_point is not None else None,
                nested,
            )
        )
        self.bus.emit(
            TaskStarted(
                self._cycle,
                new_task.task_id,
                new_task.start_index,
                self._pcs[new_task.start_index],
                trigger_pc,
            )
        )

    def _spawn_nested(self, task, trigger_pc, target_index, trigger_index):
        """Split a bounded task's segment at ``target_index``.

        The new task takes over the split-off suffix of the spawner's
        segment, entering the task list right after it (trace order is
        preserved).  This is the future-work extension that lets
        PolyFlow spawn past the branch of an inner hammock even though
        an outer spawn already bounded the task.
        """
        hint = self.spawn_unit.hint_for(trigger_pc)
        spawn_point = hint.spawn_point if hint is not None else None
        new_task = self._new_task(target_index, spawn_point)
        new_task.end_index = task.end_index
        new_task.fetch_stall_until = self._cycle + 1
        new_task.adopt_spawner_ras(task.ras)
        task.end_index = target_index
        # Insert after the spawner to keep the deque sorted by segment.
        position = self._task_position_of_index(task.start_index)
        self._tasks.insert(position + 1, new_task)
        self.spawn_unit.record_spawn(trigger_pc)
        self._emit_spawn_accepted(task, trigger_index, trigger_pc, new_task, True)

    def _spawn(self, tail, trigger_pc, target_index, trigger_index):
        hint = self.spawn_unit.hint_for(trigger_pc)
        spawn_point = hint.spawn_point if hint is not None else None
        tail.end_index = target_index
        new_task = self._new_task(target_index, spawn_point)
        # The spawned task starts fetching the cycle after the spawn,
        # inheriting the spawner's call context (return address stack).
        new_task.fetch_stall_until = self._cycle + 1
        new_task.adopt_spawner_ras(tail.ras)
        self._tasks.append(new_task)
        self.spawn_unit.record_spawn(trigger_pc)
        self._emit_spawn_accepted(tail, trigger_index, trigger_pc, new_task, False)


def simulate(
    trace,
    config=PAPER_CONFIG,
    hint_table=None,
    max_cycles=None,
    bus=None,
    block_engine=None,
    event_kernel=None,
):
    """Run the PolyFlow model over ``trace`` and return its stats."""
    return PolyFlowCore(
        trace,
        config,
        hint_table,
        max_cycles,
        bus,
        block_engine=block_engine,
        event_kernel=event_kernel,
    ).run()


def simulate_superscalar(trace, base_config=PAPER_CONFIG, max_cycles=None):
    """Run the superscalar baseline (same resources, one task)."""
    config = superscalar_config(base_config)
    return PolyFlowCore(trace, config, HintTable(), max_cycles).run()
