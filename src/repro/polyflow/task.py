"""Task state for the PolyFlow core.

A task is a contiguous segment of the committed trace.  The tail task
is unbounded until it spawns a successor, at which point its segment
ends where the new task begins (the spawn target's dynamic instance).
"""

from repro.frontend.branch_predictor import ReturnAddressStack


class Task:
    """One active task (a trace segment being fetched and executed)."""

    __slots__ = (
        "task_id",
        "start_index",
        "end_index",
        "fetch_index",
        "fetch_stall_until",
        "waiting_branch_index",
        "in_flight",
        "ras",
        "_spawn_ras",
        "last_fetch_line",
        "spawn_point",
    )

    def __init__(self, task_id, start_index, spawn_point=None):
        self.task_id = task_id
        self.start_index = start_index
        #: Exclusive end of the segment; None while this is the tail.
        self.end_index = None
        self.fetch_index = start_index
        self.fetch_stall_until = 0
        #: Trace index of an unresolved mispredicted branch, if any.
        self.waiting_branch_index = None
        #: Fetched but not yet retired instructions (ICount input).
        self.in_flight = 0
        self.ras = ReturnAddressStack()
        self._spawn_ras = ReturnAddressStack()
        self.last_fetch_line = None
        #: The static spawn point that created this task (None for the
        #: initial task).
        self.spawn_point = spawn_point

    def finished_fetch(self):
        """Whether the segment has been fully fetched."""
        return self.end_index is not None and self.fetch_index >= self.end_index

    def can_fetch(self, cycle):
        """Whether this task may fetch in ``cycle``."""
        return (
            not self.finished_fetch()
            and self.waiting_branch_index is None
            and cycle >= self.fetch_stall_until
        )

    def adopt_spawner_ras(self, spawner_ras):
        """Inherit the spawner's call context (kept for squash replay)."""
        self.ras.copy_from(spawner_ras)
        self._spawn_ras.copy_from(spawner_ras)

    def reset_for_squash(self, cycle, restart_penalty):
        """Rewind fetch to the segment start after a squash."""
        self.fetch_index = self.start_index
        self.in_flight = 0
        self.fetch_stall_until = cycle + restart_penalty
        self.waiting_branch_index = None
        self.last_fetch_line = None
        self.ras.copy_from(self._spawn_ras)

    def __repr__(self):
        return "Task(id={}, [{}, {}), fetch={})".format(
            self.task_id, self.start_index, self.end_index, self.fetch_index
        )
