"""Machine configuration (the paper's Figure 8 pipeline parameters)."""

import dataclasses
import functools
import hashlib
import json

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Configuration of the PolyFlow core and its superscalar baseline.

    Defaults reproduce Figure 8.  The superscalar baseline is the same
    machine restricted to one task (see :func:`superscalar_config`).
    """

    #: Pipeline width (fetch/dispatch/issue/retire per cycle).
    width: int = 8
    #: Reorder buffer entries, dynamically shared among tasks.
    rob_entries: int = 512
    #: Scheduler entries, dynamically shared.
    scheduler_entries: int = 64
    #: Divert queue entries, dynamically shared.
    divert_queue_entries: int = 128
    #: Maximum concurrently active tasks.
    max_tasks: int = 8
    #: Tasks that may fetch in one cycle (PolyFlow: 2; superscalar: 1).
    fetch_tasks_per_cycle: int = 2
    #: Minimum branch misprediction penalty in cycles ("at least 8").
    mispredict_penalty: int = 8
    #: Front-end depth: cycles between fetch and earliest issue.
    frontend_latency: int = 4
    #: Number of identical general-purpose functional units.
    functional_units: int = 8
    #: Integer multiply latency.
    mul_latency: int = 3
    #: gshare predictor size in 2-bit counters (16Kbit total).
    gshare_counters: int = 8192
    #: gshare global history bits.
    gshare_history_bits: int = 8
    #: Biased-ICount fetch priority bonus for the head task.
    head_bias: int = 16
    #: Spawn targets closer than this are not worth a task context.
    min_spawn_distance: int = 4
    #: Spawn targets further than this are "too far into the future".
    max_spawn_distance: int = 512
    #: Restart delay after a task squash.
    squash_restart_penalty: int = 3
    #: When a diverted consumer may enter the scheduler: after its
    #: producers complete ("complete"), or after they have merely been
    #: dispatched ("dispatch", the paper's wording; the wakeup network
    #: covers the remaining wait).
    divert_release: str = "dispatch"
    #: Maximum scheduler entries one speculative task may hold (the
    #: head task is exempt).  Stops a young task's far-future dependence
    #: chains from starving near-retirement work out of the scheduler.
    scheduler_per_task_quota: int = 24
    #: The paper's future-work extension: let non-tail tasks spawn by
    #: splitting their own segment ("the current system allows each
    #: thread to spawn only a single successor, so PolyFlow ... is
    #: unable to spawn past the branch in the inner hammock.  We hope
    #: to address both of these limitations in future work").
    nested_spawns: bool = False
    #: Warm the caches by replaying the trace's footprint before timing
    #: (models the paper's fast-forward through program initialization).
    warm_caches: bool = True
    #: Suppress a spawn point after this many violation squashes ...
    spawn_feedback_threshold: int = 4
    #: ... when its squash/spawn ratio exceeds this fraction.
    spawn_feedback_ratio: float = 0.5

    def __post_init__(self):
        if self.max_tasks < 1:
            raise ConfigurationError("max_tasks must be at least 1")
        if self.fetch_tasks_per_cycle < 1:
            raise ConfigurationError("fetch_tasks_per_cycle must be at least 1")
        if self.fetch_tasks_per_cycle > self.max_tasks:
            raise ConfigurationError(
                "cannot fetch from more tasks per cycle than can exist"
            )
        if self.width < 1 or self.rob_entries < 1 or self.scheduler_entries < 1:
            raise ConfigurationError("pipeline resources must be positive")


#: PolyFlow as evaluated in the paper (Figure 8).
PAPER_CONFIG = MachineConfig()


@functools.lru_cache(maxsize=None)
def config_fingerprint(config):
    """A stable hex digest of every field of a :class:`MachineConfig`.

    Field names are included and sorted, so the fingerprint survives
    field reordering but changes whenever any parameter (or a field's
    name) changes.  Used to key simulation results — both the in-memory
    memo and the on-disk cache in :mod:`repro.experiments.parallel` —
    so stale results can never be served for a different machine.

    Memoized on the (frozen, hashable) config value: every grid cell
    consults the fingerprint several times per dispatch — memo keys,
    job digests, job labels, wire responses — and the asdict/json walk
    dominated grid-planning profiles before the cache.
    """
    fields = dataclasses.asdict(config)
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def superscalar_config(base=PAPER_CONFIG):
    """The baseline: same resources, one task, one fetch stream.

    "Both PolyFlow's underlying SMT and the baseline superscalar use the
    same hardware resources.  The superscalar is capable of fetching a
    maximum of one taken branch per cycle."
    """
    return dataclasses.replace(base, max_tasks=1, fetch_tasks_per_cycle=1)


def figure8_rows():
    """The Figure 8 parameter table as (parameter, value) rows."""
    return [
        ("Pipeline Width", "8 instrs/cycle"),
        ("Branch Predictor", "16Kbit gshare, 8 bits of global history"),
        ("Misprediction Penalty", "At least 8 cycles"),
        ("Reorder Buffer", "512 entries, dynamically shared"),
        ("Scheduler", "64 entries, dynamically shared"),
        ("Functional Units", "8 identical general purpose units"),
        ("L1 I-Cache", "8Kbytes, 2-way set assoc., 128 byte lines, 10 cycle miss"),
        ("L1 D-Cache", "16Kbytes, 4-way set assoc., 64 byte lines, 10 cycle miss"),
        ("L2 Cache", "512Kbytes, 8-way set assoc., 128 byte lines, 100 cycle miss"),
        ("Divert Queue", "128 entries, dynamically shared"),
        ("Tasks", "8"),
    ]
