"""The PolyFlow speculative parallelization machine model."""

from repro.polyflow.config import (
    PAPER_CONFIG,
    MachineConfig,
    config_fingerprint,
    figure8_rows,
    superscalar_config,
)
from repro.polyflow.core import PolyFlowCore, simulate, simulate_superscalar
from repro.polyflow.dependences import StoreSetPredictor
from repro.polyflow.spawn_unit import SpawnUnit
from repro.polyflow.stats import SimStats, speedup_percent
from repro.polyflow.task import Task
from repro.polyflow.timeline import FetchEvent, TimelineTracer, trace_fetch_timeline

__all__ = [
    "MachineConfig",
    "PAPER_CONFIG",
    "superscalar_config",
    "config_fingerprint",
    "figure8_rows",
    "PolyFlowCore",
    "simulate",
    "simulate_superscalar",
    "StoreSetPredictor",
    "SpawnUnit",
    "SimStats",
    "speedup_percent",
    "Task",
    "FetchEvent",
    "TimelineTracer",
    "trace_fetch_timeline",
]
