"""Optional NumPy accelerator gate.

The simulator is stdlib-only by contract (see ``requirements-ci.txt``):
nothing in :mod:`repro` may import NumPy at module scope or require it
to produce results.  Hot paths that *can* exploit vectorized integer
kernels ask this module for the backend instead; they get NumPy only
when the user opted in (``REPRO_NUMPY=1`` in the environment, with the
package available — e.g. via the ``repro[fast]`` extra) and must keep
their NumPy branch observably identical to the stdlib branch, which in
practice means exact integer operations only, never floating-point
accumulation.
"""

import os

#: Environment variable that opts into the accelerator.  Anything other
#: than an empty string or "0" enables it.
NUMPY_FLAG = "REPRO_NUMPY"

_numpy_module = None
_numpy_attempted = False


def numpy_enabled():
    """Whether the current environment opts into the NumPy backend."""
    return os.environ.get(NUMPY_FLAG, "") not in ("", "0")


def numpy_or_none():
    """The ``numpy`` module when opted in and importable, else None.

    The import is attempted at most once per process; the opt-in flag
    is re-read on every call so tests can flip it.
    """
    global _numpy_module, _numpy_attempted
    if not numpy_enabled():
        return None
    if not _numpy_attempted:
        _numpy_attempted = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module
