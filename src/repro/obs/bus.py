"""The simulation event bus: guarded dispatch to attached sinks.

A sink is any object with an ``on_event(event)`` method.  Sinks attach
either *verbose* (the default — they also receive the high-frequency
per-instruction events) or non-verbose (lifecycle events only, the mode
:class:`~repro.polyflow.stats.SimStats` uses).

The core checks ``bus.verbose`` once per pipeline stage and skips
constructing per-instruction events entirely when no verbose sink is
attached, so event dispatch is effectively free on untraced runs.

``bus.verbose`` also selects the timing engine: verbose emission
timestamps every per-instruction event with the cycle it happened in,
so a verbose bus pins the core to a cycle-exact engine (every cycle
visited), while a non-verbose bus permits the event-calendar kernel
(:mod:`repro.polyflow.event_kernel`) to jump the clock over frozen
cycles.  Lifecycle events carry cycle timestamps too, and the engine
equivalence suites pin them byte-identical across engines — the flag
only decides *which* cycle-exact-equivalent engine runs, never what
any sink observes.
"""

#: Version of the event schema (bump on any field or kind change, and
#: regenerate the golden traces under ``tests/obs/golden/``).
EVENT_SCHEMA_VERSION = 1


class EventBus:
    """Dispatches simulation events to attached sinks, in attach order."""

    __slots__ = ("_sinks", "verbose")

    def __init__(self):
        self._sinks = []
        #: True when at least one verbose sink is attached.  The core
        #: reads this to guard high-frequency event construction and to
        #: auto-select a cycle-exact engine (the time-skip kernel never
        #: runs under a verbose bus; see the module docstring).
        self.verbose = False

    def attach(self, sink, verbose=True):
        """Attach ``sink``; returns it for chaining.

        Args:
            sink: Object with an ``on_event(event)`` method.
            verbose: Whether the sink wants the per-instruction events
                (fetch, commit, hint lookups, spawn requested/rejected)
                in addition to the always-on lifecycle events.
        """
        self._sinks.append(sink)
        if verbose:
            self.verbose = True
        return sink

    @property
    def sinks(self):
        """The attached sinks (read-only view)."""
        return tuple(self._sinks)

    def emit(self, event):
        """Deliver ``event`` to every sink, in attach order."""
        for sink in self._sinks:
            sink.on_event(event)
