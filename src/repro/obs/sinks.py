"""Trace-writing sinks: JSONL event streams and Chrome trace_event files.

Both writers are deterministic: given the same simulation they produce
byte-identical output (keys are sorted, no timestamps or process state
leak in), which is what lets the golden-trace suite assert byte
equality across runs and across worker processes.
"""

import json
import os

from repro.obs.bus import EVENT_SCHEMA_VERSION

_JSON_KWARGS = {"sort_keys": True, "separators": (",", ":")}


class JsonlTraceWriter:
    """Writes one JSON object per event to a ``.jsonl`` stream.

    The first line is a header record carrying the event schema
    version.  An optional ``kinds`` filter keeps the output compact
    (e.g. :data:`~repro.obs.events.LIFECYCLE_KINDS` for golden traces).
    """

    def __init__(self, path_or_stream, kinds=None):
        if hasattr(path_or_stream, "write"):
            self._stream = path_or_stream
            self._owns_stream = False
            self.path = getattr(path_or_stream, "name", None)
        else:
            self._stream = open(path_or_stream, "w", encoding="utf-8", newline="\n")
            self._owns_stream = True
            self.path = path_or_stream
        self._kinds = frozenset(kinds) if kinds is not None else None
        self.events_written = 0
        self._stream.write(
            json.dumps(
                {"kind": "header", "schema": EVENT_SCHEMA_VERSION}, **_JSON_KWARGS
            )
            + "\n"
        )

    def on_event(self, event):
        if self._kinds is not None and event.kind not in self._kinds:
            return
        self._stream.write(json.dumps(event.as_dict(), **_JSON_KWARGS) + "\n")
        self.events_written += 1

    def close(self):
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class ChromeTraceExporter:
    """Exports the event stream in Chrome ``trace_event`` JSON format.

    The resulting file loads in ``chrome://tracing`` and in Perfetto
    (ui.perfetto.dev): each task is a thread whose duration slice spans
    task start to task commit (cycles are mapped to microseconds), with
    instant events marking dependence violations, squashes, and spawns.
    """

    def __init__(self, path):
        self.path = path
        self._trace_events = []
        self._named_tasks = set()

    def _name_task(self, event):
        if event.task_id in self._named_tasks:
            return
        self._named_tasks.add(event.task_id)
        self._trace_events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": event.task_id,
                "name": "thread_name",
                "args": {"name": "task {}".format(event.task_id)},
            }
        )

    def _instant(self, event, name, args):
        self._trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": event.task_id,
                "ts": event.cycle,
                "name": name,
                "cat": event.kind,
                "args": args,
            }
        )

    def on_event(self, event):
        kind = event.kind
        if kind == "task_start":
            self._name_task(event)
            self._trace_events.append(
                {
                    "ph": "B",
                    "pid": 0,
                    "tid": event.task_id,
                    "ts": event.cycle,
                    "name": "task {}".format(event.task_id),
                    "cat": "task",
                    "args": {"start_index": event.trace_index, "origin": event.origin},
                }
            )
        elif kind == "task_commit":
            self._trace_events.append(
                {
                    "ph": "E",
                    "pid": 0,
                    "tid": event.task_id,
                    "ts": event.cycle,
                    "name": "task {}".format(event.task_id),
                    "cat": "task",
                    "args": {"length": event.length},
                }
            )
        elif kind == "violation":
            self._instant(
                event,
                "violation",
                {"load_pc": event.pc, "store_pc": event.store_pc},
            )
        elif kind == "squash":
            self._instant(
                event,
                "squash ({})".format(event.cause),
                {
                    "chain_depth": event.chain_depth,
                    "squashed_instructions": event.squashed_instructions,
                },
            )
        elif kind == "spawn_accepted":
            self._instant(
                event,
                "spawn -> task {}".format(event.new_task_id),
                {"target_index": event.target_index, "category": str(event.category)},
            )

    def close(self):
        """Write the accumulated trace to ``path`` (deterministic)."""
        document = {
            "traceEvents": self._trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": EVENT_SCHEMA_VERSION,
                "time_unit": "1 cycle = 1us",
            },
        }
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "w", encoding="utf-8", newline="\n") as stream:
            json.dump(document, stream, **_JSON_KWARGS)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
