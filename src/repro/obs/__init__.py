"""Observability for the PolyFlow simulator: event bus, traces, metrics.

Event schema — version 1
========================

Every event carries ``kind, cycle, task, index (trace index), pc,
origin`` where ``origin`` is the trigger PC of the spawn point that
created the event's task (``null`` for the initial task).  Kinds and
their extra fields:

=================  ==========================================================
kind               extra fields
=================  ==========================================================
``task_start``     —  (``index`` is the task's segment start)
``hint``           ``hit`` — the hint table lookup produced a usable target
``spawn_requested``  ``target_index``
``spawn_accepted``   ``target_index, new_task_id, category, nested``
``spawn_rejected``   ``target_index, reason`` (``no-target``, ``not-tail``,
                   ``task-limit``, ``outside-segment``)
``fetch``          —  one per fetched instruction (including re-fetches)
``commit``         —  one per architecturally retired instruction
``violation``      ``store_index, store_pc`` — load speculated past a store
``squash``         ``cause, chain_depth, squashed_instructions``
``task_commit``    ``start_index, end_index, length`` — task merge/commit
=================  ==========================================================

A ``squash`` rewinds its task (fetch restarts at the task's segment
start after the restart penalty) rather than destroying it, so every
started task emits exactly one ``task_commit`` and may emit any number
of ``squash`` events before it.

Lifecycle kinds (``task_start``, ``spawn_accepted``, ``violation``,
``squash``, ``task_commit``) are emitted on every run and drive
:class:`~repro.polyflow.stats.SimStats`.  The remaining high-frequency
kinds are emitted only when a *verbose* sink is attached
(``bus.attach(sink)``; pass ``verbose=False`` to opt out), so untraced
simulations pay nothing for the instrumentation.

Usage::

    from repro.obs import EventBus, JsonlTraceWriter, MetricsAggregator

    bus = EventBus()
    writer = bus.attach(JsonlTraceWriter("run.jsonl"))
    metrics = bus.attach(MetricsAggregator())
    stats = PolyFlowCore(trace, config, hints, bus=bus).run()
    writer.close()
    print(metrics.render())
"""

from repro.obs.bus import EVENT_SCHEMA_VERSION, EventBus
from repro.obs.events import (
    ALL_KINDS,
    LIFECYCLE_KINDS,
    DependenceViolation,
    Event,
    HintLookup,
    InstructionCommitted,
    InstructionFetched,
    SpawnAccepted,
    SpawnRejected,
    SpawnRequested,
    TaskCommitted,
    TaskSquashed,
    TaskStarted,
)
from repro.obs.bridge import (
    SERVICE_EVENT_SCHEMA_VERSION,
    CallbackSink,
    EventJournal,
    fabric_event,
    service_event,
)
from repro.obs.metrics import TOTAL_KEYS, MetricsAggregator, merge_metrics
from repro.obs.sinks import ChromeTraceExporter, JsonlTraceWriter

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "Event",
    "ALL_KINDS",
    "LIFECYCLE_KINDS",
    "TaskStarted",
    "HintLookup",
    "SpawnRequested",
    "SpawnAccepted",
    "SpawnRejected",
    "InstructionFetched",
    "InstructionCommitted",
    "DependenceViolation",
    "TaskSquashed",
    "TaskCommitted",
    "JsonlTraceWriter",
    "ChromeTraceExporter",
    "MetricsAggregator",
    "merge_metrics",
    "TOTAL_KEYS",
    "SERVICE_EVENT_SCHEMA_VERSION",
    "CallbackSink",
    "EventJournal",
    "service_event",
    "fabric_event",
]
