"""Bridging the event bus into long-lived consumers (the service).

The PR-2 observability stack was built for one simulation at a time: a
sink attaches to a bus, the run finishes, the sink is read.  The
always-on exploration service (:mod:`repro.service`) instead needs a
*stream*: progress events from many simulations, batches, and admission
decisions, published by worker threads and consumed concurrently by any
number of ``/events`` subscribers.

Two small pieces provide that bridge without touching the bus itself:

* :class:`CallbackSink` — the adapter from the bus world to the stream
  world: a sink that forwards every received event object to a plain
  callable.  Attached non-verbose it keeps ``bus.verbose`` False, so a
  bridged simulation still qualifies for the event-calendar kernel and
  produces bit-identical stats.

* :class:`EventJournal` — a bounded, thread-safe, sequence-numbered
  ring of JSON-able event dicts.  Publishers append from any thread;
  consumers poll with :meth:`EventJournal.wait_since` and never block
  publishers.  Closing the journal wakes every waiting consumer so
  streams terminate cleanly on service drain.

:func:`service_event` builds the service-level progress events
(admission, batching, incidents) in the same "flat dict with a
``kind``" idiom the schema-v1 bus events serialize to, so one JSONL
stream carries both vocabularies.
"""

import collections
import threading

#: Version of the service progress-event vocabulary (bump on any kind
#: or field change; the wire schema version of :mod:`repro.service`
#: covers the request/response surface separately).
SERVICE_EVENT_SCHEMA_VERSION = 1


def service_event(kind, **fields):
    """One service progress event: a flat dict led by its ``kind``."""
    event = {"kind": kind}
    event.update(fields)
    return event


#: Kind prefix of fabric placement/incident events (``fabric.placement``,
#: ``fabric.worker_died``), namespacing them apart from the admission
#: and batching vocabulary in one shared JSONL stream.
FABRIC_EVENT_PREFIX = "fabric."


def fabric_event(kind, **fields):
    """One fabric telemetry event (a namespaced :func:`service_event`).

    Emitted by the parallel runner's fabric dispatch path — worker
    placement after each sharded grid, dead-worker incidents with the
    replanned cell count — and bridged into the service journal by the
    exploration service's runner.
    """
    return service_event(FABRIC_EVENT_PREFIX + kind, **fields)


class CallbackSink:
    """Bus sink that forwards events to a callable.

    Args:
        callback: Called with each received event *object* (use
            ``event.as_dict()`` in the callback for the JSON form).
        kinds: Optional iterable of event kinds to forward; ``None``
            forwards everything the bus delivers.
    """

    __slots__ = ("_callback", "_kinds")

    def __init__(self, callback, kinds=None):
        self._callback = callback
        self._kinds = None if kinds is None else frozenset(kinds)

    def on_event(self, event):
        if self._kinds is None or event.kind in self._kinds:
            self._callback(event)


class EventJournal:
    """Bounded, sequence-numbered, thread-safe event ring.

    Every published event gets the next monotonically increasing
    sequence number; the ring keeps the most recent ``capacity``
    events.  Consumers track their own cursor and call
    :meth:`wait_since`, which returns everything newer (possibly
    nothing, after a timeout).  A consumer that fell more than
    ``capacity`` events behind simply misses the evicted ones — the
    journal is a progress stream, not a durable log.

    ``tee``, when given, is called with every event dict under the
    journal lock (publication order preserved) — the service uses it
    to mirror the stream into an on-disk JSONL file.
    """

    def __init__(self, capacity=4096, tee=None):
        self._events = collections.deque(maxlen=max(1, int(capacity)))
        self._next_seq = 0
        self._cond = threading.Condition()
        self._closed = False
        self._tee = tee
        #: Total events ever published (not capped by the ring).
        self.published = 0

    @property
    def closed(self):
        return self._closed

    @property
    def end_seq(self):
        """The sequence number the *next* published event will get."""
        with self._cond:
            return self._next_seq

    def publish(self, event):
        """Append one event dict; returns it (dropped after close)."""
        with self._cond:
            if self._closed:
                return event
            self._events.append((self._next_seq, event))
            self._next_seq += 1
            self.published += 1
            if self._tee is not None:
                self._tee(event)
            self._cond.notify_all()
        return event

    def since(self, seq):
        """``(events, next_seq)`` for everything at or after ``seq``."""
        with self._cond:
            events = [event for number, event in self._events if number >= seq]
            return events, self._next_seq

    def wait_since(self, seq, timeout=None):
        """Like :meth:`since`, but blocks until something is newer.

        Returns immediately once events at or after ``seq`` exist or
        the journal is closed; otherwise waits up to ``timeout``
        seconds (forever when ``None``) and returns whatever arrived —
        possibly nothing.
        """
        with self._cond:
            if self._next_seq <= seq and not self._closed:
                self._cond.wait(timeout)
            events = [event for number, event in self._events if number >= seq]
            return events, self._next_seq

    def close(self):
        """Stop accepting events and wake every waiting consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
