"""Typed simulation events (schema version 1).

Every task-lifecycle transition inside the PolyFlow core is emitted as
one of the event classes below.  All events share five base fields:

* ``cycle`` — simulation cycle of the transition,
* ``task_id`` — the task the transition belongs to (the spawner for
  spawn-decision events),
* ``trace_index`` — the dynamic trace index the event anchors to,
* ``pc`` — the static PC at that trace index,
* ``origin`` — the trigger PC of the spawn point that created the
  event's task (``None`` for the initial, non-speculative task).

Subclasses add kind-specific fields listed in their ``_extra`` tuple;
:meth:`Event.as_dict` serializes base + extra fields to primitives, so
every event is JSON-ready with no per-sink knowledge of the kinds.

Lifecycle events (spawn accepted, task started, violation, squash,
task commit) are emitted on every run — :class:`~repro.polyflow.stats.
SimStats` consumes them.  High-frequency events (fetch, commit, hint
lookups, spawn requested/rejected) are only emitted when a verbose
sink is attached to the bus, so tracing costs nothing when off.
"""

from repro.obs.bus import EVENT_SCHEMA_VERSION  # noqa: F401  (re-export)

_PRIMITIVES = (int, float, str, bool)


class Event:
    """Base event: the five fields every transition carries."""

    kind = None
    _extra = ()
    __slots__ = ("cycle", "task_id", "trace_index", "pc", "origin")

    def __init__(self, cycle, task_id, trace_index, pc, origin=None):
        self.cycle = cycle
        self.task_id = task_id
        self.trace_index = trace_index
        self.pc = pc
        self.origin = origin

    def as_dict(self):
        """Serialize to a flat dict of JSON primitives."""
        payload = {
            "kind": self.kind,
            "cycle": self.cycle,
            "task": self.task_id,
            "index": self.trace_index,
            "pc": self.pc,
            "origin": self.origin,
        }
        for name in self._extra:
            value = getattr(self, name)
            if value is not None and not isinstance(value, _PRIMITIVES):
                value = str(value)
            payload[name] = value
        return payload

    def __repr__(self):
        return "{}(cycle={}, task={}, index={}, pc={:#x})".format(
            type(self).__name__, self.cycle, self.task_id, self.trace_index, self.pc
        )


class SpawnRequested(Event):
    """The spawn unit resolved a usable target for a trigger."""

    kind = "spawn_requested"
    _extra = ("target_index",)
    __slots__ = ("target_index",)

    def __init__(self, cycle, task_id, trace_index, pc, origin, target_index):
        super().__init__(cycle, task_id, trace_index, pc, origin)
        self.target_index = target_index


class SpawnAccepted(Event):
    """A spawn was performed; ``new_task_id`` begins at ``target_index``."""

    kind = "spawn_accepted"
    _extra = ("target_index", "new_task_id", "category", "nested")
    __slots__ = ("target_index", "new_task_id", "category", "nested")

    def __init__(
        self, cycle, task_id, trace_index, pc, origin,
        target_index, new_task_id, category, nested=False,
    ):
        super().__init__(cycle, task_id, trace_index, pc, origin)
        self.target_index = target_index
        self.new_task_id = new_task_id
        self.category = category
        self.nested = nested


class SpawnRejected(Event):
    """A resolvable spawn was not performed (see ``reason``)."""

    kind = "spawn_rejected"
    _extra = ("target_index", "reason")
    __slots__ = ("target_index", "reason")

    def __init__(self, cycle, task_id, trace_index, pc, origin, target_index, reason):
        super().__init__(cycle, task_id, trace_index, pc, origin)
        self.target_index = target_index
        self.reason = reason


class HintLookup(Event):
    """The spawn unit consulted its hint table at a trigger PC.

    ``hit`` is True when the hint produced a usable dynamic target
    (in-window, not suppressed by profitability feedback).
    """

    kind = "hint"
    _extra = ("hit",)
    __slots__ = ("hit",)

    def __init__(self, cycle, task_id, trace_index, pc, origin, hit):
        super().__init__(cycle, task_id, trace_index, pc, origin)
        self.hit = hit


class TaskStarted(Event):
    """A task began fetching at ``trace_index`` (its segment start)."""

    kind = "task_start"
    __slots__ = ()


class InstructionFetched(Event):
    """One instruction was fetched by ``task_id`` (verbose only)."""

    kind = "fetch"
    __slots__ = ()


class InstructionCommitted(Event):
    """One instruction retired architecturally (verbose only)."""

    kind = "commit"
    __slots__ = ()


class DependenceViolation(Event):
    """A load speculated past a conflicting older-task store."""

    kind = "violation"
    _extra = ("store_index", "store_pc")
    __slots__ = ("store_index", "store_pc")

    def __init__(self, cycle, task_id, trace_index, pc, origin, store_index, store_pc):
        super().__init__(cycle, task_id, trace_index, pc, origin)
        self.store_index = store_index
        self.store_pc = store_pc


class TaskSquashed(Event):
    """One task was squashed (its fetch rewound to the segment start).

    ``chain_depth`` is the number of tasks squashed together in this
    chain (the violator and everything younger); one event is emitted
    per squashed task, each carrying the full chain depth and its own
    discarded-instruction count.
    """

    kind = "squash"
    _extra = ("cause", "chain_depth", "squashed_instructions")
    __slots__ = ("cause", "chain_depth", "squashed_instructions")

    def __init__(
        self, cycle, task_id, trace_index, pc, origin,
        cause, chain_depth, squashed_instructions,
    ):
        super().__init__(cycle, task_id, trace_index, pc, origin)
        self.cause = cause
        self.chain_depth = chain_depth
        self.squashed_instructions = squashed_instructions


class TaskCommitted(Event):
    """A task fully retired and left the machine (merge/commit)."""

    kind = "task_commit"
    _extra = ("start_index", "end_index", "length")
    __slots__ = ("start_index", "end_index", "length")

    def __init__(self, cycle, task_id, trace_index, pc, origin, start_index, end_index):
        super().__init__(cycle, task_id, trace_index, pc, origin)
        self.start_index = start_index
        self.end_index = end_index
        self.length = end_index - start_index


#: Every event kind of schema version 1, in a stable order.
ALL_KINDS = (
    "task_start",
    "hint",
    "spawn_requested",
    "spawn_accepted",
    "spawn_rejected",
    "fetch",
    "commit",
    "violation",
    "squash",
    "task_commit",
)

#: The low-frequency task-lifecycle kinds emitted on every run (the
#: compact subset used for golden traces).
LIFECYCLE_KINDS = (
    "task_start",
    "spawn_accepted",
    "violation",
    "squash",
    "task_commit",
)
