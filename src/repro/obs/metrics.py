"""Metrics aggregation: roll the event stream into attribution tables.

The aggregator answers the question end-of-run :class:`SimStats` can't:
*which spawn points* produced the spawns, the squashes, and the useful
commits.  Each task's work is attributed to its originating spawn
point (the trigger PC that created it); the initial non-speculative
task is attributed to the pseudo-origin ``"entry"``.

Attach verbose (the default) so per-instruction commit events flow;
without them only spawn/squash counts are available.
"""

_ENTRY = "entry"

#: Keys of the totals dict (and columns of the attribution tables).
TOTAL_KEYS = (
    "spawns",
    "squashes",
    "violations",
    "committed",
    "squashed_instructions",
    "tasks_committed",
    "mean_task_length",
    "useful_commit_ratio",
)


def _origin_key(origin):
    return _ENTRY if origin is None else origin


class _OriginMetrics:
    """Counters attributed to one spawn point (trigger PC)."""

    __slots__ = (
        "spawns",
        "squashes",
        "violations",
        "committed",
        "squashed_instructions",
        "tasks_committed",
        "task_length_sum",
    )

    def __init__(self):
        self.spawns = 0
        self.squashes = 0
        self.violations = 0
        self.committed = 0
        self.squashed_instructions = 0
        self.tasks_committed = 0
        self.task_length_sum = 0

    def as_dict(self):
        return {
            "spawns": self.spawns,
            "squashes": self.squashes,
            "violations": self.violations,
            "committed": self.committed,
            "squashed_instructions": self.squashed_instructions,
            "tasks_committed": self.tasks_committed,
            "task_length_sum": self.task_length_sum,
        }


def _derive(totals):
    """Add the derived ratios to a raw totals dict (in place)."""
    tasks = totals.get("tasks_committed", 0)
    totals["mean_task_length"] = (
        totals.get("task_length_sum", 0) / tasks if tasks else 0.0
    )
    work = totals.get("committed", 0) + totals.get("squashed_instructions", 0)
    totals["useful_commit_ratio"] = totals.get("committed", 0) / work if work else 1.0
    return totals


class MetricsAggregator:
    """A bus sink accumulating per-spawn-point attribution counters."""

    def __init__(self):
        self._by_origin = {}
        self._block_cache = None

    def _bucket(self, origin):
        key = _origin_key(origin)
        bucket = self._by_origin.get(key)
        if bucket is None:
            bucket = self._by_origin[key] = _OriginMetrics()
        return bucket

    def on_event(self, event):
        kind = event.kind
        if kind == "commit":
            self._bucket(event.origin).committed += 1
        elif kind == "spawn_accepted":
            # Attributed to the *deciding* trigger (event.pc), which is
            # the origin all of the new task's later events will carry.
            self._bucket(event.pc).spawns += 1
        elif kind == "squash":
            bucket = self._bucket(event.origin)
            bucket.squashes += 1
            bucket.squashed_instructions += event.squashed_instructions
        elif kind == "violation":
            self._bucket(event.origin).violations += 1
        elif kind == "task_commit":
            bucket = self._bucket(event.origin)
            bucket.tasks_committed += 1
            bucket.task_length_sum += event.length

    def record_block_cache(self, delta):
        """Stamp the run's block-cache counter movement onto the snapshot.

        Not event-driven: the compiled-block caches are process-global
        (see :func:`repro.sim.blocks.counters_delta`), so the harness
        that owns the run attributes the delta explicitly.  Repeated
        calls accumulate.
        """
        if not delta:
            return
        if self._block_cache is None:
            self._block_cache = dict(delta)
        else:
            for key, value in delta.items():
                self._block_cache[key] = self._block_cache.get(key, 0) + value

    # -- results ---------------------------------------------------------------

    def origins(self):
        """Sorted origin keys ("entry" first, then trigger PCs)."""
        return sorted(self._by_origin, key=lambda key: (key != _ENTRY, key))

    def per_origin(self):
        """``{origin: raw counters + derived ratios}`` for every origin."""
        return {
            key: _derive(metrics.as_dict())
            for key, metrics in self._by_origin.items()
        }

    def totals(self):
        """Suite-level totals with derived ratios (see TOTAL_KEYS)."""
        totals = {
            "spawns": 0,
            "squashes": 0,
            "violations": 0,
            "committed": 0,
            "squashed_instructions": 0,
            "tasks_committed": 0,
            "task_length_sum": 0,
        }
        for metrics in self._by_origin.values():
            for key, value in metrics.as_dict().items():
                totals[key] += value
        return _derive(totals)

    def as_dict(self):
        """Picklable/JSON-able snapshot (``{"origins": …, "totals": …}``).

        Origin keys are stringified so the snapshot survives a JSON
        round trip unchanged.  ``block_cache`` appears only when a
        harness stamped one (see :meth:`record_block_cache`).
        """
        snapshot = {
            "origins": {
                str(key): metrics for key, metrics in self.per_origin().items()
            },
            "totals": self.totals(),
        }
        if self._block_cache is not None:
            snapshot["block_cache"] = dict(self._block_cache)
        return snapshot

    def render(self, title=None):
        """The per-spawn-point attribution table as ASCII."""
        from repro.experiments.reporting import format_spawn_point_attribution

        return format_spawn_point_attribution(self.as_dict(), title=title)


def merge_metrics(snapshots):
    """Merge aggregator snapshots (``as_dict`` outputs) into one.

    Used by the parallel runner to combine the metrics shipped back
    from worker processes into per-policy suite totals.
    """
    merged_origins = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for origin, metrics in snapshot.get("origins", {}).items():
            bucket = merged_origins.setdefault(
                origin,
                {
                    "spawns": 0,
                    "squashes": 0,
                    "violations": 0,
                    "committed": 0,
                    "squashed_instructions": 0,
                    "tasks_committed": 0,
                    "task_length_sum": 0,
                },
            )
            for key in bucket:
                bucket[key] += metrics.get(key, 0)
    totals = {
        "spawns": 0,
        "squashes": 0,
        "violations": 0,
        "committed": 0,
        "squashed_instructions": 0,
        "tasks_committed": 0,
        "task_length_sum": 0,
    }
    for metrics in merged_origins.values():
        for key in totals:
            totals[key] += metrics.get(key, 0)
    block_cache = None
    for snapshot in snapshots:
        if not snapshot:
            continue
        delta = snapshot.get("block_cache")
        if not delta:
            continue
        if block_cache is None:
            block_cache = dict(delta)
        else:
            for key, value in delta.items():
                block_cache[key] = block_cache.get(key, 0) + value
    merged = {
        "origins": {
            origin: _derive(dict(metrics))
            for origin, metrics in merged_origins.items()
        },
        "totals": _derive(totals),
    }
    if block_cache is not None:
        merged["block_cache"] = block_cache
    return merged
