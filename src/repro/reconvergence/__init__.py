"""Dynamic reconvergence prediction and rec_pred spawning (Figure 12)."""

from repro.reconvergence.predictor import (
    CATEGORY_BELOW,
    CATEGORY_UNKNOWN,
    ReconvergencePredictor,
)
from repro.reconvergence.spawning import (
    ReconvergenceSpawnUnit,
    build_reconvergence_spawner,
    resolve_reconvergence_targets,
)

__all__ = [
    "ReconvergencePredictor",
    "CATEGORY_BELOW",
    "CATEGORY_UNKNOWN",
    "ReconvergenceSpawnUnit",
    "build_reconvergence_spawner",
    "resolve_reconvergence_targets",
]
