"""Dynamic reconvergence prediction (Collins, Tullsen and Wang).

A run-time mechanism that learns, for each branch, the PC where control
flow reconverges — approximating the immediate postdominator without
compiler support (Section 2.4 of the paper).  The predictor profiles
the committed instruction stream; the most important of Collins et
al.'s four categories covers branches whose reconvergence PC lies
*below* the branch PC in the program layout, which captures "forward
branches corresponding to if and if-else statements, as well as
backward loop branches".

Mechanism:

* **Backward conditional branches** (loop branches): the reconvergence
  candidate is the static fall-through (branch PC + 4) — the loop exit
  continues below the branch.  Confidence builds over the first few
  dynamic instances (warm-up).
* **Forward conditional branches and indirect jumps**: after each
  dynamic instance, the PCs greater than the branch PC committed before
  the branch executes again (bounded by a window) form that instance's
  *continuation set*.  The rolling intersection of continuation sets
  converges on the PCs common to every path — the join and everything
  after it — and the candidate is its minimum.  Two consecutive stable
  candidates train the branch.

The model keeps the paper's two rec_pred failure modes: warm-up (no
prediction until trained) and hard-to-identify reconvergences (an
intersection that keeps collapsing never trains).
"""

#: Collins et al. category labels.
CATEGORY_BELOW = "below"
CATEGORY_UNKNOWN = "unknown"


class _BranchState:
    """Learning state for one static branch."""

    __slots__ = (
        "pc",
        "is_backward",
        "active",
        "window_left",
        "window_pcs",
        "rolling",
        "merged_windows",
        "candidate",
        "confidence",
        "trained",
    )

    def __init__(self, pc, is_backward):
        self.pc = pc
        self.is_backward = is_backward
        self.active = False
        self.window_left = 0
        self.window_pcs = None
        #: Rolling intersection of continuation sets.
        self.rolling = None
        self.merged_windows = 0
        self.candidate = None
        self.confidence = 0
        self.trained = False


class ReconvergencePredictor:
    """Learns branch reconvergence points from the retirement stream."""

    def __init__(self, window_size=64, confidence_threshold=2):
        self.window_size = window_size
        self.confidence_threshold = confidence_threshold
        self._branches = {}
        self._active = []
        self.trained_branches = 0
        self.windows_closed = 0

    def observe(self, pc, trigger_outcome=None, branch_target=None):
        """Feed one committed instruction.

        Args:
            pc: The instruction's address.
            trigger_outcome: None for non-branches.  For conditional
                branches pass True/False (taken/not-taken); for
                non-return indirect jumps pass the string ``"indirect"``.
            branch_target: Static target PC of a conditional branch
                (used to detect backward/loop branches).
        """
        if self._active:
            survivors = []
            for state in self._active:
                if pc == state.pc:
                    # The branch executes again: the continuation of the
                    # previous instance ends here.
                    self._close_window(state)
                    continue
                if pc > state.pc:
                    state.window_pcs.add(pc)
                state.window_left -= 1
                if state.window_left <= 0:
                    self._close_window(state)
                else:
                    survivors.append(state)
            self._active = survivors
        if trigger_outcome is None:
            return
        state = self._branches.get(pc)
        if state is None:
            is_backward = (
                trigger_outcome != "indirect"
                and branch_target is not None
                and branch_target <= pc
            )
            state = _BranchState(pc, is_backward)
            self._branches[pc] = state
        if state.is_backward and state.trained:
            return
        if state.is_backward:
            # Loop branch: the "below" reconvergence is the static fall
            # through; a couple of sightings build confidence (warm-up).
            state.candidate = pc + 4
            state.confidence += 1
            if state.confidence >= self.confidence_threshold:
                state.trained = True
                self.trained_branches += 1
            return
        if state.active:
            return
        state.active = True
        state.window_left = self.window_size
        state.window_pcs = set()
        self._active.append(state)

    def _close_window(self, state):
        state.active = False
        self.windows_closed += 1
        window = state.window_pcs
        state.window_pcs = None
        if not window:
            return
        if state.rolling is None:
            state.rolling = window
            state.merged_windows = 1
            return
        intersection = state.rolling & window
        state.merged_windows += 1
        if not intersection:
            # Hard-to-identify reconvergence: start over.
            state.rolling = window
            state.merged_windows = 1
            state.confidence = 0
            self._untrain(state)
            return
        state.rolling = intersection
        sample = min(intersection)
        if state.candidate == sample:
            state.confidence += 1
            # Multi-target branches (indirect dispatches) need several
            # merged windows before the intersection has seen enough
            # distinct paths to be trustworthy.
            if (
                state.confidence >= self.confidence_threshold
                and state.merged_windows >= 4
                and not state.trained
            ):
                state.trained = True
                self.trained_branches += 1
        else:
            # The intersection shrank below the old candidate: the old
            # prediction was premature, so retract it and re-learn.
            self._untrain(state)
            state.candidate = sample
            state.confidence = 1

    def _untrain(self, state):
        if state.trained:
            state.trained = False
            self.trained_branches -= 1

    def predict(self, pc):
        """The learned reconvergence PC of the branch at ``pc``.

        Returns None while the branch is warming up (or was never
        observed, or its reconvergence is unlearnable).
        """
        state = self._branches.get(pc)
        if state is None or not state.trained:
            return None
        return state.candidate

    def category_of(self, pc):
        """The category of the branch at ``pc``."""
        state = self._branches.get(pc)
        if state is None or not state.trained:
            return CATEGORY_UNKNOWN
        return CATEGORY_BELOW

    def branch_count(self):
        """Number of distinct branches observed."""
        return len(self._branches)

    def accuracy_against(self, ipdom_by_branch_pc):
        """Fraction of trained branches matching the true ipdom PC."""
        matched = 0
        trained = 0
        for pc, state in self._branches.items():
            if not state.trained or pc not in ipdom_by_branch_pc:
                continue
            trained += 1
            if state.candidate == ipdom_by_branch_pc[pc]:
                matched += 1
        if not trained:
            return 0.0
        return matched / trained
