"""Spawning from dynamically predicted reconvergence points (Figure 12).

"Upon reaching any branch, the system identifies the reconvergence
point of that branch as a possible spawn point. ... In addition, the
system also spawns procedure fall-throughs at call instructions."

The spawn unit built here resolves each dynamic trigger with the
predictor state *as of that point in the stream*, so warm-up effects
are modelled: a branch spawns nothing until its reconvergence has been
learned from earlier committed instances.
"""

from bisect import bisect_right
from collections import defaultdict

from repro.isa.instructions import REGISTER_ALIASES
from repro.polyflow.spawn_unit import SpawnUnit
from repro.reconvergence.predictor import ReconvergencePredictor
from repro.spawn.hints import HintEntry, HintTable
from repro.spawn.points import SpawnCategory, SpawnPoint

_RA = REGISTER_ALIASES["ra"]


class ReconvergenceSpawnUnit(SpawnUnit):
    """A Task Spawn Unit driven by per-instance resolved targets."""

    def __init__(self, trace, hint_table, config, target_index):
        self._precomputed_targets = target_index
        super().__init__(trace, hint_table, config)

    def _resolve_targets(self, trace):
        return self._precomputed_targets


def _is_switch(inst):
    return inst.is_return_like and inst.rs != _RA


def resolve_reconvergence_targets(trace, config, predictor=None):
    """Stream the trace through the predictor and resolve spawns.

    Returns:
        ``(target_index, spawn_pc_by_trigger, predictor)`` where
        ``target_index[i]`` is the trace index a spawn triggered at
        record ``i`` would start at (or -1), and ``spawn_pc_by_trigger``
        maps each trigger PC to the spawn PC it most recently used.
    """
    if predictor is None:
        predictor = ReconvergencePredictor()
    records = trace.records
    count = len(records)
    target_index = [-1] * count
    spawn_pc_by_trigger = {}

    positions = defaultdict(list)
    for index, record in enumerate(records):
        positions[record.inst.pc].append(index)

    def next_instance(pc, after):
        slots = positions.get(pc)
        if not slots:
            return -1
        position = bisect_right(slots, after)
        if position >= len(slots):
            return -1
        return slots[position]

    min_distance = config.min_spawn_distance
    max_distance = config.max_spawn_distance

    for index, record in enumerate(records):
        inst = record.inst
        spawn_pc = None
        if inst.is_conditional_branch or _is_switch(inst):
            # Prediction uses only state learned from older instances.
            spawn_pc = predictor.predict(inst.pc)
        elif inst.is_call:
            spawn_pc = inst.fall_through_pc()
        if spawn_pc is not None:
            target = next_instance(spawn_pc, index)
            if target >= 0:
                distance = target - index
                if min_distance <= distance <= max_distance:
                    target_index[index] = target
                    spawn_pc_by_trigger[inst.pc] = spawn_pc
        # Train after predicting: the retirement stream reaches the
        # predictor after the fetch-time spawn decision.
        if inst.is_conditional_branch:
            predictor.observe(inst.pc, record.taken, inst.target)
        elif _is_switch(inst):
            predictor.observe(inst.pc, "indirect")
        else:
            predictor.observe(inst.pc)

    return target_index, spawn_pc_by_trigger, predictor


def build_reconvergence_spawner(prepared, config, predictor=None):
    """Build the Figure 12 spawn unit for a prepared workload.

    Args:
        prepared: A :class:`~repro.workloads.suite.PreparedWorkload`.
        config: The machine configuration.
        predictor: Optional pre-built predictor (default: fresh, so
            warm-up effects are modelled).

    Returns:
        A :class:`ReconvergenceSpawnUnit` ready to drop into a
        :class:`~repro.polyflow.core.PolyFlowCore`.
    """
    trace = prepared.trace
    target_index, spawn_pc_by_trigger, predictor = resolve_reconvergence_targets(
        trace, config, predictor
    )

    # Categorize triggers via the static analysis where possible, so
    # statistics remain comparable with the compiler-driven policies.
    static_by_trigger = {
        point.trigger_pc: point
        for point in prepared.spawn_analysis.postdominator_points
    }
    table = HintTable()
    for trigger_pc, spawn_pc in spawn_pc_by_trigger.items():
        static_point = static_by_trigger.get(trigger_pc)
        if static_point is not None:
            category = static_point.category
        else:
            category = SpawnCategory.OTHER
        point = SpawnPoint(trigger_pc, spawn_pc, category)
        table.add(HintEntry(point))
    return ReconvergenceSpawnUnit(trace, table, config, target_index)
