"""Front-end models: branch prediction and fetch arbitration."""

from repro.frontend.branch_predictor import (
    GSHARE_COUNTERS,
    GSHARE_HISTORY_BITS,
    GsharePredictor,
    IndirectTargetPredictor,
    ReturnAddressStack,
)
from repro.frontend.icount import DEFAULT_HEAD_BIAS, select_fetch_tasks

__all__ = [
    "GsharePredictor",
    "IndirectTargetPredictor",
    "ReturnAddressStack",
    "select_fetch_tasks",
    "GSHARE_COUNTERS",
    "GSHARE_HISTORY_BITS",
    "DEFAULT_HEAD_BIAS",
]
