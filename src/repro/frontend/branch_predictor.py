"""Branch direction/target prediction.

Figure 8 specifies a 16Kbit gshare predictor with 8 bits of global
history: 8192 two-bit saturating counters indexed by
``(pc >> 2) XOR (history << shift)``.  Indirect-jump targets are
predicted by a last-target table, and returns by a per-task return
address stack.
"""

#: Figure 8: 16Kbit of 2-bit counters.
GSHARE_COUNTERS = 8192
GSHARE_HISTORY_BITS = 8


class GsharePredictor:
    """16Kbit gshare with 8 bits of global history."""

    def __init__(self, counters=GSHARE_COUNTERS, history_bits=GSHARE_HISTORY_BITS):
        self.counters = [2] * counters  # initialized weakly taken
        self.index_mask = counters - 1
        self.history_mask = (1 << history_bits) - 1
        # Spread the short history across the index.
        self.history_shift = max(0, counters.bit_length() - 1 - history_bits)
        self.history = 0

    def _index(self, pc):
        return ((pc >> 2) ^ (self.history << self.history_shift)) & self.index_mask

    def predict(self, pc):
        """Predict the direction of the branch at ``pc``."""
        return self.counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        """Train with the resolved direction and shift the history."""
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            if counter < 3:
                self.counters[index] = counter + 1
        else:
            if counter > 0:
                self.counters[index] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask

    def predict_and_update(self, pc, taken):
        """Predict then immediately train; returns the prediction.

        The trace-driven frontend resolves branches from the committed
        trace, so prediction and training happen at fetch.
        """
        prediction = self.predict(pc)
        self.update(pc, taken)
        return prediction


class IndirectTargetPredictor:
    """Last-target prediction for indirect jumps (BTB-style)."""

    def __init__(self):
        self._last_target = {}

    def predict(self, pc):
        """The last observed target of the jump at ``pc``, or None."""
        return self._last_target.get(pc)

    def update(self, pc, target):
        """Record the resolved target."""
        self._last_target[pc] = target

    def predict_and_update(self, pc, target):
        """Predict, train, and return whether the prediction was right."""
        prediction = self._last_target.get(pc)
        self._last_target[pc] = target
        return prediction == target


class ReturnAddressStack:
    """A bounded return address stack (one per task)."""

    def __init__(self, depth=16):
        self.depth = depth
        self._stack = []

    def push(self, return_pc):
        """Push the return address of a call."""
        if len(self._stack) >= self.depth:
            del self._stack[0]
        self._stack.append(return_pc)

    def pop(self):
        """Pop a predicted return address, or None when empty."""
        if self._stack:
            return self._stack.pop()
        return None

    def clear(self):
        """Empty the stack (e.g. after a task squash)."""
        del self._stack[:]

    def copy_from(self, other):
        """Adopt another stack's contents (spawned tasks inherit the
        spawner's call context, like the rest of its rename state)."""
        self._stack = list(other._stack)

    def __len__(self):
        return len(self._stack)
