"""Biased-ICount fetch arbitration between tasks.

PolyFlow "can fetch from two tasks in a cycle, with a maximum of one
taken branch per cycle per task.  The instruction fetch unit uses
biased ICount to prioritize among different tasks" (Wallace et al.,
Threaded Multiple Path Execution).  The bias favours the primary
(least-speculative) path: the oldest fetch-ready task always gets the
first port, because retirement — and therefore every shared resource —
drains in task order.  Remaining ports go to the tasks with the fewest
in-flight instructions (plain ICount), which spreads fetch over tasks
that have had the least opportunity.
"""

#: Kept for API compatibility; the age bias is absolute (see above).
DEFAULT_HEAD_BIAS = 16


def select_fetch_tasks(candidates, fetch_ports, head_bias=DEFAULT_HEAD_BIAS):
    """Choose which tasks fetch this cycle.

    Args:
        candidates: Iterable of ``(task_id, in_flight_count, age_rank)``
            tuples for tasks able to fetch this cycle.  ``age_rank`` is
            the task's position in program order (0 = oldest); a boolean
            ``is_head`` flag is accepted for backward compatibility
            (True sorts as rank 0, False as rank 1).
        fetch_ports: Maximum number of tasks that may fetch per cycle.
        head_bias: Unused tuning knob kept for configuration
            compatibility; the age bias is absolute.

    Returns:
        List of up to ``fetch_ports`` task ids, highest priority first.
    """
    ranked = []
    for task_id, in_flight, age_rank in candidates:
        if age_rank is True:
            age_rank = 0
        elif age_rank is False:
            age_rank = 1
        ranked.append((age_rank, task_id, in_flight))
    if not ranked:
        return []
    ranked.sort()
    # Port one: the oldest fetch-ready task (the primary path).
    selected = [ranked[0][1]]
    # Remaining ports: plain ICount over the rest.
    rest = sorted(ranked[1:], key=lambda item: (item[2], item[0]))
    for age_rank, task_id, in_flight in rest[: fetch_ports - 1]:
        selected.append(task_id)
    return selected
