"""Experiment harness: regenerate every evaluation figure of the paper."""

from repro.experiments.ablations import (
    AblationResult,
    divert_release_ablation,
    mispredict_penalty_ablation,
    nested_spawn_ablation,
    rob_size_ablation,
    spawn_distance_ablation,
    task_count_ablation,
)
from repro.experiments.figures import (
    FIGURE9_SPECS,
    FIGURE10_SPECS,
    FIGURE12_SPECS,
    figure_jobs,
    figure_jobs_union,
    figure5,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    headline_ratios,
)
from repro.experiments.parallel import (
    ParallelExperimentRunner,
    ResultCache,
    RunSummary,
)
from repro.experiments.runner import (
    REC_PRED_SPEC,
    SUPERSCALAR_SPEC,
    ExperimentRunner,
    build_core,
    simulate_job,
)

__all__ = [
    "ExperimentRunner",
    "ParallelExperimentRunner",
    "ResultCache",
    "RunSummary",
    "build_core",
    "simulate_job",
    "REC_PRED_SPEC",
    "SUPERSCALAR_SPEC",
    "figure5",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "headline_ratios",
    "figure_jobs",
    "figure_jobs_union",
    "FIGURE9_SPECS",
    "FIGURE10_SPECS",
    "FIGURE12_SPECS",
    "AblationResult",
    "task_count_ablation",
    "rob_size_ablation",
    "nested_spawn_ablation",
    "mispredict_penalty_ablation",
    "spawn_distance_ablation",
    "divert_release_ablation",
]
