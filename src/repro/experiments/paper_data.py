"""Numbers reported by the paper, for shape comparison.

Figure values were read off the published bar charts, so they are
approximate (+/- a few percentage points).  They are used only to
compare *shape* — per-benchmark winners, orderings, and rough ratios —
never to assert absolute agreement (the substrate here is a synthetic
workload suite on a trace-driven model; see DESIGN.md).
"""

#: Superscalar IPCs printed under Figure 9's x-axis (exact, from text).
FIGURE9_SUPERSCALAR_IPC = {
    "bzip2": 2.8,
    "crafty": 1.69,
    "gap": 2.52,
    "gcc": 1.43,
    "gzip": 2.43,
    "mcf": 1.91,
    "parser": 2.06,
    "perlbmk": 1.33,
    "twolf": 1.70,
    "vortex": 1.93,
    "vpr.place": 1.98,
    "vpr.route": 2.70,
}

#: Figure 5: static spawn-point totals shown on top of each bar (exact).
FIGURE5_TOTAL_STATIC_SPAWNS = {
    "bzip2": 465,
    "crafty": 1941,
    "gap": 2881,
    "gcc": 13707,
    "gzip": 467,
    "mcf": 381,
    "parser": 2179,
    "perlbmk": 1277,
    "twolf": 2031,
    "vortex": 4041,
    "vpr.place": 1225,
    "vpr.route": 1842,
}

#: Figure 9 speedups (%) over the superscalar, read from the bars.
FIGURE9_SPEEDUPS = {
    "bzip2": {"loop": 3, "loopFT": 8, "procFT": 4, "hammock": 14, "other": 2, "postdoms": 25},
    "crafty": {"loop": -2, "loopFT": 3, "procFT": 4, "hammock": 9, "other": 4, "postdoms": 36},
    "gap": {"loop": 2, "loopFT": 6, "procFT": 25, "hammock": 6, "other": 2, "postdoms": 35},
    "gcc": {"loop": -3, "loopFT": 8, "procFT": 10, "hammock": 8, "other": 3, "postdoms": 22},
    "gzip": {"loop": -8, "loopFT": 4, "procFT": 1, "hammock": 5, "other": 1, "postdoms": 10},
    "mcf": {"loop": 2, "loopFT": 4, "procFT": 2, "hammock": 26, "other": 6, "postdoms": 42},
    "parser": {"loop": -4, "loopFT": 4, "procFT": 8, "hammock": 8, "other": 2, "postdoms": 21},
    "perlbmk": {"loop": 4, "loopFT": 4, "procFT": 6, "hammock": 10, "other": 15, "postdoms": 31},
    "twolf": {"loop": 20, "loopFT": 20, "procFT": 2, "hammock": 17, "other": 2, "postdoms": 42},
    "vortex": {"loop": 1, "loopFT": 4, "procFT": 40, "hammock": 6, "other": 2, "postdoms": 56},
    "vpr.place": {"loop": 3, "loopFT": 9, "procFT": 2, "hammock": 10, "other": 2, "postdoms": 24},
    "vpr.route": {"loop": 8, "loopFT": 30, "procFT": 1, "hammock": 5, "other": 1, "postdoms": 29},
}

#: Figure 11 losses (% speedup, normalized to superscalar IPC) the text
#: calls out explicitly (exact, from prose).
FIGURE11_TEXT_CLAIMS = {
    ("vpr.route", "postdoms-loopFT"): 29,
    ("vortex", "postdoms-procFT"): 56,
    ("perlbmk", "postdoms-hammock"): 21,
    ("mcf", "postdoms-hammock"): 16,
}

#: Headline claims (from the abstract/conclusion).
HEADLINE_POSTDOMS_OVER_BEST_HEURISTIC = 2.0  # "more than double"
HEADLINE_POSTDOMS_OVER_BEST_COMBINATION = 1.33  # "33% more speedup"


def figure9_average(spec):
    """Paper's Figure 9 average for one policy spec."""
    values = [row[spec] for row in FIGURE9_SPEEDUPS.values()]
    return sum(values) / len(values)
