"""Batched grid scheduler: warm pools, job chunks, cost ordering.

PR 3's fast-path kernel made individual simulations cheap enough that
the original one-future-per-cell fan-out lost to serial execution: each
grid cell paid a pool ``submit``, a per-worker analysis load, and a
full pickled :class:`~repro.polyflow.stats.SimStats` round-trip.  This
module replaces that with a scheduler that treats the grid as a batch:

* **Warm worker pool** — one module-level
  :class:`~concurrent.futures.ProcessPoolExecutor` (fork start method
  where available) reused across ``prefetch`` calls within a process.
  Workers pre-materialize the analysis/predecode arenas once via the
  pool initializer (a fork start inherits the parent's arenas for
  free), not once per job.

* **Cost model** — a grid cell's estimated cost is its workload's
  committed-trace length, which the content-keyed
  :class:`~repro.analysis.pipeline.AnalysisCache` has already computed
  by the time the cell is scheduled (estimating the cost of a cache
  miss prepares the program the simulation needs anyway).

* **Chunking** — cells are grouped into chunks sized by estimated
  cost and shipped as *one* pickle per chunk; chunks are submitted
  longest-expected-first so the straggler tail collapses.

* **Cheap-cell short-circuit** — cells whose estimated cost falls
  below :data:`INLINE_COST_THRESHOLD` run inline in the parent, so
  tiny grids (and single-core machines, where a process pool can only
  add overhead) never pay pool spin-up at all.

* **Slim transport** — workers return compact stat tuples
  (:func:`pack_stats`) rather than full pickled ``SimStats`` objects;
  the parent reconstructs bit-identical stats with
  :func:`unpack_stats`.

Scheduling never changes results: every cell is a deterministic
simulation keyed by its job tuple, and the parent merges outcomes into
a keyed memo, so output is bit-identical to serial under every
``--jobs`` value, chunk size, and completion order.
"""

import atexit
import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.analysis.pipeline import configure_disk_cache
from repro.errors import ConfigurationError

#: Cells whose estimated cost (committed-trace instructions) falls
#: below this run inline in the parent: at fast-path kernel speed such
#: a simulation finishes in tens of milliseconds, below what a pool
#: round-trip can amortize.
INLINE_COST_THRESHOLD = 5000

#: Chunks per worker the cost scheduler aims for.  Over-partitioning
#: keeps workers busy when chunk costs are estimates; the
#: longest-expected-first submission order does the actual balancing.
OVERPARTITION = 4

#: Cost-ordered chunking (longest-expected-first).  The default.
SCHEDULE_COST = "cost"
#: Fixed-size chunks in grid order (for comparison/debugging).
SCHEDULE_FIFO = "fifo"
SCHEDULES = (SCHEDULE_COST, SCHEDULE_FIFO)

#: Nominal cost of a grid cell the shared artifact store already
#: holds: a digest-verified fetch, not a simulation.  Non-zero so the
#: shard planner still spreads store-held cells across workers.
STORE_HELD_COST = 1


def usable_cpus():
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# -- cost model -------------------------------------------------------------------


def job_cost(name, scale, store=None, digest=None):
    """Estimated cost of one grid cell: its committed-trace length.

    Simulation time is linear in committed instructions (the kernel
    retires the whole trace), so the trace length is the cost unit.
    The policy spec does not enter: every policy retires the same
    trace.  Four tiers, cheapest sufficient one wins:

    1. a cached exact length (preparation memo, or the analysis
       cache's memory/disk layers) — free and exact;
    2. a shared-store probe: when ``store``/``digest`` name an
       artifact the fabric store already holds, the cell costs
       :data:`STORE_HELD_COST` — it will be *fetched*, not simulated,
       so estimating (let alone preparing) its workload would price
       work nobody is going to do;
    3. the closed-form structural estimate of
       :func:`repro.analysis.estimate.estimated_trace_length` for
       synthesized catalog scenarios — ~20% relative error, which the
       over-partitioned longest-first schedule absorbs, and it spares
       a cold sweep from preparing every cell up front just to cost
       it;
    4. preparing the workload (named workloads on a cold cache only —
       the handful of paper benchmarks, never the 2592-cell catalog).

    The store probe sits *above* the estimator so a store-held named
    workload on a cold cache never triggers the tier-4 ``prepare``
    fallback in fabric costing paths.
    """
    from repro.analysis.estimate import estimated_trace_length
    from repro.workloads.suite import (
        peek_workload_trace_length,
        workload_trace_length,
    )

    cached = peek_workload_trace_length(name, scale)
    if cached is not None:
        return cached
    if store is not None and digest is not None and store.contains(digest):
        return STORE_HELD_COST
    estimated = estimated_trace_length(name, scale)
    if estimated is not None:
        return estimated
    return workload_trace_length(name, scale)


# -- slim result transport --------------------------------------------------------

#: ``SimStats`` attributes that need container-aware packing.
_PACK_CONTAINERS = ("spawns_by_category", "cache_stats")


def pack_stats(stats):
    """Compact picklable payload of one ``SimStats`` (see ``unpack_stats``).

    Plain counters are shipped as a sorted attribute tuple and the two
    container attributes as item tuples — no class instance, no
    defaultdict machinery — one flat pickle per result.  Packing is
    attribute-generic, so counters added to ``SimStats.__init__`` are
    carried automatically.
    """
    plain = tuple(
        sorted(
            (
                (name, value)
                for name, value in vars(stats).items()
                if name not in _PACK_CONTAINERS
            ),
            key=lambda item: item[0],
        )
    )
    spawns = tuple(
        sorted(stats.spawns_by_category.items(), key=lambda item: str(item[0]))
    )
    cache = tuple(sorted(stats.cache_stats.items(), key=lambda item: str(item[0])))
    return plain, spawns, cache


def unpack_stats(payload):
    """Reconstruct the exact ``SimStats`` :func:`pack_stats` flattened."""
    from repro.polyflow.stats import SimStats

    plain, spawns, cache = payload
    stats = SimStats()
    for name, value in plain:
        setattr(stats, name, value)
    stats.spawns_by_category.update(dict(spawns))
    stats.cache_stats = dict(cache)
    return stats


# -- chunk planning ---------------------------------------------------------------


class GridSchedule:
    """The executable plan for one pending grid.

    ``inline`` cells run in the parent (cheap cells and any grid the
    pool cannot help); ``chunks`` is a longest-expected-first list of
    job lists for the worker pool.
    """

    __slots__ = ("inline", "chunks", "workers", "schedule", "cpus")

    def __init__(self, inline, chunks, workers, schedule, cpus):
        self.inline = inline
        self.chunks = chunks
        self.workers = workers
        self.schedule = schedule
        self.cpus = cpus

    @property
    def pooled_jobs(self):
        return sum(len(chunk) for chunk in self.chunks)

    def describe(self):
        if not self.chunks:
            return "{} inline".format(len(self.inline))
        return "{} inline, {} pooled in {} chunks across {} workers".format(
            len(self.inline), self.pooled_jobs, len(self.chunks), self.workers
        )


def split_inline(jobs, costs, workers, inline_threshold=INLINE_COST_THRESHOLD):
    """Partition cells into parent-inline and pool-worthy lists.

    Cells cheaper than ``inline_threshold`` stay in the parent.  When
    fewer than two cells remain for the pool — or fewer than two
    workers are available (a single-core machine, or ``--jobs 1``) —
    everything runs inline: a pool could only add overhead.

    Returns ``(inline_jobs, pooled_jobs, pooled_costs)``.
    """
    inline, pooled, pooled_costs = [], [], []
    for job, cost in zip(jobs, costs):
        if cost < inline_threshold:
            inline.append(job)
        else:
            pooled.append(job)
            pooled_costs.append(cost)
    if workers < 2 or len(pooled) < 2:
        return list(jobs), [], []
    return inline, pooled, pooled_costs


def plan_chunks(jobs, costs, workers, max_chunk_jobs=None, schedule=SCHEDULE_COST):
    """Group ``jobs`` into pool chunks, longest-expected-first.

    Under :data:`SCHEDULE_COST` the cells are ordered by descending
    estimated cost and greedily packed into chunks whose total cost
    targets ``sum(costs) / (workers * OVERPARTITION)`` — expensive
    cells become singleton chunks, cheap cells coalesce so each pool
    round-trip amortizes over several simulations.  The returned chunk
    list is ordered by descending total cost, which eliminates the
    straggler tail: the most expensive work is in flight first.

    ``max_chunk_jobs`` (the ``--chunk`` knob) caps cells per chunk; a
    cap at or above the grid size is vacuous and ignored, so an
    oversized ``--chunk`` never collapses the grid into one chunk on
    one worker.  :data:`SCHEDULE_FIFO` keeps grid order with fixed-size
    chunks.  The plan is a pure function of its inputs — same grid,
    same plan.
    """
    if schedule not in SCHEDULES:
        raise ConfigurationError(
            "unknown schedule {!r}; choose from {}".format(schedule, SCHEDULES)
        )
    if not jobs:
        return []
    cap = max_chunk_jobs if max_chunk_jobs and max_chunk_jobs > 0 else None
    if cap is not None and cap >= len(jobs):
        cap = None
    if schedule == SCHEDULE_FIFO:
        size = cap or max(1, -(-len(jobs) // max(1, workers * OVERPARTITION)))
        return [list(jobs[i : i + size]) for i in range(0, len(jobs), size)]
    order = sorted(range(len(jobs)), key=lambda i: (-costs[i], i))
    budget = sum(costs) / max(1, workers * OVERPARTITION)
    chunks = []
    current, current_cost = [], 0
    for i in order:
        if current and (
            current_cost + costs[i] > budget or (cap and len(current) == cap)
        ):
            chunks.append((current_cost, current))
            current, current_cost = [], 0
        current.append(jobs[i])
        current_cost += costs[i]
    if current:
        chunks.append((current_cost, current))
    chunks.sort(key=lambda entry: -entry[0])
    return [chunk for _, chunk in chunks]


def plan_grid(
    jobs,
    costs,
    jobs_requested,
    max_chunk_jobs=None,
    schedule=SCHEDULE_COST,
    inline_threshold=INLINE_COST_THRESHOLD,
    cpus=None,
):
    """Plan one pending grid: inline split plus cost-ordered chunks.

    ``cpus`` overrides CPU detection (tests force the pool path on
    single-core machines with it); by default the effective worker
    count is capped at the process's usable CPUs, so ``--jobs 4`` on a
    one-core container degrades to the inline path instead of forking
    workers that can only time-slice.  An empty grid yields an empty
    plan (no inline cells, no chunks, zero workers) without consulting
    the cost model.
    """
    cpus = usable_cpus() if cpus is None else cpus
    if not jobs:
        return GridSchedule([], [], 0, schedule, cpus)
    workers = max(1, min(jobs_requested, cpus))
    inline, pooled, pooled_costs = split_inline(
        jobs, costs, workers, inline_threshold
    )
    chunks = plan_chunks(pooled, pooled_costs, workers, max_chunk_jobs, schedule)
    if chunks:
        workers = min(workers, len(chunks))
    else:
        workers = 0
    return GridSchedule(inline, chunks, workers, schedule, cpus)


def plan_shards(costs, workers, throughputs=None):
    """Assign chunks to workers: greedy LPT, throughput-weighted.

    ``costs`` is the per-chunk total cost (already in
    longest-expected-first order from :func:`plan_chunks`);
    ``throughputs`` optionally weights workers by relative speed
    (default: homogeneous).  Each chunk goes to the worker whose
    *completion time* — accumulated cost divided by throughput — it
    increases least, so a 2x-faster worker receives roughly 2x the
    work.  Returns one chunk-index list per worker; the plan is a pure
    function of its inputs, so placement is deterministic (ties break
    toward the lower worker index).
    """
    workers = max(1, int(workers))
    if throughputs is None:
        throughputs = [1.0] * workers
    if len(throughputs) != workers or any(t <= 0 for t in throughputs):
        raise ConfigurationError(
            "throughputs must be {} positive weights, got {!r}".format(
                workers, throughputs
            )
        )
    shards = [[] for _ in range(workers)]
    loads = [0.0] * workers
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    for index in order:
        target = min(
            range(workers),
            key=lambda w: ((loads[w] + costs[index]) / throughputs[w], w),
        )
        shards[target].append(index)
        loads[target] += costs[index]
    for shard in shards:
        shard.sort()
    return shards


# -- the warm worker pool ---------------------------------------------------------

_POOL = None
_POOL_WORKERS = 0
_POOL_STARTS = 0


def _fork_context():
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # pragma: no cover - non-fork platforms


def _init_worker(analysis_dir, warmup):
    """Pool initializer: arenas once per worker, not once per job.

    Enables the on-disk analysis layer and pre-materializes the
    analyses/predecode arenas — and the block engine's compiled tables
    — of every workload the first grid needs.  Under a fork start the
    parent prepared them while estimating costs, so this is a memo hit;
    under spawn it loads them from disk.  A workload that fails to
    prepare is left for its chunk to report — an initializer exception
    would break the whole pool.
    """
    if analysis_dir is not None:
        configure_disk_cache(analysis_dir)
    from repro.sim.blocks import block_table_for, program_blocks_for
    from repro.workloads import prepare_workload

    for name, scale in warmup:
        try:
            prepared = prepare_workload(name, scale)
            block_table_for(prepared.trace)
            program_blocks_for(prepared.program)
        except Exception:
            pass


def warm_pool(workers, analysis_dir=None, warmup=()):
    """The persistent worker pool, creating or growing it as needed.

    The pool is module-level and reused across ``run_grid``/``prefetch``
    calls (and across the benchmark harness's repeats): a pool with at
    least ``workers`` workers is returned as-is, a smaller one is
    replaced.  Worker state stays valid across grids because chunks
    re-assert their disk-cache configuration and workloads are
    content-keyed.
    """
    global _POOL, _POOL_WORKERS, _POOL_STARTS
    if _POOL is not None and _POOL_WORKERS >= workers:
        return _POOL
    shutdown_pool()
    keyword_arguments = {}
    context = _fork_context()
    if context is not None:
        keyword_arguments["mp_context"] = context
    _POOL = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(analysis_dir, tuple(warmup)),
        **keyword_arguments,
    )
    _POOL_WORKERS = workers
    _POOL_STARTS += 1
    return _POOL


def pool_starts():
    """How many pools this process has created (warm-reuse telemetry)."""
    return _POOL_STARTS


def pool_alive():
    """Whether a warm pool currently exists (lifecycle telemetry).

    The exploration service's tests use this to prove that cache-hit
    queries never spin a pool up, and that a broken pool was actually
    torn down before its replacement started.
    """
    return _POOL is not None


def shutdown_pool():
    """Tear down the warm pool (tests; registered atexit)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


# -- worker-side execution --------------------------------------------------------


def execute_job(
    name,
    spec,
    scale,
    config,
    profile_distance,
    emit_metrics=False,
    trace_file=None,
    bus=None,
):
    """Run one simulation, reporting ``(stats, metrics, seconds, blocks)``.

    ``blocks`` is the job's block-cache counter movement (see
    :func:`repro.sim.blocks.counters_delta`): a warm worker reports
    table hits, a cold one the compile misses the job paid.  With
    ``emit_metrics`` the run carries a verbose
    :class:`~repro.obs.MetricsAggregator` and its picklable snapshot —
    stamped with the same block-cache delta — is shipped back alongside
    the stats.  With ``trace_file`` a compact lifecycle-events JSONL
    trace is written there.  ``bus`` attaches a caller-provided
    :class:`~repro.obs.EventBus` (the exploration service bridges
    lifecycle events to its progress stream through one); it must be
    fresh per job.  Stats are identical in every mode — the bus sinks
    only observe, and a non-verbose bus leaves engine selection
    untouched.
    """
    from repro.experiments.runner import build_core, simulate_job
    from repro.sim.blocks import cache_counters, counters_delta

    started = time.perf_counter()
    counters_before = cache_counters()
    if not emit_metrics and trace_file is None and bus is None:
        stats = simulate_job(name, spec, scale, config, profile_distance)
        blocks = counters_delta(counters_before)
        return stats, None, time.perf_counter() - started, blocks

    from repro.obs import (
        LIFECYCLE_KINDS,
        EventBus,
        JsonlTraceWriter,
        MetricsAggregator,
    )

    if bus is None:
        bus = EventBus()
    aggregator = bus.attach(MetricsAggregator()) if emit_metrics else None
    writer = None
    if trace_file is not None:
        os.makedirs(os.path.dirname(trace_file) or ".", exist_ok=True)
        # Lifecycle kinds only: figure-scale runs stay compact, and the
        # filter needs no verbose (per-instruction) emission.
        writer = bus.attach(
            JsonlTraceWriter(trace_file, kinds=LIFECYCLE_KINDS), verbose=False
        )
    stats = build_core(name, spec, scale, config, profile_distance, bus=bus).run()
    if writer is not None:
        writer.close()
    blocks = counters_delta(counters_before)
    metrics = None
    if aggregator is not None:
        aggregator.record_block_cache(blocks)
        metrics = aggregator.as_dict()
    return stats, metrics, time.perf_counter() - started, blocks


def execute_chunk(analysis_dir, scale, emit_metrics, chunk):
    """Worker entry point: run one chunk of cells, one pickle each way.

    ``chunk`` is a list of ``(name, spec, config, profile_distance,
    trace_file)`` tuples; the return value is the aligned list of
    ``(packed_stats, metrics, seconds, blocks)`` outcomes.  The
    disk-cache configuration is re-asserted per chunk because the warm
    pool outlives any single runner (whose cache directory may differ).

    Plain cells (no metrics, no trace file) run through the grid-batch
    lockstep runner (:mod:`repro.sim.gridbatch`) when it is enabled
    and at least two such cells share the chunk — warm-cache replays
    are shared per trace and per-cell dispatch overhead is amortized.
    Instrumented cells always run per-cell.  Outcomes are booked into
    the same aligned slots either way, and stats are byte-identical
    between the two paths.
    """
    from repro.sim import gridbatch

    if analysis_dir is not None:
        configure_disk_cache(analysis_dir)
    results = [None] * len(chunk)
    batch_indices = []
    if gridbatch.gridbatch_enabled() and not emit_metrics:
        batch_indices = [
            index
            for index, (_, _, _, _, trace_file) in enumerate(chunk)
            if gridbatch.batchable(emit_metrics, trace_file)
        ]
        if len(batch_indices) < gridbatch.MIN_BATCH_CELLS:
            batch_indices = []
    if batch_indices:
        jobs = [
            (chunk[index][0], chunk[index][1], chunk[index][2], chunk[index][3])
            for index in batch_indices
        ]
        for index, (stats, metrics, seconds, blocks) in zip(
            batch_indices, gridbatch.run_batch(jobs, scale)
        ):
            results[index] = (pack_stats(stats), metrics, seconds, blocks)
    batched = set(batch_indices)
    for index, (name, spec, config, profile_distance, trace_file) in enumerate(chunk):
        if index in batched:
            continue
        stats, metrics, seconds, blocks = execute_job(
            name, spec, scale, config, profile_distance, emit_metrics, trace_file
        )
        results[index] = (pack_stats(stats), metrics, seconds, blocks)
    return results
