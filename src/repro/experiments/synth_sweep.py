"""Catalog sweeps and the win/loss coverage map.

Sweeps policy specs over a slice of the synthesized scenario catalog
through the existing runner/scheduler/cache stack, then aggregates
*where* control-equivalent spawning wins, ties, and loses per
structural stratum — speedup as a function of program structure rather
than a fixed benchmark list, extending the paper's Figure 9/12 grid
across the whole dial space.
"""

from repro.experiments.reporting import format_table
from repro.experiments.runner import SUPERSCALAR_SPEC
from repro.spawn import canonical_spec
from repro.workloads.synth import Dials, scenario_dials

#: The sweep's champion (the paper's contribution) followed by its
#: challengers; the coverage map scores the first spec against the best
#: of the rest.
DEFAULT_SPECS = ("postdoms", "loop+procFT+loopFT")

#: |champion - best challenger| below this many percentage points of
#: speedup counts as a tie.
TIE_MARGIN = 1.0

WIN, TIE, LOSS = "win", "tie", "loss"


class SweepRow:
    """One swept scenario: its dials and per-spec speedups (%)."""

    __slots__ = ("name", "dials", "speedups")

    def __init__(self, name, dials, speedups):
        self.name = name
        self.dials = dials
        self.speedups = speedups

    def delta(self, specs):
        """Champion speedup minus the best challenger's, in points."""
        champion = self.speedups[specs[0]]
        challengers = [self.speedups[spec] for spec in specs[1:]]
        return champion - max(challengers)

    def outcome(self, specs, margin=TIE_MARGIN):
        delta = self.delta(specs)
        if delta > margin:
            return WIN
        if delta < -margin:
            return LOSS
        return TIE


def sweep(runner, names, specs=DEFAULT_SPECS):
    """Simulate ``specs`` (plus the superscalar baseline) over catalog
    ``names`` and return one :class:`SweepRow` per scenario.

    All jobs go through ``runner.prefetch`` first, so a parallel runner
    fans the grid out through the batched scheduler and serves repeat
    runs entirely from the result cache.
    """
    specs = tuple(canonical_spec(spec) for spec in specs)
    if len(specs) < 2:
        raise ValueError("sweep needs a champion spec and >=1 challenger")
    runner.prefetch(
        [(name, spec) for name in names for spec in specs]
        + [(name, SUPERSCALAR_SPEC) for name in names]
    )
    rows = []
    for name in names:
        speedups = {spec: runner.speedup(name, spec) for spec in specs}
        rows.append(SweepRow(name, scenario_dials(name), speedups))
    return rows


class Bucket:
    """Win/tie/loss tally with the mean champion-vs-challenger delta."""

    __slots__ = ("wins", "ties", "losses", "delta_sum")

    def __init__(self):
        self.wins = 0
        self.ties = 0
        self.losses = 0
        self.delta_sum = 0.0

    def add(self, outcome, delta):
        if outcome == WIN:
            self.wins += 1
        elif outcome == LOSS:
            self.losses += 1
        else:
            self.ties += 1
        self.delta_sum += delta

    @property
    def count(self):
        return self.wins + self.ties + self.losses

    @property
    def mean_delta(self):
        if not self.count:
            return 0.0
        return self.delta_sum / self.count


class CoverageMap:
    """Win/loss/tie tallies per dial axis level, plus the overall row."""

    def __init__(self, specs, margin):
        self.specs = specs
        self.margin = margin
        self.overall = Bucket()
        self.by_axis = {
            axis: {level: Bucket() for level in levels}
            for axis, levels in Dials.axes()
        }

    def render(self):
        title = (
            "coverage map: {} vs best of {} ({} scenarios, "
            "tie margin {:.1f} points)".format(
                self.specs[0],
                "/".join(self.specs[1:]),
                self.overall.count,
                self.margin,
            )
        )
        headers = ("stratum", "n", "win", "tie", "loss", "mean delta")
        rows = []
        for axis, buckets in self.by_axis.items():
            for level, bucket in sorted(buckets.items()):
                if not bucket.count:
                    continue
                rows.append(
                    (
                        "{}={}".format(axis, level),
                        bucket.count,
                        bucket.wins,
                        bucket.ties,
                        bucket.losses,
                        "{:+.1f}".format(bucket.mean_delta),
                    )
                )
        rows.append(
            (
                "overall",
                self.overall.count,
                self.overall.wins,
                self.overall.ties,
                self.overall.losses,
                "{:+.1f}".format(self.overall.mean_delta),
            )
        )
        return format_table(headers, rows, title=title)


def coverage_map(rows, specs=DEFAULT_SPECS, margin=TIE_MARGIN):
    """Aggregate sweep rows into a :class:`CoverageMap`."""
    specs = tuple(canonical_spec(spec) for spec in specs)
    result = CoverageMap(specs, margin)
    for row in rows:
        outcome = row.outcome(specs, margin)
        delta = row.delta(specs)
        result.overall.add(outcome, delta)
        for axis, _ in Dials.axes():
            result.by_axis[axis][row.dials.level_of(axis)].add(outcome, delta)
    return result
