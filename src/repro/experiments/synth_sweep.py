"""Catalog sweeps, estimate-first triage, and the coverage map.

Sweeps policy specs over a slice of the synthesized scenario catalog
through the existing runner/scheduler/cache stack, then aggregates
*where* control-equivalent spawning wins, ties, and loses per
structural stratum — speedup as a function of program structure rather
than a fixed benchmark list, extending the paper's Figure 9/12 grid
across the whole dial space.

Two sweep modes share every downstream surface:

* :func:`sweep` simulates every cell exactly.
* :func:`estimate_first_sweep` runs the two-tier stack: the analytic
  estimator (:mod:`repro.analysis.estimate`) predicts every cell for
  free, a fixed per-stratum seed of cells is simulated exactly, and
  the remaining simulation budget is spent certifying per-stratum
  verdicts — a stratum's verdict is *confirmed* only when the exact
  sample alone makes it unflippable (or the stratum is fully
  simulated), so a confirmed verdict provably equals what the full
  sweep would report.  Unsimulated cells ride on debiased estimator
  predictions and are labeled ``source=estimated`` end to end.
"""

import hashlib

from repro.experiments.reporting import format_table
from repro.experiments.runner import SUPERSCALAR_SPEC
from repro.spawn import canonical_spec
from repro.workloads.synth import Dials, is_catalog_name, scenario_dials, stratum_key

#: The sweep's champion (the paper's contribution) followed by its
#: challengers; the coverage map scores the first spec against the best
#: of the rest.
DEFAULT_SPECS = ("postdoms", "loop+procFT+loopFT")

#: |champion - best challenger| below this many percentage points of
#: speedup counts as a tie.
TIE_MARGIN = 1.0

WIN, TIE, LOSS = "win", "tie", "loss"

#: Outcome preference order for verdict tie-breaks (deterministic).
OUTCOMES = (WIN, TIE, LOSS)

#: How a row's speedups were obtained (mirrors the service wire labels).
SOURCE_SIMULATED = "simulated"
SOURCE_ESTIMATED = "estimated"


class SweepRow:
    """One swept scenario: its dials and per-spec speedups (%).

    ``source`` says whether the speedups came from exact simulation or
    from the analytic estimator; estimated rows additionally carry the
    per-stratum *debiased* champion-vs-challenger delta the triage
    verdicts used (their raw predicted speedups stay in ``speedups``).
    """

    __slots__ = ("name", "dials", "speedups", "source", "adjusted_delta")

    def __init__(
        self, name, dials, speedups, source=SOURCE_SIMULATED, adjusted_delta=None
    ):
        self.name = name
        self.dials = dials
        self.speedups = speedups
        self.source = source
        self.adjusted_delta = adjusted_delta

    def delta(self, specs):
        """Champion speedup minus the best challenger's, in points."""
        if self.adjusted_delta is not None:
            return self.adjusted_delta
        champion = self.speedups[specs[0]]
        challengers = [self.speedups[spec] for spec in specs[1:]]
        return champion - max(challengers)

    def outcome(self, specs, margin=TIE_MARGIN):
        delta = self.delta(specs)
        if delta > margin:
            return WIN
        if delta < -margin:
            return LOSS
        return TIE


def sweep(runner, names, specs=DEFAULT_SPECS):
    """Simulate ``specs`` (plus the superscalar baseline) over catalog
    ``names`` and return one :class:`SweepRow` per scenario.

    All jobs go through ``runner.prefetch`` first, so a parallel runner
    fans the grid out through the batched scheduler and serves repeat
    runs entirely from the result cache.
    """
    specs = tuple(canonical_spec(spec) for spec in specs)
    if len(specs) < 2:
        raise ValueError("sweep needs a champion spec and >=1 challenger")
    runner.prefetch(
        [(name, spec) for name in names for spec in specs]
        + [(name, SUPERSCALAR_SPEC) for name in names]
    )
    rows = []
    for name in names:
        speedups = {spec: runner.speedup(name, spec) for spec in specs}
        # Named (non-catalog) workloads ride along with no dials; the
        # coverage map counts them in the overall row only.
        dials = scenario_dials(name) if is_catalog_name(name) else None
        rows.append(SweepRow(name, dials, speedups))
    return rows


class Bucket:
    """Win/tie/loss tally with the mean champion-vs-challenger delta."""

    __slots__ = ("wins", "ties", "losses", "delta_sum")

    def __init__(self):
        self.wins = 0
        self.ties = 0
        self.losses = 0
        self.delta_sum = 0.0

    def add(self, outcome, delta):
        if outcome == WIN:
            self.wins += 1
        elif outcome == LOSS:
            self.losses += 1
        else:
            self.ties += 1
        self.delta_sum += delta

    @property
    def count(self):
        return self.wins + self.ties + self.losses

    @property
    def mean_delta(self):
        if not self.count:
            return 0.0
        return self.delta_sum / self.count


class CoverageMap:
    """Win/loss/tie tallies per dial axis level, plus the overall row."""

    def __init__(self, specs, margin):
        self.specs = specs
        self.margin = margin
        self.overall = Bucket()
        self.by_axis = {
            axis: {level: Bucket() for level in levels}
            for axis, levels in Dials.axes()
        }
        #: ``{source: count}`` over the aggregated rows (simulated vs
        #: estimated); exact sweeps tally everything under simulated.
        self.sources = {}

    def render(self):
        scenario_count = "{} scenarios".format(self.overall.count)
        estimated = self.sources.get(SOURCE_ESTIMATED, 0)
        if estimated:
            scenario_count = "{} scenarios: {} simulated, {} estimated".format(
                self.overall.count, self.overall.count - estimated, estimated
            )
        title = (
            "coverage map: {} vs best of {} ({}, "
            "tie margin {:.1f} points)".format(
                self.specs[0],
                "/".join(self.specs[1:]),
                scenario_count,
                self.margin,
            )
        )
        headers = ("stratum", "n", "win", "tie", "loss", "mean delta")
        rows = []
        for axis, buckets in self.by_axis.items():
            for level, bucket in sorted(buckets.items()):
                if not bucket.count:
                    continue
                rows.append(
                    (
                        "{}={}".format(axis, level),
                        bucket.count,
                        bucket.wins,
                        bucket.ties,
                        bucket.losses,
                        "{:+.1f}".format(bucket.mean_delta),
                    )
                )
        rows.append(
            (
                "overall",
                self.overall.count,
                self.overall.wins,
                self.overall.ties,
                self.overall.losses,
                "{:+.1f}".format(self.overall.mean_delta),
            )
        )
        return format_table(headers, rows, title=title)


def coverage_map(rows, specs=DEFAULT_SPECS, margin=TIE_MARGIN):
    """Aggregate sweep rows into a :class:`CoverageMap`."""
    specs = tuple(canonical_spec(spec) for spec in specs)
    result = CoverageMap(specs, margin)
    for row in rows:
        outcome = row.outcome(specs, margin)
        delta = row.delta(specs)
        result.overall.add(outcome, delta)
        result.sources[row.source] = result.sources.get(row.source, 0) + 1
        if row.dials is None:
            continue
        for axis, _ in Dials.axes():
            result.by_axis[axis][row.dials.level_of(axis)].add(outcome, delta)
    return result


# -- estimate-first triage ----------------------------------------------------

#: Exact simulations seeded into every stratum before escalation.
SEED_CELLS = 5

#: Cells simulated per escalation step (one stratum at a time).
ESCALATION_CHUNK = 8

#: Fraction of the swept catalog cells the estimate-first sweep may
#: simulate; the rest ride on estimator predictions.
DEFAULT_BUDGET_FRACTION = 0.40

#: Deterministic triage rotation token: fixes which cells of each
#: stratum are simulated first.  Bump to rotate the sampled cells.
TRIAGE_TOKEN = "estfirst-v1"

#: Verdict statuses.  A confirmed verdict is *certified*: the exact
#: sample's win/tie/loss gap exceeds the number of unsimulated cells,
#: so no assignment of outcomes to them could flip the dominant
#: outcome — it provably equals the full sweep's.
CONFIRMED, ESTIMATED = "confirmed", "estimated"


def _triage_rank(token, name):
    """Deterministic per-stratum simulation order (hash ranking)."""
    return hashlib.sha256(
        "{}|{}".format(token, name).encode("utf-8")
    ).hexdigest()


def _outcome_of(delta, margin):
    if delta > margin:
        return WIN
    if delta < -margin:
        return LOSS
    return TIE


def _dominant(counts):
    """Largest-count outcome; ties break by :data:`OUTCOMES` order."""
    return max(OUTCOMES, key=lambda o: (counts[o], -OUTCOMES.index(o)))


def _count_gap(counts):
    """Top count minus runner-up count."""
    ordered = sorted(counts.values(), reverse=True)
    return ordered[0] - ordered[1]


class StratumVerdict:
    """One stratum's triage outcome: verdict, status, and bookkeeping."""

    __slots__ = (
        "key",
        "size",
        "simulated",
        "counts",
        "verdict",
        "status",
        "estimator_error",
    )

    def __init__(self, key, size, simulated, counts, verdict, status, estimator_error):
        self.key = key
        self.size = size
        self.simulated = simulated
        #: Mixed win/tie/loss tallies: exact outcomes for simulated
        #: cells, debiased estimator outcomes for the rest.
        self.counts = counts
        self.verdict = verdict
        self.status = status
        #: Mean |predicted - exact| champion-vs-challenger delta over
        #: the stratum's simulated cells (raw, before debiasing).
        self.estimator_error = estimator_error

    def label(self):
        return " ".join(
            "{}{}".format(axis_code, level)
            for axis_code, level in zip(("L", "H", "I"), self.key)
        )


class EstimateFirstReport:
    """Everything one estimate-first sweep produced.

    ``rows`` covers every swept scenario (simulated rows carry exact
    speedups, estimated rows the estimator's predictions plus the
    debiased delta); ``strata`` maps stratum keys to
    :class:`StratumVerdict`.  :meth:`coverage` builds the same
    :class:`CoverageMap` a full sweep would, over the mixed rows.
    """

    __slots__ = (
        "specs",
        "margin",
        "rows",
        "strata",
        "simulated_cells",
        "estimated_cells",
        "budget_cells",
        "token",
    )

    def __init__(
        self, specs, margin, rows, strata, simulated_cells, estimated_cells,
        budget_cells, token,
    ):
        self.specs = specs
        self.margin = margin
        self.rows = rows
        self.strata = strata
        self.simulated_cells = simulated_cells
        self.estimated_cells = estimated_cells
        self.budget_cells = budget_cells
        self.token = token

    @property
    def confirmed_strata(self):
        return sum(1 for v in self.strata.values() if v.status == CONFIRMED)

    def coverage(self):
        return coverage_map(self.rows, self.specs, self.margin)

    def mean_estimator_error(self):
        """Mean observed |predicted - exact| delta over simulated cells
        that have a prediction (the estimator's tracked error)."""
        errors = [
            verdict.estimator_error
            for verdict in self.strata.values()
            if verdict.simulated and verdict.estimator_error is not None
        ]
        if not errors:
            return 0.0
        return sum(errors) / len(errors)

    def render(self):
        lines = [self.coverage().render(), ""]
        headers = (
            "stratum", "n", "sim", "win", "tie", "loss", "verdict", "status"
        )
        rows = []
        for key in sorted(self.strata):
            verdict = self.strata[key]
            rows.append(
                (
                    verdict.label(),
                    verdict.size,
                    verdict.simulated,
                    verdict.counts[WIN],
                    verdict.counts[TIE],
                    verdict.counts[LOSS],
                    verdict.verdict,
                    verdict.status,
                )
            )
        title = (
            "stratum verdicts ({} confirmed / {} estimated; confirmed "
            "verdicts are certified equal to a full sweep)".format(
                self.confirmed_strata,
                len(self.strata) - self.confirmed_strata,
            )
        )
        lines.append(format_table(headers, rows, title=title))
        lines.append(
            "estimate-first: {} of {} cells simulated (budget {}), "
            "{} estimated; estimator delta error {:.1f} points "
            "(mean over simulated strata)".format(
                self.simulated_cells,
                self.simulated_cells + self.estimated_cells,
                self.budget_cells,
                self.estimated_cells,
                self.mean_estimator_error(),
            )
        )
        return "\n".join(lines)


def estimate_first_sweep(
    runner,
    names,
    specs=DEFAULT_SPECS,
    margin=TIE_MARGIN,
    budget_fraction=DEFAULT_BUDGET_FRACTION,
    token=TRIAGE_TOKEN,
):
    """Two-tier sweep: estimator triage plus certified exact sampling.

    Per stratum (the :data:`~repro.workloads.synth.STRATUM_AXES`
    grouping), the first :data:`SEED_CELLS` cells in deterministic
    hash order are simulated exactly; the remaining budget
    (``budget_fraction`` of the swept catalog cells) is then spent
    greedily on whichever uncertified stratum looks cheapest to
    certify — projected cost ``size / (1 + gap/simulated)``, so nearly
    unanimous strata are pushed over their certificate threshold first
    instead of sinking the whole budget into knife-edge strata that no
    sample short of exhaustive could settle.

    A stratum's verdict is the dominant outcome of its mixed tallies
    (exact outcomes for simulated cells; per-stratum debiased estimator
    deltas for the rest).  Its status is :data:`CONFIRMED` only when
    the exact sample alone certifies it — the sample's win/tie/loss
    gap exceeds the unsimulated cell count, or the stratum is fully
    simulated — and :data:`ESTIMATED` otherwise.  Certified verdicts
    therefore *cannot* disagree with a full exact sweep.

    Non-catalog names (no dials, no estimator) are always simulated
    and do not count against the budget.  Returns an
    :class:`EstimateFirstReport`.
    """
    from repro.analysis.estimate import estimate_row

    specs = tuple(canonical_spec(spec) for spec in specs)
    if len(specs) < 2:
        raise ValueError("sweep needs a champion spec and >=1 challenger")
    names = tuple(names)
    catalog = [name for name in names if is_catalog_name(name)]
    other = [name for name in names if not is_catalog_name(name)]

    strata = {}
    for name in catalog:
        strata.setdefault(stratum_key(name), []).append(name)
    for members in strata.values():
        members.sort(key=lambda name: _triage_rank(token, name))

    # Tier A: one prediction per (cell, spec) — no simulation.
    predicted_delta = {}
    predicted_speedups = {}
    for name in catalog:
        estimates = estimate_row(name, specs, runner.scale, runner.config)
        speedups = {
            spec: estimate.predicted_speedup
            for spec, estimate in estimates.items()
        }
        predicted_speedups[name] = speedups
        predicted_delta[name] = speedups[specs[0]] - max(
            speedups[spec] for spec in specs[1:]
        )

    budget = int(budget_fraction * len(catalog))
    exact_rows = {}

    def simulate(batch):
        for row in sweep(runner, batch, specs):
            exact_rows[row.name] = row

    seeds = []
    for key in sorted(strata):
        seeds.extend(strata[key][:SEED_CELLS])
    seeds = seeds[:budget]
    if seeds:
        simulate(seeds)
    spent = len(seeds)

    def sample_state(key):
        """(simulated count, sample gap, certified) of one stratum."""
        members = strata[key]
        counts = {outcome: 0 for outcome in OUTCOMES}
        simulated = 0
        for name in members:
            row = exact_rows.get(name)
            if row is not None:
                simulated += 1
                counts[row.outcome(specs, margin)] += 1
        if not simulated:
            return 0, 0, False
        gap = _count_gap(counts)
        certified = simulated == len(members) or gap > len(members) - simulated
        return simulated, gap, certified

    # Tier B escalation: certify the cheapest-looking stratum next.
    while spent < budget:
        best = None
        for key in sorted(strata):
            simulated, gap, certified = sample_state(key)
            if certified:
                continue
            relative_gap = gap / simulated if simulated else 0.0
            projected = len(strata[key]) / (1.0 + relative_gap)
            if best is None or projected < best[0]:
                best = (projected, key)
        if best is None:
            break
        key = best[1]
        pending = [name for name in strata[key] if name not in exact_rows]
        step = min(ESCALATION_CHUNK, len(pending), budget - spent)
        if step <= 0:
            break
        simulate(pending[:step])
        spent += step

    if other:
        simulate(other)

    rows_by_name = {}
    verdicts = {}
    for key in sorted(strata):
        members = strata[key]
        sampled = [name for name in members if name in exact_rows]
        residuals = [
            exact_rows[name].delta(specs) - predicted_delta[name]
            for name in sampled
        ]
        debias = sum(residuals) / len(residuals) if residuals else 0.0
        counts = {outcome: 0 for outcome in OUTCOMES}
        for name in members:
            exact = exact_rows.get(name)
            if exact is not None:
                counts[exact.outcome(specs, margin)] += 1
                rows_by_name[name] = exact
            else:
                delta = predicted_delta[name] + debias
                counts[_outcome_of(delta, margin)] += 1
                rows_by_name[name] = SweepRow(
                    name,
                    scenario_dials(name),
                    dict(predicted_speedups[name]),
                    source=SOURCE_ESTIMATED,
                    adjusted_delta=delta,
                )
        simulated, _, certified = sample_state(key)
        error = (
            sum(
                abs(exact_rows[name].delta(specs) - predicted_delta[name])
                for name in sampled
            )
            / len(sampled)
            if sampled
            else None
        )
        verdicts[key] = StratumVerdict(
            key,
            len(members),
            simulated,
            counts,
            _dominant(counts),
            CONFIRMED if certified else ESTIMATED,
            error,
        )
    for name in other:
        rows_by_name[name] = exact_rows[name]

    rows = [rows_by_name[name] for name in names]
    simulated_cells = len(exact_rows)
    estimated_cells = len(names) - simulated_cells
    summary = getattr(runner, "summary", None)
    if summary is not None and estimated_cells:
        summary.record_estimated(estimated_cells)
    return EstimateFirstReport(
        specs,
        margin,
        rows,
        verdicts,
        simulated_cells,
        estimated_cells,
        budget,
        token,
    )
