"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments fig5
    python -m repro.experiments fig9 --scale 0.5
    python -m repro.experiments all
"""

import argparse
import sys
import time

from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner

_FIGURES = ("fig5", "fig8", "fig9", "fig10", "fig11", "fig12")
_ABLATIONS = "ablations"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="polyflow-experiments",
        description="Regenerate the evaluation figures of 'Exploiting "
        "Postdominance for Speculative Parallelization' (HPCA 2007).",
    )
    parser.add_argument(
        "figure",
        choices=_FIGURES + (_ABLATIONS, "all"),
        help="which figure to regenerate ('ablations' runs the "
        "design-choice sweeps)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (smaller = faster, default 1.0)",
    )
    arguments = parser.parse_args(argv)

    runner = ExperimentRunner(scale=arguments.scale)
    started = time.time()

    if arguments.figure == _ABLATIONS:
        from repro.experiments import ablations

        for sweep in (
            ablations.task_count_ablation,
            ablations.rob_size_ablation,
            ablations.nested_spawn_ablation,
            ablations.mispredict_penalty_ablation,
            ablations.spawn_distance_ablation,
            ablations.divert_release_ablation,
        ):
            print(sweep(runner).render())
            print()
        print("[completed in {:.1f}s]".format(time.time() - started), file=sys.stderr)
        return 0

    requested = _FIGURES if arguments.figure == "all" else (arguments.figure,)

    for figure in requested:
        if figure == "fig5":
            print(figures.figure5(runner).render())
        elif figure == "fig8":
            print(figures.figure8())
        elif figure == "fig9":
            result = figures.figure9(runner)
            print(result.render())
        elif figure == "fig10":
            print(figures.figure10(runner).render())
        elif figure == "fig11":
            print(figures.figure11(runner).render())
        elif figure == "fig12":
            print(figures.figure12(runner).render())
        print()

    if arguments.figure == "all":
        fig9_result = figures.figure9(runner)
        fig10_result = figures.figure10(runner)
        heuristic_ratio, combination_ratio = figures.headline_ratios(
            fig9_result, fig10_result
        )
        print(
            "Headline: postdoms = {:.2f}x best individual heuristic "
            "(paper: >2x), {:.2f}x best combination (paper: 1.33x)".format(
                heuristic_ratio, combination_ratio
            )
        )
    print(
        "[completed in {:.1f}s]".format(time.time() - started), file=sys.stderr
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
