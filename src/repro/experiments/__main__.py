"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments fig5
    python -m repro.experiments fig9 --scale 0.5 --jobs 4
    python -m repro.experiments all --jobs 8 --cache-dir .polyflow-cache
    python -m repro.experiments all --no-cache
    python -m repro.experiments trace --workload gzip \\
        --policy control-equivalent --trace-dir /tmp/traces

Simulations fan out across ``--jobs`` worker processes and their
results are cached on disk under ``--cache-dir``, so re-generating a
figure (or re-running CI) only simulates what changed.  Parallel and
cached runs emit output bit-identical to a cold serial run; a run
summary (jobs simulated, cache hits, where the time went) is printed
to stderr.

``trace`` runs one (workload, policy) simulation with full
observability: a JSONL event trace, a Chrome ``trace_event`` file
loadable in Perfetto / chrome://tracing, and a per-spawn-point
attribution table.  On figure runs, ``--trace-dir`` writes one compact
lifecycle trace per simulation and ``--emit-metrics`` prints per-policy
attribution tables to stderr — figure output on stdout stays
bit-identical either way.
"""

import argparse
import sys
import time

from repro.experiments import figures, scheduler
from repro.experiments.parallel import DEFAULT_CACHE_DIR, ParallelExperimentRunner

_FIGURES = ("fig5", "fig8", "fig9", "fig10", "fig11", "fig12")
_ABLATIONS = "ablations"
_TRACE = "trace"
_SYNTH = "synth"
_SERVE = "serve"
_QUERY = "query"
_FABRIC = "fabric"
_CACHE_GC = "cache-gc"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="polyflow-experiments",
        description="Regenerate the evaluation figures of 'Exploiting "
        "Postdominance for Speculative Parallelization' (HPCA 2007).",
    )
    parser.add_argument(
        "figure",
        choices=_FIGURES
        + (_ABLATIONS, _TRACE, _SYNTH, _SERVE, _QUERY, _FABRIC, _CACHE_GC, "all"),
        help="which figure to regenerate ('ablations' runs the "
        "design-choice sweeps; 'trace' runs one fully-observed "
        "simulation, see --workload/--policy; 'synth' sweeps the "
        "synthesized scenario catalog and prints the win/loss "
        "coverage map, see --sample/--slice; 'serve' starts the "
        "always-on exploration service, see --host/--port; 'query' "
        "asks a running service for stats, see --cells; 'fabric' "
        "prints a placement dry-run for a synth slice, see "
        "--fabric-workers/--fabric-store; 'cache-gc' sweeps the "
        "result cache and fabric store, see --max-bytes)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (smaller = faster, default 1.0)",
    )
    parser.add_argument(
        "--workload",
        help="(trace) workload to simulate",
    )
    parser.add_argument(
        "--policy",
        default="control-equivalent",
        help="(trace) policy spec; aliases 'control-equivalent' and "
        "'best-heuristic' are accepted (default control-equivalent)",
    )
    parser.add_argument(
        "--trace-dir",
        help="directory for event traces: the trace command writes its "
        "full JSONL + Chrome trace there; figure runs write one "
        "compact lifecycle JSONL per simulation",
    )
    parser.add_argument(
        "--emit-metrics",
        action="store_true",
        help="collect per-spawn-point metrics on every simulation and "
        "print per-policy attribution tables to stderr",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation fan-out "
        "(default 1 = serial; capped at the machine's usable CPUs)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="max grid cells per worker chunk (default: sized "
        "automatically from each cell's estimated cost)",
    )
    parser.add_argument(
        "--schedule",
        choices=scheduler.SCHEDULES,
        default=scheduler.SCHEDULE_COST,
        help="chunk ordering: 'cost' ships longest-expected chunks "
        "first (default), 'fifo' keeps grid order",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="on-disk result cache directory (default {!r})".format(
            DEFAULT_CACHE_DIR
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        help="(synth) sweep a deterministic stratified sample of this "
        "many catalog scenarios (default: the whole catalog)",
    )
    parser.add_argument(
        "--slice",
        dest="slice_prefix",
        default=None,
        help="(synth) restrict the sweep to scenarios whose code starts "
        "with this prefix, e.g. 'L2' or 'L2H3'",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="(synth) cap the number of swept scenarios (applied after "
        "--slice, in catalog order; --sample takes precedence)",
    )
    parser.add_argument(
        "--specs",
        default=None,
        help="(synth) comma-separated policy specs; the first is scored "
        "against the best of the rest (default 'postdoms,"
        "loop+procFT+loopFT')",
    )
    parser.add_argument(
        "--estimate-first",
        action="store_true",
        help="(synth) triage with the analytic estimator and simulate "
        "only a budgeted slice of cells; unsimulated cells ride on "
        "estimator predictions labeled source=estimated",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="(synth) with --estimate-first, the fraction of swept "
        "catalog cells that may be simulated (default 0.40)",
    )
    parser.add_argument(
        "--fabric-workers",
        type=int,
        default=0,
        help="ship pooled chunks to this many fabric worker processes "
        "instead of the local warm pool (0 = off; not capped at the "
        "local CPU count — workers may be remote)",
    )
    parser.add_argument(
        "--fabric-store",
        default=None,
        help="shared content-addressed artifact store directory: "
        "workers fetch cells other participants already simulated "
        "and publish fresh results back",
    )
    parser.add_argument(
        "--fabric-transport",
        choices=("subprocess", "local"),
        default="subprocess",
        help="fabric executor: 'subprocess' launches worker processes "
        "speaking the frame protocol (default), 'local' routes the "
        "fabric through the in-process warm pool",
    )
    parser.add_argument(
        "--fabric-ssh",
        default=None,
        metavar="TEMPLATE",
        help="command template launching one worker, e.g. "
        "'ssh buildhost {python} -u -m repro.experiments.fabric."
        "worker'; {python} expands to this interpreter "
        "(default: local subprocesses)",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="(cache-gc) evict least-recently-written entries until "
        "the tree fits in this many bytes (default: prune corrupt "
        "entries only)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="(serve/query) service bind/connect address "
        "(default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8790,
        help="(serve/query) service port; 0 binds an ephemeral port "
        "(default 8790)",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=25.0,
        help="(serve) admission window in milliseconds: concurrent "
        "queries arriving within it coalesce into one grid "
        "(default 25)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="(serve) admission queue bound; beyond it queries get "
        "HTTP 429 + Retry-After (default 64)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=0.5,
        help="(serve) Retry-After hint in seconds sent with 429 "
        "responses (default 0.5)",
    )
    parser.add_argument(
        "--events-log",
        help="(serve) mirror the /events progress stream into this "
        "JSONL file",
    )
    parser.add_argument(
        "--cells",
        help="(query) comma-separated workload:spec cells, e.g. "
        "'gzip:postdoms,gzip:superscalar' (default: one cell from "
        "--workload/--policy)",
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="(query) skip the service and compute the same cells with "
        "a local serial ExperimentRunner — output is byte-identical "
        "to the service's, so the two can be diffed",
    )
    parser.add_argument(
        "--query-retries",
        type=int,
        default=3,
        help="(query) retries honoured on HTTP 429 backpressure "
        "(default 3)",
    )
    parser.add_argument(
        "--estimate",
        action="store_true",
        help="(query) answer cells with the analytic estimator instead "
        "of simulation (source=estimated; predicted speedup with a "
        "confidence band instead of exact stats)",
    )
    arguments = parser.parse_args(argv)

    if arguments.figure == _SERVE:
        return _run_serve(arguments)
    if arguments.figure == _QUERY:
        return _run_query(arguments, parser)
    if arguments.figure == _CACHE_GC:
        return _run_cache_gc(arguments)
    if arguments.figure == _FABRIC:
        return _run_fabric_plan(arguments)

    if arguments.figure == _TRACE:
        if not arguments.workload:
            parser.error("trace requires --workload")
        if not arguments.trace_dir:
            parser.error("trace requires --trace-dir")
        return _run_trace(arguments)

    runner = ParallelExperimentRunner(
        scale=arguments.scale,
        jobs=arguments.jobs,
        cache_dir=None if arguments.no_cache else arguments.cache_dir,
        emit_metrics=arguments.emit_metrics,
        trace_dir=arguments.trace_dir,
        chunk=arguments.chunk,
        schedule=arguments.schedule,
        fabric_workers=arguments.fabric_workers,
        fabric_store=arguments.fabric_store,
        fabric_transport=arguments.fabric_transport,
        fabric_command=arguments.fabric_ssh,
    )
    started = time.time()

    if arguments.figure == _SYNTH:
        return _run_synth(arguments, runner, started)

    if arguments.figure == _ABLATIONS:
        from repro.experiments import ablations

        # One batched prefetch for the whole 100+-cell ablation grid;
        # each sweep below then renders from the memo.
        runner.prefetch(ablations.ablation_jobs(runner))
        for sweep in (
            ablations.task_count_ablation,
            ablations.rob_size_ablation,
            ablations.nested_spawn_ablation,
            ablations.mispredict_penalty_ablation,
            ablations.spawn_distance_ablation,
            ablations.divert_release_ablation,
        ):
            print(sweep(runner).render())
            print()
        _print_footer(runner, started)
        return 0

    requested = _FIGURES if arguments.figure == "all" else (arguments.figure,)

    # One batched prefetch for every requested figure: the scheduler
    # chunks and cost-orders the union of their simulation grids.
    runner.prefetch(figures.figure_jobs_union(requested, runner))

    for figure in requested:
        if figure == "fig5":
            print(figures.figure5(runner).render())
        elif figure == "fig8":
            print(figures.figure8())
        elif figure == "fig9":
            result = figures.figure9(runner)
            print(result.render())
        elif figure == "fig10":
            print(figures.figure10(runner).render())
        elif figure == "fig11":
            print(figures.figure11(runner).render())
        elif figure == "fig12":
            print(figures.figure12(runner).render())
        print()

    if arguments.figure == "all":
        fig9_result = figures.figure9(runner)
        fig10_result = figures.figure10(runner)
        heuristic_ratio, combination_ratio = figures.headline_ratios(
            fig9_result, fig10_result
        )
        print(
            "Headline: postdoms = {:.2f}x best individual heuristic "
            "(paper: >2x), {:.2f}x best combination (paper: 1.33x)".format(
                heuristic_ratio, combination_ratio
            )
        )
    _print_footer(runner, started)
    return 0


def _run_synth(arguments, runner, started):
    """Sweep a catalog slice and print the coverage map (``synth``)."""
    from repro.experiments import synth_sweep
    from repro.workloads.synth import catalog_names, stratified_sample

    names = catalog_names()
    if arguments.slice_prefix:
        prefix = "synth/" + arguments.slice_prefix
        names = tuple(name for name in names if name.startswith(prefix))
        if not names:
            print(
                "no catalog scenarios match slice {!r}".format(
                    arguments.slice_prefix
                ),
                file=sys.stderr,
            )
            return 1
    if arguments.sample is not None:
        names = stratified_sample(arguments.sample, names=names)
    elif arguments.limit is not None:
        names = names[: arguments.limit]
    specs = synth_sweep.DEFAULT_SPECS
    if arguments.specs:
        specs = tuple(
            spec.strip() for spec in arguments.specs.split(",") if spec.strip()
        )
    if arguments.estimate_first:
        budget = arguments.budget
        if budget is None:
            budget = synth_sweep.DEFAULT_BUDGET_FRACTION
        report = synth_sweep.estimate_first_sweep(
            runner, names, specs, budget_fraction=budget
        )
        print(report.render())
    else:
        rows = synth_sweep.sweep(runner, names, specs)
        print(synth_sweep.coverage_map(rows, specs).render())
    _print_footer(runner, started)
    return 0


def _run_cache_gc(arguments):
    """Sweep the result cache (and fabric store) — ``cache-gc``."""
    from repro.experiments.parallel import ResultCache

    targets = []
    if not arguments.no_cache:
        targets.append(("result cache", ResultCache(arguments.cache_dir)))
    if arguments.fabric_store:
        from repro.experiments.fabric.store import SharedStore

        targets.append(("fabric store", SharedStore(arguments.fabric_store)))
    if not targets:
        print("cache-gc: nothing to sweep (--no-cache and no --fabric-store)")
        return 1
    for label, tree in targets:
        report = tree.gc(arguments.max_bytes)
        print(
            "{} {}: {} corrupt pruned, {} evicted (LRU), "
            "{} bytes freed; {} entries / {} bytes kept".format(
                label,
                tree.root,
                report["removed_corrupt"],
                report["removed_lru"],
                report["removed_bytes"],
                report["kept_entries"],
                report["kept_bytes"],
            )
        )
    return 0


def _run_fabric_plan(arguments):
    """Print a placement dry-run for a synth slice — ``fabric``.

    Costs the requested grid (store-probing, so held cells are priced
    as fetches), plans chunks and worker shards, and prints the
    placement without simulating anything.
    """
    from repro.experiments import scheduler, synth_sweep
    from repro.experiments.parallel import ParallelExperimentRunner
    from repro.workloads.synth import catalog_names, stratified_sample

    workers = arguments.fabric_workers or 2
    names = catalog_names()
    if arguments.slice_prefix:
        prefix = "synth/" + arguments.slice_prefix
        names = tuple(name for name in names if name.startswith(prefix))
    if arguments.sample is not None:
        names = stratified_sample(arguments.sample, names=names)
    elif arguments.limit is not None:
        names = names[: arguments.limit]
    specs = synth_sweep.DEFAULT_SPECS
    if arguments.specs:
        specs = tuple(
            spec.strip() for spec in arguments.specs.split(",") if spec.strip()
        )
    runner = ParallelExperimentRunner(
        scale=arguments.scale,
        cache_dir=None if arguments.no_cache else arguments.cache_dir,
        fabric_workers=workers,
        fabric_store=arguments.fabric_store,
        fabric_transport=arguments.fabric_transport,
    )
    jobs = runner.normalize_jobs(
        [(name, spec) for name in names for spec in specs]
    )
    store = runner.fabric_store
    costs = []
    held = 0
    for name, spec, config, profile_distance in jobs:
        digest = (
            runner._job_digest(name, spec, config, profile_distance)
            if store is not None
            else None
        )
        cost = scheduler.job_cost(
            name, arguments.scale, store=store, digest=digest
        )
        held += 1 if cost == scheduler.STORE_HELD_COST else 0
        costs.append(cost)
    inline, pooled, pooled_costs = scheduler.split_inline(
        jobs, costs, workers, runner.fabric_inline_threshold
    )
    chunks = scheduler.plan_chunks(
        pooled, pooled_costs, workers, arguments.chunk, arguments.schedule
    )
    chunk_costs = [
        sum(
            cost
            for job, cost in zip(pooled, pooled_costs)
            if any(job is member for member in chunk)
        )
        for chunk in chunks
    ]
    shards = scheduler.plan_shards(chunk_costs, workers)
    print(
        "fabric plan: {} cells ({} store-held), {} inline, "
        "{} chunks across {} workers".format(
            len(jobs), held, len(inline), len(chunks), workers
        )
    )
    for worker, shard in enumerate(shards):
        cells = sum(len(chunks[index]) for index in shard)
        cost = sum(chunk_costs[index] for index in shard)
        print(
            "  worker {}: {} chunks, {} cells, estimated cost {}".format(
                worker, len(shard), cells, cost
            )
        )
    if store is not None:
        print("  store: {} ({} entries)".format(store.root, len(store)))
    return 0


def _run_serve(arguments):
    """Run the always-on exploration service until SIGTERM/SIGINT."""
    import asyncio
    import json
    import signal

    from repro.service import ExplorationService

    async def serve():
        service = ExplorationService(
            host=arguments.host,
            port=arguments.port,
            queue_depth=arguments.queue_depth,
            window_seconds=arguments.window_ms / 1000.0,
            retry_after=arguments.retry_after,
            events_log=arguments.events_log,
            jobs=arguments.jobs,
            cache_dir=None if arguments.no_cache else arguments.cache_dir,
            chunk=arguments.chunk,
            schedule=arguments.schedule,
            fabric_workers=arguments.fabric_workers,
            fabric_store=arguments.fabric_store,
            fabric_transport=arguments.fabric_transport,
        )
        await service.start()
        # Machine-parsable endpoint line (scripts read it to learn the
        # ephemeral port when started with --port 0).
        print(
            json.dumps(
                {"serving": {"host": service.host, "port": service.port}}
            ),
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, service.request_shutdown)
        await service.wait_closed()
        summary = service.engine.summary_dict()
        print(
            "[service drained: {} queries served, {} simulated, "
            "{} cache hits]".format(
                service.engine.queries_served,
                summary.get("jobs_run", 0),
                summary.get("cache_hits", 0),
            ),
            file=sys.stderr,
        )

    asyncio.run(serve())
    return 0


def _parse_cells(arguments, parser):
    if arguments.cells:
        cells = []
        for chunk in arguments.cells.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            workload, separator, spec = chunk.partition(":")
            if not separator or not workload or not spec:
                parser.error(
                    "--cells entries must look like workload:spec, "
                    "got {!r}".format(chunk)
                )
            cells.append((workload, spec))
        if cells:
            return cells
    if arguments.workload:
        return [(arguments.workload, arguments.policy)]
    parser.error("query requires --cells or --workload")


def _run_query(arguments, parser):
    """Query a running service (or compute serial ground truth).

    Output is one canonical-JSON line per cell, identical between the
    service path and ``--serial`` — CI diffs the two byte-for-byte.
    """
    from repro.service import canonical_json, encode_stats
    from repro.spawn import canonical_spec

    cells = _parse_cells(arguments, parser)
    if arguments.serial:
        from repro.experiments.runner import ExperimentRunner
        from repro.polyflow import PAPER_CONFIG

        runner = ExperimentRunner(scale=arguments.scale)
        for workload, spec in cells:
            stats = runner.run_with_config(workload, spec, PAPER_CONFIG)
            line = canonical_json(
                {
                    "workload": workload,
                    "spec": canonical_spec(spec),
                    "stats": encode_stats(stats),
                }
            )
            sys.stdout.write(line.decode("utf-8") + "\n")
        return 0

    from repro.service import ServiceClient

    client = ServiceClient(host=arguments.host, port=arguments.port)
    response = client.query(
        cells,
        scale=arguments.scale,
        retries=arguments.query_retries,
        estimate=arguments.estimate,
    )
    for result in response["results"]:
        entry = {
            "workload": result["workload"],
            "spec": result["spec"],
        }
        if arguments.estimate:
            entry["source"] = result["source"]
            entry["estimate"] = result["estimate"]
        else:
            entry["stats"] = result["stats"]
        line = canonical_json(entry)
        sys.stdout.write(line.decode("utf-8") + "\n")
    print(
        "[query: {} cells, sources {}]".format(
            len(response["results"]),
            dict(response["batch"]),
        ),
        file=sys.stderr,
    )
    return 0


def _run_trace(arguments):
    """Run one fully-observed simulation (the ``trace`` command)."""
    import os

    from repro.experiments.reporting import format_spawn_point_attribution
    from repro.experiments.runner import build_core
    from repro.obs import (
        ChromeTraceExporter,
        EventBus,
        JsonlTraceWriter,
        MetricsAggregator,
    )
    from repro.polyflow import PAPER_CONFIG
    from repro.spawn import canonical_spec

    name = arguments.workload
    spec = canonical_spec(arguments.policy)
    os.makedirs(arguments.trace_dir, exist_ok=True)
    stem = "{}.{}".format(name, spec.replace("/", "_"))
    events_path = os.path.join(arguments.trace_dir, stem + ".events.jsonl")
    chrome_path = os.path.join(arguments.trace_dir, stem + ".chrome.json")

    bus = EventBus()
    writer = bus.attach(JsonlTraceWriter(events_path))
    chrome = bus.attach(ChromeTraceExporter(chrome_path))
    metrics = bus.attach(MetricsAggregator())
    started = time.time()
    core = build_core(name, spec, arguments.scale, PAPER_CONFIG, bus=bus)
    stats = core.run()
    writer.close()
    chrome.close()

    print("workload {} / policy {} at scale {}".format(name, spec, arguments.scale))
    print("  {}".format(stats))
    print("  events: {} ({} events)".format(events_path, writer.events_written))
    print("  chrome trace: {} (open in chrome://tracing or Perfetto)".format(
        chrome_path
    ))
    print()
    print(
        format_spawn_point_attribution(
            metrics.as_dict(),
            title="spawn-point attribution: {} / {}".format(name, spec),
        )
    )
    print(
        "[traced in {:.1f}s]".format(time.time() - started), file=sys.stderr
    )
    return 0


def _print_footer(runner, started):
    if runner.emit_metrics:
        from repro.experiments.reporting import format_policy_attribution

        merged = runner.summary.merged_metrics()
        if merged:
            print(
                format_policy_attribution(
                    merged, title="per-policy attribution (all simulated jobs)"
                ),
                file=sys.stderr,
            )
    print("[{}]".format(runner.summary.render()), file=sys.stderr)
    print(
        "[completed in {:.1f}s]".format(time.time() - started), file=sys.stderr
    )


if __name__ == "__main__":
    sys.exit(main())
