"""Ablations over the design choices DESIGN.md calls out.

The paper's conclusion names the two machine limitations it hopes to
lift in future work — each task spawning only a single successor, and
the 512-entry ROB bounding outer-loop parallelism.  These ablations
quantify both on this model, plus the sensitivity knobs reviewers
usually ask about (task count, mispredict penalty, spawn distance cap,
divert-queue release policy).

Every ablation reuses the cached workload preparation and reruns only
the cycle-level simulations under modified machine configurations.
"""

import dataclasses

from repro.experiments.reporting import format_percent, format_table
from repro.experiments.runner import SUPERSCALAR_SPEC
from repro.polyflow import PAPER_CONFIG, speedup_percent

#: Benchmarks used for ablations (a spread of behaviours: loop-
#: parallel, call/icache-bound, memory/hammock-bound, interpreter).
DEFAULT_ABLATION_WORKLOADS = ("twolf", "vortex", "mcf", "perlbmk")


class AblationResult:
    """Speedups of one policy across a swept machine parameter."""

    def __init__(self, title, parameter_name, values, workloads, speedups):
        self.title = title
        self.parameter_name = parameter_name
        self.values = tuple(values)
        self.workloads = tuple(workloads)
        #: {workload: {parameter value: speedup %}}
        self.speedups = speedups

    def render(self):
        headers = ["benchmark"] + [
            "{}={}".format(self.parameter_name, value) for value in self.values
        ]
        rows = []
        for name in self.workloads:
            rows.append(
                [name]
                + [format_percent(self.speedups[name][value]) for value in self.values]
            )
        return format_table(headers, rows, title=self.title)


def _sweep_jobs(runner, values, make_config, workloads, matched_baseline, spec="postdoms"):
    """The (workload, spec, config) grid one sweep simulates."""
    jobs = []
    for name in workloads:
        for value in values:
            config = make_config(value)
            jobs.append((name, spec, config))
            if matched_baseline:
                jobs.append((name, SUPERSCALAR_SPEC, config))
        if not matched_baseline:
            jobs.append((name, SUPERSCALAR_SPEC, runner.config))
    return jobs


def _sweep(
    runner,
    title,
    parameter_name,
    values,
    make_config,
    workloads,
    matched_baseline=False,
):
    """Run one parameter sweep through the runner's cached execution.

    The whole grid is prefetched first, so a parallel runner schedules
    every (workload, value) simulation across its worker pool before
    the table is assembled.  ``matched_baseline`` reruns the
    superscalar baseline under each swept configuration (figures where
    the parameter affects both machines); otherwise the paper-config
    baseline is reused.
    """
    runner.prefetch(
        _sweep_jobs(runner, values, make_config, workloads, matched_baseline)
    )
    speedups = {}
    for name in workloads:
        speedups[name] = {}
        for value in values:
            config = make_config(value)
            stats = runner.run_with_config(name, "postdoms", config)
            if matched_baseline:
                baseline = runner.run_with_config(name, SUPERSCALAR_SPEC, config)
            else:
                baseline = runner.baseline(name)
            speedups[name][value] = speedup_percent(stats, baseline)
    return AblationResult(title, parameter_name, values, workloads, speedups)


def _task_count_config(count):
    return dataclasses.replace(
        PAPER_CONFIG,
        max_tasks=count,
        fetch_tasks_per_cycle=min(2, count),
    )


def task_count_ablation(runner, counts=(1, 2, 4, 8), workloads=DEFAULT_ABLATION_WORKLOADS):
    """How much of the postdoms speedup each task context buys."""
    return _sweep(
        runner,
        "Ablation: task contexts (postdoms policy)",
        "tasks",
        counts,
        _task_count_config,
        workloads,
    )


def _rob_size_config(size):
    return dataclasses.replace(PAPER_CONFIG, rob_entries=size)


def rob_size_ablation(
    runner, sizes=(128, 256, 512, 1024), workloads=DEFAULT_ABLATION_WORKLOADS
):
    """The conclusion's second limitation: ROB size bounds outer-loop
    parallelism.  Both PolyFlow and its baseline get the swept ROB."""
    return _sweep(
        runner,
        "Ablation: reorder buffer size (postdoms policy, matched baseline)",
        "rob",
        sizes,
        _rob_size_config,
        workloads,
        matched_baseline=True,
    )


def _nested_spawn_config(enabled):
    return dataclasses.replace(PAPER_CONFIG, nested_spawns=enabled)


def nested_spawn_ablation(runner, workloads=DEFAULT_ABLATION_WORKLOADS):
    """The conclusion's first limitation: single-successor spawning.

    Compares stock PolyFlow against the future-work extension that
    splits a bounded task's segment to spawn past inner branches.
    """
    return _sweep(
        runner,
        "Ablation: nested spawns (the paper's future-work extension)",
        "nested",
        (False, True),
        _nested_spawn_config,
        workloads,
    )


def _mispredict_penalty_config(penalty):
    return dataclasses.replace(PAPER_CONFIG, mispredict_penalty=penalty)


def mispredict_penalty_ablation(
    runner, penalties=(4, 8, 16, 32), workloads=DEFAULT_ABLATION_WORKLOADS
):
    """Sensitivity of the postdoms speedup to the refill penalty."""
    return _sweep(
        runner,
        "Ablation: branch mispredict penalty (matched baseline)",
        "penalty",
        penalties,
        _mispredict_penalty_config,
        workloads,
        matched_baseline=True,
    )


def _spawn_distance_config(cap):
    return dataclasses.replace(PAPER_CONFIG, max_spawn_distance=cap)


def spawn_distance_ablation(
    runner, caps=(64, 128, 256, 512), workloads=DEFAULT_ABLATION_WORKLOADS
):
    """The 'not too far into the future' cap on spawn distances."""
    return _sweep(
        runner,
        "Ablation: maximum spawn distance (postdoms policy)",
        "max_dist",
        caps,
        _spawn_distance_config,
        workloads,
    )


def _divert_release_config(release):
    return dataclasses.replace(PAPER_CONFIG, divert_release=release)


def divert_release_ablation(runner, workloads=DEFAULT_ABLATION_WORKLOADS):
    """Divert-queue release at producer dispatch vs completion."""
    return _sweep(
        runner,
        "Ablation: divert-queue release policy (postdoms policy)",
        "release",
        ("dispatch", "complete"),
        _divert_release_config,
        workloads,
    )


#: ``(values, config builder, matched_baseline)`` of every default
#: sweep, in CLI order.  :func:`ablation_jobs` walks this to batch the
#: entire ablation grid into one scheduler prefetch.
DEFAULT_SWEEPS = (
    ((1, 2, 4, 8), _task_count_config, False),
    ((128, 256, 512, 1024), _rob_size_config, True),
    ((False, True), _nested_spawn_config, False),
    ((4, 8, 16, 32), _mispredict_penalty_config, True),
    ((64, 128, 256, 512), _spawn_distance_config, False),
    (("dispatch", "complete"), _divert_release_config, False),
)


def ablation_jobs(runner, workloads=DEFAULT_ABLATION_WORKLOADS):
    """Every simulation the default ablation sweeps need, as one grid.

    Prefetching this union up front lets the batched scheduler chunk
    and order the whole 100+-cell ablation grid at once instead of
    paying one pool round per sweep; the per-sweep ``_sweep`` calls
    then find everything memoized.
    """
    jobs = []
    for values, make_config, matched_baseline in DEFAULT_SWEEPS:
        jobs.extend(
            _sweep_jobs(runner, values, make_config, workloads, matched_baseline)
        )
    return jobs
