"""Ablations over the design choices DESIGN.md calls out.

The paper's conclusion names the two machine limitations it hopes to
lift in future work — each task spawning only a single successor, and
the 512-entry ROB bounding outer-loop parallelism.  These ablations
quantify both on this model, plus the sensitivity knobs reviewers
usually ask about (task count, mispredict penalty, spawn distance cap,
divert-queue release policy).

Every ablation reuses the cached workload preparation and reruns only
the cycle-level simulations under modified machine configurations.
"""

import dataclasses

from repro.experiments.reporting import format_percent, format_table
from repro.polyflow import PAPER_CONFIG, PolyFlowCore, speedup_percent
from repro.polyflow.config import superscalar_config
from repro.spawn.hints import HintTable

#: Benchmarks used for ablations (a spread of behaviours: loop-
#: parallel, call/icache-bound, memory/hammock-bound, interpreter).
DEFAULT_ABLATION_WORKLOADS = ("twolf", "vortex", "mcf", "perlbmk")


class AblationResult:
    """Speedups of one policy across a swept machine parameter."""

    def __init__(self, title, parameter_name, values, workloads, speedups):
        self.title = title
        self.parameter_name = parameter_name
        self.values = tuple(values)
        self.workloads = tuple(workloads)
        #: {workload: {parameter value: speedup %}}
        self.speedups = speedups

    def render(self):
        headers = ["benchmark"] + [
            "{}={}".format(self.parameter_name, value) for value in self.values
        ]
        rows = []
        for name in self.workloads:
            rows.append(
                [name]
                + [format_percent(self.speedups[name][value]) for value in self.values]
            )
        return format_table(headers, rows, title=self.title)


def _run_with_config(runner, name, config, spec="postdoms"):
    """PolyFlow stats for one workload under an arbitrary config."""
    prepared = runner.workload(name)
    hints = runner.hint_table(name, spec)
    return PolyFlowCore(prepared.trace, config, hints).run()


def _baseline_with_config(runner, name, config):
    prepared = runner.workload(name)
    core = PolyFlowCore(prepared.trace, superscalar_config(config), HintTable())
    return core.run()


def _sweep(runner, title, parameter_name, values, make_config, workloads):
    speedups = {}
    for name in workloads:
        baseline = runner.baseline(name)
        speedups[name] = {}
        for value in values:
            config = make_config(value)
            stats = _run_with_config(runner, name, config)
            speedups[name][value] = speedup_percent(stats, baseline)
    return AblationResult(title, parameter_name, values, workloads, speedups)


def task_count_ablation(runner, counts=(1, 2, 4, 8), workloads=DEFAULT_ABLATION_WORKLOADS):
    """How much of the postdoms speedup each task context buys."""

    def make_config(count):
        return dataclasses.replace(
            PAPER_CONFIG,
            max_tasks=count,
            fetch_tasks_per_cycle=min(2, count),
        )

    return _sweep(
        runner,
        "Ablation: task contexts (postdoms policy)",
        "tasks",
        counts,
        make_config,
        workloads,
    )


def rob_size_ablation(
    runner, sizes=(128, 256, 512, 1024), workloads=DEFAULT_ABLATION_WORKLOADS
):
    """The conclusion's second limitation: ROB size bounds outer-loop
    parallelism.  Both PolyFlow and its baseline get the swept ROB."""
    speedups = {}
    for name in workloads:
        speedups[name] = {}
        for size in sizes:
            config = dataclasses.replace(PAPER_CONFIG, rob_entries=size)
            stats = _run_with_config(runner, name, config)
            baseline = _baseline_with_config(runner, name, config)
            speedups[name][size] = speedup_percent(stats, baseline)
    return AblationResult(
        "Ablation: reorder buffer size (postdoms policy, matched baseline)",
        "rob",
        sizes,
        workloads,
        speedups,
    )


def nested_spawn_ablation(runner, workloads=DEFAULT_ABLATION_WORKLOADS):
    """The conclusion's first limitation: single-successor spawning.

    Compares stock PolyFlow against the future-work extension that
    splits a bounded task's segment to spawn past inner branches.
    """

    def make_config(enabled):
        return dataclasses.replace(PAPER_CONFIG, nested_spawns=enabled)

    return _sweep(
        runner,
        "Ablation: nested spawns (the paper's future-work extension)",
        "nested",
        (False, True),
        make_config,
        workloads,
    )


def mispredict_penalty_ablation(
    runner, penalties=(4, 8, 16, 32), workloads=DEFAULT_ABLATION_WORKLOADS
):
    """Sensitivity of the postdoms speedup to the refill penalty."""
    speedups = {}
    for name in workloads:
        speedups[name] = {}
        for penalty in penalties:
            config = dataclasses.replace(PAPER_CONFIG, mispredict_penalty=penalty)
            stats = _run_with_config(runner, name, config)
            baseline = _baseline_with_config(runner, name, config)
            speedups[name][penalty] = speedup_percent(stats, baseline)
    return AblationResult(
        "Ablation: branch mispredict penalty (matched baseline)",
        "penalty",
        penalties,
        workloads,
        speedups,
    )


def spawn_distance_ablation(
    runner, caps=(64, 128, 256, 512), workloads=DEFAULT_ABLATION_WORKLOADS
):
    """The 'not too far into the future' cap on spawn distances."""

    def make_config(cap):
        return dataclasses.replace(PAPER_CONFIG, max_spawn_distance=cap)

    return _sweep(
        runner,
        "Ablation: maximum spawn distance (postdoms policy)",
        "max_dist",
        caps,
        make_config,
        workloads,
    )


def divert_release_ablation(runner, workloads=DEFAULT_ABLATION_WORKLOADS):
    """Divert-queue release at producer dispatch vs completion."""

    def make_config(release):
        return dataclasses.replace(PAPER_CONFIG, divert_release=release)

    return _sweep(
        runner,
        "Ablation: divert-queue release policy (postdoms policy)",
        "release",
        ("dispatch", "complete"),
        make_config,
        workloads,
    )
