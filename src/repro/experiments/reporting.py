"""ASCII rendering of experiment results."""


def format_table(headers, rows, title=None):
    """Render a list of rows as an aligned ASCII table.

    Args:
        headers: Column header strings.
        rows: Iterable of row tuples (values are str()-ed).
        title: Optional title line.
    """
    rendered_rows = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def format_row(values):
        cells = []
        for column, value in enumerate(values):
            if column == 0:
                cells.append(value.ljust(widths[column]))
            else:
                cells.append(value.rjust(widths[column]))
        return "  ".join(cells)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def format_percent(value):
    """Render a speedup percentage."""
    return "{:+.1f}".format(value)


def format_speedup_table(result, title):
    """Render a {workload: {spec: %}} mapping as a table."""
    specs = result.specs
    headers = ["benchmark"] + list(specs)
    rows = []
    for name in result.workloads + ("Average",):
        rows.append(
            [name] + [format_percent(result.speedups[name][spec]) for spec in specs]
        )
    return format_table(headers, rows, title=title)


def _attribution_origin_order(origins):
    """Origins sorted with "entry" first, then numerically by trigger PC."""

    def sort_key(origin):
        if origin == "entry":
            return (0, 0, "")
        try:
            return (1, int(origin), "")
        except ValueError:
            return (2, 0, origin)

    return sorted(origins, key=sort_key)


def _format_ratio(value):
    return "{:.3f}".format(value)


def format_spawn_point_attribution(metrics, title=None):
    """Render one :class:`~repro.obs.MetricsAggregator` snapshot.

    Args:
        metrics: ``aggregator.as_dict()`` output (or a
            :func:`~repro.obs.merge_metrics` result) — a mapping with
            ``origins`` and ``totals``.
        title: Optional title line.

    One row per originating spawn point (trigger PC), "entry" being
    the initial non-speculative task, plus a TOTAL row.
    """
    headers = [
        "origin",
        "spawns",
        "squashes",
        "violations",
        "committed",
        "squashed_instr",
        "tasks",
        "mean_len",
        "useful",
    ]

    def row(label, counters):
        return [
            label,
            counters["spawns"],
            counters["squashes"],
            counters["violations"],
            counters["committed"],
            counters["squashed_instructions"],
            counters["tasks_committed"],
            "{:.1f}".format(counters["mean_task_length"]),
            _format_ratio(counters["useful_commit_ratio"]),
        ]

    origins = metrics.get("origins", {})
    rows = [
        row(origin, origins[origin])
        for origin in _attribution_origin_order(origins)
    ]
    rows.append(row("TOTAL", metrics["totals"]))
    return format_table(headers, rows, title=title)


def format_policy_attribution(metrics_by_spec, title=None):
    """Render per-policy attribution totals, one row per policy spec.

    Args:
        metrics_by_spec: ``{spec: metrics snapshot}`` where each
            snapshot has the ``origins``/``totals`` shape of
            :meth:`~repro.obs.MetricsAggregator.as_dict`.
        title: Optional title line.
    """
    headers = [
        "policy",
        "spawns",
        "squashes",
        "violations",
        "committed",
        "squashed_instr",
        "tasks",
        "mean_len",
        "useful",
    ]
    rows = []
    for spec in sorted(metrics_by_spec):
        totals = metrics_by_spec[spec]["totals"]
        rows.append(
            [
                spec,
                totals["spawns"],
                totals["squashes"],
                totals["violations"],
                totals["committed"],
                totals["squashed_instructions"],
                totals["tasks_committed"],
                "{:.1f}".format(totals["mean_task_length"]),
                _format_ratio(totals["useful_commit_ratio"]),
            ]
        )
    return format_table(headers, rows, title=title)


def format_bars(values, width=50, label_width=None):
    """Render labelled horizontal ASCII bars (the figures are bar charts).

    Args:
        values: Iterable of ``(label, value)`` pairs (values in %).
        width: Character budget for the longest bar.
        label_width: Fixed label column width (default: longest label).

    Negative values render to the left of the axis, as in Figure 9's
    bars below zero.
    """
    values = list(values)
    if not values:
        return ""
    if label_width is None:
        label_width = max(len(str(label)) for label, _ in values)
    largest = max(abs(value) for _, value in values) or 1.0
    scale = width / largest
    lines = []
    for label, value in values:
        length = int(round(abs(value) * scale))
        bar = "#" * length
        if value < 0:
            rendered = "-" + bar
        else:
            rendered = bar
        lines.append(
            "{:<{label_width}} |{:<{width}} {:+.1f}%".format(
                label, rendered, value, label_width=label_width, width=width + 1
            )
        )
    return "\n".join(lines)
