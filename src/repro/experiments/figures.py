"""Generators for every table and figure in the paper's evaluation.

Each ``figureN`` function runs (or reuses) the necessary simulations via
an :class:`~repro.experiments.runner.ExperimentRunner` and returns a
structured result object whose ``render()`` produces the same rows or
series the paper reports.
"""

from repro.experiments import paper_data
from repro.experiments.reporting import format_percent, format_table
from repro.experiments.runner import (
    REC_PRED_SPEC,
    SUPERSCALAR_SPEC,
    ExperimentRunner,
)
from repro.polyflow.config import figure8_rows
from repro.spawn import POSTDOMINATOR_CATEGORIES, static_distribution
from repro.spawn.policies import (
    COMBINATION_POLICY_SPECS,
    EXCLUSION_POLICY_SPECS,
    INDIVIDUAL_POLICY_SPECS,
)

#: Figure 9 policy order.
FIGURE9_SPECS = INDIVIDUAL_POLICY_SPECS + ("postdoms",)
#: Figure 10 policy order.
FIGURE10_SPECS = COMBINATION_POLICY_SPECS + ("postdoms",)
#: Figure 12 policy order.
FIGURE12_SPECS = (REC_PRED_SPEC, "postdoms")

#: Policy specs each figure simulates (figures 5 and 8 run nothing).
FIGURE_SIMULATION_SPECS = {
    "fig5": (),
    "fig8": (),
    "fig9": FIGURE9_SPECS,
    "fig10": FIGURE10_SPECS,
    "fig11": EXCLUSION_POLICY_SPECS + ("postdoms",),
    "fig12": FIGURE12_SPECS,
}


def figure_jobs(figure, runner):
    """Every (workload, spec) simulation ``figure`` needs.

    Feeding the union of these into
    :meth:`~repro.experiments.runner.ExperimentRunner.prefetch` lets a
    parallel runner schedule a whole figure (or several) as one batch.
    """
    specs = FIGURE_SIMULATION_SPECS.get(figure, ())
    if not specs:
        return []
    jobs = [(name, SUPERSCALAR_SPEC) for name in runner.workload_names]
    jobs.extend(
        (name, spec) for name in runner.workload_names for spec in specs
    )
    return jobs


def figure_jobs_union(figures, runner):
    """The union of every requested figure's simulation grid.

    One list feeding one ``prefetch`` call, so the batched scheduler
    chunks and cost-orders the whole multi-figure grid at once
    (``normalize_jobs`` deduplicates the shared baseline cells).
    """
    jobs = []
    for figure in figures:
        jobs.extend(figure_jobs(figure, runner))
    return jobs


class SpeedupResult:
    """Per-benchmark speedups for a set of policy specs."""

    def __init__(self, title, specs, workloads, speedups, superscalar_ipc=None):
        self.title = title
        self.specs = tuple(specs)
        self.workloads = tuple(workloads)
        #: {workload (or "Average"): {spec: speedup %}}
        self.speedups = speedups
        #: {workload: superscalar IPC} (Figure 9 reports these).
        self.superscalar_ipc = superscalar_ipc or {}

    def average(self, spec):
        """The suite-average speedup of one spec."""
        return self.speedups["Average"][spec]

    def best_individual_average(self):
        """Average of the best-performing non-postdoms spec."""
        return max(
            self.average(spec) for spec in self.specs if spec != "postdoms"
        )

    def render(self):
        """Render the figure as an ASCII table."""
        headers = ["benchmark"] + list(self.specs)
        if self.superscalar_ipc:
            headers.insert(1, "base IPC")
        rows = []
        for name in self.workloads + ("Average",):
            row = [name]
            if self.superscalar_ipc:
                ipc = self.superscalar_ipc.get(name)
                row.append("({:.2f})".format(ipc) if ipc is not None else "")
            row.extend(format_percent(self.speedups[name][spec]) for spec in self.specs)
            rows.append(row)
        return format_table(headers, rows, title=self.title)

    def render_bars(self, spec=None):
        """Render one policy's per-benchmark bars (closest to the paper's
        bar-chart presentation).  Defaults to the last spec (postdoms)."""
        from repro.experiments.reporting import format_bars

        spec = spec or self.specs[-1]
        values = [
            (name, self.speedups[name][spec])
            for name in self.workloads + ("Average",)
        ]
        header = "{} — {}".format(self.title, spec)
        return header + "\n" + format_bars(values)


class StaticDistributionResult:
    """Figure 5: static distribution of control-equivalent task types."""

    def __init__(self, workloads, counts):
        self.workloads = tuple(workloads)
        #: {workload: {SpawnCategory: count}}
        self.counts = counts

    def total(self, name):
        """Total static spawns of one workload (the number on the bar)."""
        return sum(self.counts[name].values())

    def percentages(self, name):
        """Category percentages for one workload."""
        total = self.total(name)
        if not total:
            return {category: 0.0 for category in POSTDOMINATOR_CATEGORIES}
        return {
            category: 100.0 * self.counts[name][category] / total
            for category in POSTDOMINATOR_CATEGORIES
        }

    def render(self):
        headers = ["benchmark"] + [str(c) for c in POSTDOMINATOR_CATEGORIES] + [
            "total",
            "paper total",
        ]
        rows = []
        for name in self.workloads:
            percentages = self.percentages(name)
            rows.append(
                [name]
                + [
                    "{:.0f}%".format(percentages[category])
                    for category in POSTDOMINATOR_CATEGORIES
                ]
                + [
                    self.total(name),
                    paper_data.FIGURE5_TOTAL_STATIC_SPAWNS.get(name, "-"),
                ]
            )
        return format_table(
            headers,
            rows,
            title="Figure 5: static distribution of control-equivalent task types",
        )


class LossResult:
    """Figure 11: loss in speedup when one category is excluded."""

    def __init__(self, workloads, losses):
        self.workloads = tuple(workloads)
        #: {workload: {exclusion spec: loss in % speedup}}
        self.losses = losses

    def render(self):
        specs = EXCLUSION_POLICY_SPECS
        headers = ["benchmark"] + [spec.replace("postdoms-", "-") for spec in specs]
        rows = []
        for name in self.workloads + ("Average",):
            rows.append(
                [name] + [format_percent(self.losses[name][spec]) for spec in specs]
            )
        return format_table(
            headers,
            rows,
            title=(
                "Figure 11: loss in % speedup vs full postdominator set "
                "(positive = excluding the category hurts)"
            ),
        )


def figure5(runner=None):
    """Static distribution of control-equivalent task types."""
    runner = runner or ExperimentRunner()
    counts = {}
    for name in runner.workload_names:
        prepared = runner.workload(name)
        counts[name] = static_distribution(
            prepared.spawn_analysis.postdominator_points
        )
    return StaticDistributionResult(runner.workload_names, counts)


def figure8():
    """The pipeline-parameter table."""
    return format_table(
        ["Parameter", "Value"], figure8_rows(), title="Figure 8: pipeline parameters"
    )


def _speedup_result(runner, title, specs, with_ipc=False):
    speedups = runner.speedups_for_specs(specs)
    ipc = None
    if with_ipc:
        ipc = {name: runner.baseline(name).ipc for name in runner.workload_names}
    return SpeedupResult(title, specs, runner.workload_names, speedups, ipc)


def figure9(runner=None):
    """Individual heuristic policies vs control-equivalent spawning."""
    runner = runner or ExperimentRunner()
    return _speedup_result(
        runner,
        "Figure 9: individual heuristic policies (speedup % over superscalar)",
        FIGURE9_SPECS,
        with_ipc=True,
    )


def figure10(runner=None):
    """Heuristic combinations vs control-equivalent spawning."""
    runner = runner or ExperimentRunner()
    return _speedup_result(
        runner,
        "Figure 10: heuristic combinations (speedup % over superscalar)",
        FIGURE10_SPECS,
    )


def figure11(runner=None):
    """Loss from excluding one postdominator category."""
    runner = runner or ExperimentRunner()
    runner.prefetch(figure_jobs("fig11", runner))
    losses = {}
    for name in runner.workload_names:
        full = runner.speedup(name, "postdoms")
        losses[name] = {
            spec: full - runner.speedup(name, spec) for spec in EXCLUSION_POLICY_SPECS
        }
    losses["Average"] = {
        spec: sum(losses[name][spec] for name in runner.workload_names)
        / len(runner.workload_names)
        for spec in EXCLUSION_POLICY_SPECS
    }
    return LossResult(runner.workload_names, losses)


def figure12(runner=None):
    """Reconvergence-predictor spawning vs compiler postdominators."""
    runner = runner or ExperimentRunner()
    return _speedup_result(
        runner,
        "Figure 12: spawning using reconvergence prediction "
        "(speedup % over superscalar)",
        FIGURE12_SPECS,
    )


def headline_ratios(figure9_result, figure10_result):
    """The abstract's two headline ratios, computed from our results.

    Returns:
        ``(postdoms_vs_best_heuristic, postdoms_vs_best_combination)``.
    """
    postdoms = figure9_result.average("postdoms")
    best_heuristic = figure9_result.best_individual_average()
    best_combination = max(
        figure10_result.average(spec)
        for spec in figure10_result.specs
        if spec != "postdoms"
    )
    heuristic_ratio = postdoms / best_heuristic if best_heuristic > 0 else float("inf")
    combination_ratio = (
        postdoms / best_combination if best_combination > 0 else float("inf")
    )
    return heuristic_ratio, combination_ratio
