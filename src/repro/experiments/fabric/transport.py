"""Fabric transports: ship planned chunks to executors, stream results.

A transport takes the scheduler's cost-balanced chunks and executes
them somewhere, yielding ``(chunk_index, outcomes)`` pairs as results
arrive; each outcome is ``(packed_stats, seconds, blocks, source)``
with ``source`` either ``"simulated"`` or ``"store"``.  Two
implementations:

* :class:`LocalPoolTransport` — today's warm in-process fork pool
  (:func:`repro.experiments.scheduler.execute_chunk`) behind the
  fabric interface.  A ``BrokenProcessPool`` propagates exactly as it
  does on the classic path.
* :class:`SubprocessWorkerTransport` — ``python -m
  repro.experiments.fabric.worker`` processes (launched directly, or
  through a user-supplied command template for SSH), spoken to over
  the length-prefixed frame protocol.  Chunks are sharded across
  workers by :func:`repro.experiments.scheduler.plan_shards`; one
  reader thread per worker *process* (started at spawn, generation
  tagged, exiting at EOF) funnels frames into a transport-owned
  queue, so a transport reused across dispatches never has two
  readers on one pipe; a worker that goes silent past the chunk
  timeout, or whose stream hits EOF with chunks outstanding, raises
  :class:`FabricWorkerDied` so the runner's retry loop can replan
  only the unfinished cells.

Both transports collect placement telemetry — cells and wall clock
per worker, straggler wall, worker store counters — surfaced through
:meth:`placement` into the run summary and the event bus.
"""

import os
import queue
import shlex
import subprocess
import sys
import threading
import time

from repro.experiments import scheduler
from repro.experiments.fabric import protocol

#: Default ceiling on one worker's silence (no result, no heartbeat)
#: while it holds outstanding chunks.
DEFAULT_CHUNK_TIMEOUT = 300.0


class FabricWorkerDied(RuntimeError):
    """A worker died (or went silent) with chunks outstanding.

    The fabric analogue of ``BrokenProcessPool``: the runner's retry
    loop catches it, tears the transport down, and replans only the
    cells whose results never arrived.
    """

    def __init__(self, worker, reason, unfinished):
        super().__init__(
            "fabric worker {} {} with {} chunk(s) outstanding".format(
                worker, reason, len(unfinished)
            )
        )
        self.worker = worker
        self.unfinished = tuple(unfinished)


class LocalPoolTransport:
    """The warm fork pool as a fabric transport."""

    def __init__(self, workers, analysis_dir=None):
        self.workers = max(1, int(workers))
        self.analysis_dir = analysis_dir
        self._placement = _empty_placement(self.workers)

    def execute(self, scale, chunks, costs):
        """Submit every chunk to the warm pool; yield results as done.

        The pool balances work itself (chunks are already
        longest-expected-first); per-worker attribution is therefore
        approximated by the shard plan for telemetry purposes.
        """
        from concurrent.futures import as_completed

        warmup = sorted({name for chunk in chunks for name, _, _, _ in chunk})
        pool = scheduler.warm_pool(
            self.workers,
            analysis_dir=self.analysis_dir,
            warmup=[(name, scale) for name in warmup],
        )
        shards = scheduler.plan_shards(costs, self.workers)
        placement = _empty_placement(self.workers)
        futures = {}
        for index, chunk in enumerate(chunks):
            payload = [job + (None,) for job in chunk]
            futures[
                pool.submit(
                    scheduler.execute_chunk,
                    self.analysis_dir,
                    scale,
                    False,
                    payload,
                )
            ] = index
        started = time.perf_counter()
        for future in as_completed(futures):
            index = futures[future]
            outcomes = [
                (packed, seconds, blocks, "simulated")
                for packed, _, seconds, blocks in future.result()
            ]
            worker = next(
                worker for worker, shard in enumerate(shards) if index in shard
            )
            placement["cells_by_worker"][worker] += len(outcomes)
            placement["chunks_by_worker"][worker] += 1
            yield index, outcomes
        wall = time.perf_counter() - started
        placement["wall_by_worker"] = [wall] * self.workers
        placement["straggler_seconds"] = wall
        self._placement = placement

    def placement(self):
        return dict(self._placement)

    def close(self):
        """The pool is process-global; the runner owns its lifecycle."""


class SubprocessWorkerTransport:
    """Worker subprocesses speaking the fabric frame protocol.

    ``command_template`` customizes how workers launch — e.g.
    ``"ssh build-host {python} -u -m repro.experiments.fabric.worker"``
    — with ``{python}`` replaced by the driver's interpreter; worker
    arguments (``--index``, ``--store`` …) are appended.  The default
    launches local subprocesses with the driver's ``PYTHONPATH``
    extended to the repro package root, so a bare checkout works
    without installation.

    ``throughputs`` weights the shard planner when workers are not
    equally fast (a laptop driving a big remote box); ``extra_env``
    reaches the workers' environment (tests inject faults there).
    """

    def __init__(
        self,
        workers=2,
        store_root=None,
        local_store_root=None,
        analysis_dir=None,
        command_template=None,
        chunk_timeout=DEFAULT_CHUNK_TIMEOUT,
        heartbeat_interval=1.0,
        throughputs=None,
        extra_env=None,
    ):
        self.workers = max(1, int(workers))
        self.store_root = store_root
        self.local_store_root = local_store_root
        self.analysis_dir = analysis_dir
        self.command_template = command_template
        self.chunk_timeout = chunk_timeout
        self.heartbeat_interval = heartbeat_interval
        self.throughputs = throughputs
        self.extra_env = dict(extra_env or {})
        self._procs = [None] * self.workers
        self._readers = [None] * self.workers
        #: Incarnation counter per worker slot: frames are tagged with
        #: the generation of the process that produced them, so frames
        #: a replaced worker's reader queued (results from a torn-down
        #: dispatch, EOF sentinels of killed processes) are dropped
        #: instead of desyncing the protocol.
        self._generation = [0] * self.workers
        self._frames = queue.Queue()
        self._worker_store_stats = [None] * self.workers
        self._placement = _empty_placement(self.workers)

    # -- worker lifecycle ---------------------------------------------------------

    def _command(self, index):
        if self.command_template:
            command = shlex.split(
                self.command_template.format(python=sys.executable)
            )
        else:
            command = [
                sys.executable,
                "-u",
                "-m",
                "repro.experiments.fabric.worker",
            ]
        command += ["--index", str(index)]
        if self.store_root:
            command += ["--store", self.store_root]
        if self.local_store_root:
            command += ["--local-store", self.local_store_root]
        command += ["--heartbeat", str(self.heartbeat_interval)]
        return command

    def _environment(self):
        import repro

        environment = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(repro.__file__))
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
        environment.update(self.extra_env)
        return environment

    def _spawn(self, index):
        process = subprocess.Popen(
            self._command(index),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=self._environment(),
        )
        try:
            protocol.check_hello(protocol.read_frame(process.stdout))
        except protocol.FabricProtocolError:
            process.kill()
            process.wait()
            raise
        protocol.write_frame(
            process.stdin,
            {"kind": "configure", "analysis_dir": self.analysis_dir},
        )
        self._generation[index] += 1
        reader = threading.Thread(
            target=_read_worker,
            args=(index, self._generation[index], process.stdout, self._frames),
            daemon=True,
        )
        reader.start()
        self._readers[index] = reader
        return process

    def ensure_workers(self):
        """Spawn (or respawn) every missing worker.

        A worker is respawned when its process is gone *or* its reader
        thread has exited (EOF, or a protocol error mid-stream): a live
        process whose pipe nobody reads can only time out.
        """
        for index in range(self.workers):
            process = self._procs[index]
            reader = self._readers[index]
            if (
                process is not None
                and process.poll() is None
                and reader is not None
                and reader.is_alive()
            ):
                continue
            if process is not None and process.poll() is None:
                process.kill()
                process.wait()
            self._procs[index] = self._spawn(index)

    def close(self):
        for index, process in enumerate(self._procs):
            if process is None:
                continue
            try:
                if process.poll() is None:
                    protocol.write_frame(process.stdin, {"kind": "shutdown"})
                    process.stdin.close()
                    process.wait(timeout=5.0)
            except (OSError, ValueError, subprocess.TimeoutExpired):
                process.kill()
                process.wait()
            finally:
                self._procs[index] = None
                self._readers[index] = None

    # -- execution ----------------------------------------------------------------

    def execute(self, scale, chunks, costs):
        """Shard ``chunks`` across workers and stream back outcomes.

        All chunks are written up front (workers drain their stdin
        pipeline in order — the shard plan already balanced the load),
        then frames are collected until every chunk reported or a
        worker is declared dead.
        """
        self.ensure_workers()
        # Idle workers heartbeat between dispatches; drop that backlog
        # (plus any stale-generation leftovers) now, re-queuing only
        # EOF sentinels for the collection loop below.
        backlog = []
        while True:
            try:
                item = self._frames.get_nowait()
            except queue.Empty:
                break
            index, generation, frame = item
            if generation != self._generation[index]:
                continue
            if frame is not None and frame["kind"] == "heartbeat":
                continue
            backlog.append(item)
        for item in backlog:
            self._frames.put(item)
        shards = scheduler.plan_shards(
            costs, self.workers, throughputs=self.throughputs
        )
        pending = {}
        started = time.perf_counter()
        for worker, shard in enumerate(shards):
            process = self._procs[worker]
            for chunk_index in shard:
                pending[chunk_index] = worker
                try:
                    protocol.write_frame(
                        process.stdin,
                        {
                            "kind": "chunk",
                            "id": chunk_index,
                            "scale": scale,
                            "cells": [
                                protocol.encode_cell(*job)
                                for job in chunks[chunk_index]
                            ],
                        },
                    )
                except OSError:
                    raise self._dead(worker, "pipe closed", pending)

        placement = _empty_placement(self.workers)
        for worker, shard in enumerate(shards):
            placement["chunks_by_worker"][worker] = len(shard)
        last_activity = {index: time.perf_counter() for index in pending.values()}
        finished_at = dict(last_activity)
        while pending:
            timeout = max(self.heartbeat_interval, 0.05) * 2
            try:
                worker, generation, frame = self._frames.get(timeout=timeout)
            except queue.Empty:
                worker = None
            else:
                if generation != self._generation[worker]:
                    # A replaced incarnation's leftovers (stale results,
                    # the EOF sentinel of a killed process): drop them.
                    worker = None
            now = time.perf_counter()
            if worker is not None:
                last_activity[worker] = now
            # Silence deadlines are evaluated every iteration — a busy
            # sibling heartbeating keeps the queue non-empty, which must
            # not shield a stalled worker from its chunk timeout.
            for index, seen in last_activity.items():
                if (
                    any(owner == index for owner in pending.values())
                    and now - seen > self.chunk_timeout
                ):
                    raise self._dead(index, "went silent", pending)
            if worker is None:
                continue
            if frame is None:
                if any(owner == worker for owner in pending.values()):
                    raise self._dead(worker, "exited", pending)
                continue
            if frame["kind"] == "heartbeat":
                continue
            if frame["kind"] != "result":
                raise protocol.FabricProtocolError(
                    "unexpected frame kind {!r} from worker {}".format(
                        frame["kind"], worker
                    )
                )
            chunk_index = frame["id"]
            pending.pop(chunk_index, None)
            if frame.get("store") is not None:
                self._worker_store_stats[worker] = frame["store"]
            outcomes = [
                (
                    protocol.decode_packed(outcome["packed"]),
                    outcome["seconds"],
                    outcome["blocks"],
                    outcome["source"],
                )
                for outcome in frame["outcomes"]
            ]
            placement["cells_by_worker"][worker] += len(outcomes)
            placement["store_cells_by_worker"][worker] += sum(
                1 for outcome in outcomes if outcome[3] == "store"
            )
            finished_at[worker] = time.perf_counter()
            yield chunk_index, outcomes
        placement["wall_by_worker"] = [
            round(finished_at.get(index, started) - started, 6)
            for index in range(self.workers)
        ]
        placement["straggler_seconds"] = max(
            placement["wall_by_worker"] or [0.0]
        )
        self._placement = placement

    def _dead(self, worker, reason, pending):
        """Build the :class:`FabricWorkerDied` for one incident.

        Every worker is torn down — mirroring the pool path, where one
        dead worker poisons the whole executor — so the retry starts
        from a clean fleet (``ensure_workers`` respawns it).
        """
        unfinished = sorted(
            index for index, owner in pending.items() if owner == worker
        )
        for process in self._procs:
            if process is not None and process.poll() is None:
                process.kill()
                process.wait()
        self._procs = [None] * self.workers
        self._readers = [None] * self.workers
        return FabricWorkerDied(worker, reason, unfinished)

    def placement(self):
        placement = dict(self._placement)
        store_totals = {}
        for stats in self._worker_store_stats:
            for key, value in (stats or {}).items():
                store_totals[key] = store_totals.get(key, 0) + value
        placement["worker_store"] = store_totals
        return placement


def _read_worker(index, generation, stream, frames):
    """Reader thread: funnel one incarnation's frames into the queue.

    Runs for the lifetime of one worker process — started at spawn,
    exiting at EOF (clean or torn) — and tags every frame with the
    incarnation's generation so the consumer can discard leftovers
    after the process is replaced.
    """
    try:
        while True:
            frame = protocol.read_frame(stream)
            frames.put((index, generation, frame))
            if frame is None:
                return
    except protocol.FabricProtocolError:
        frames.put((index, generation, None))


def _empty_placement(workers):
    return {
        "workers": workers,
        "cells_by_worker": [0] * workers,
        "chunks_by_worker": [0] * workers,
        "store_cells_by_worker": [0] * workers,
        "wall_by_worker": [0.0] * workers,
        "straggler_seconds": 0.0,
    }
