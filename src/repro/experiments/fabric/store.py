"""The shared content-addressed artifact store of the fabric.

:class:`SharedStore` promotes the on-disk layout of
:class:`~repro.experiments.parallel.ResultCache` — entries sharded by
the first two characters of their job digest, written through a
temporary file plus :func:`os.replace` — to a *fetch/publish* protocol
that many workers (and many machines, over a shared filesystem) can
hit concurrently:

* **publish** is atomic: concurrent publishers of the same digest race
  harmlessly, last rename wins, and readers never observe a torn
  entry.
* **fetch** is digest-verified: every entry is wrapped in an envelope
  carrying the SHA-256 of its body, checked on every read.  A
  mismatch (bit rot, a torn copy from a non-atomic remote sync) is
  *rejected* — counted, reported, treated as a miss — never decoded.
* an optional **local read-through cache** keeps a machine-local copy
  of everything fetched from (or published to) the shared root, so a
  worker on a far store pays the round-trip once per artifact.

Entry bodies are exactly the pickled ``{"meta", "stats", "metrics"}``
dict the :class:`ResultCache` writes, so a CI cache seeds a fabric
store with :func:`seed_from_cache` — a re-wrap, not a re-simulation.
"""

import hashlib
import os
import pickle
import tempfile

#: Envelope header magic; the version covers the envelope format only
#: (the pickled body is versioned by the result-cache format).
_MAGIC = b"polyflow-fabric-store"
ENVELOPE_VERSION = 1

#: Filename suffix of store entries (distinct from the result cache's
#: bare pickles: a store entry is envelope-wrapped).
ENTRY_SUFFIX = ".blob"


def _wrap(body):
    digest = hashlib.sha256(body).hexdigest()
    header = b" ".join(
        (_MAGIC, str(ENVELOPE_VERSION).encode("ascii"), digest.encode("ascii"))
    )
    return header + b"\n" + body


def _unwrap(data):
    """The verified body of one envelope, or ``None`` if damaged."""
    header, separator, body = data.partition(b"\n")
    if not separator:
        return None
    parts = header.split(b" ")
    if len(parts) != 3 or parts[0] != _MAGIC:
        return None
    if parts[1] != str(ENVELOPE_VERSION).encode("ascii"):
        return None
    if hashlib.sha256(body).hexdigest().encode("ascii") != parts[2]:
        return None
    return body


def entry_body(stats, meta, metrics=None):
    """The pickled store body of one finished simulation."""
    return pickle.dumps({"meta": meta, "stats": stats, "metrics": metrics})


def decode_entry(body):
    """``(stats, metrics)`` of one store body."""
    entry = pickle.loads(body)
    return entry["stats"], entry.get("metrics")


class SharedStore:
    """One store root: digest-keyed, envelope-verified artifacts.

    ``local_root`` enables the read-through cache: fetches probe it
    first, and every shared-root hit (and every publish) is mirrored
    there.  Counters (``fetches``/``hits``/``misses``/``publishes``/
    ``local_hits``/``corrupt_rejected``) accumulate for the run
    summary's fabric telemetry.
    """

    def __init__(self, root, local_root=None):
        self.root = root
        self.local = SharedStore(local_root) if local_root else None
        self.fetches = 0
        self.hits = 0
        self.misses = 0
        self.publishes = 0
        self.local_hits = 0
        self.corrupt_rejected = 0

    def path(self, digest):
        return os.path.join(self.root, digest[:2], digest + ENTRY_SUFFIX)

    def contains(self, digest):
        """Whether an entry exists (a cheap probe — no verification).

        The cost model uses this to price store-held cells (see
        :func:`repro.experiments.scheduler.job_cost`); actual loads
        always go through the verifying :meth:`fetch`.
        """
        return os.path.exists(self.path(digest))

    def _read(self, digest):
        """The verified body under this root alone, or ``None``."""
        try:
            with open(self.path(digest), "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        body = _unwrap(data)
        if body is None:
            self.corrupt_rejected += 1
        return body

    def fetch(self, digest):
        """The verified body for ``digest``, or ``None`` on a miss.

        A corrupt entry — torn, truncated, or failing its digest
        check — counts as ``corrupt_rejected`` *and* a miss: the
        caller re-simulates and republishes over it.
        """
        self.fetches += 1
        if self.local is not None:
            body = self.local._read(digest)
            if body is not None:
                self.local_hits += 1
                self.hits += 1
                return body
        body = self._read(digest)
        if body is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.local is not None:
            self.local.publish(digest, body)
        return body

    def publish(self, digest, body):
        """Atomically write ``body`` under ``digest`` (idempotent).

        Concurrent publishers of the same digest both succeed; the
        entry is replaced whole either way, so readers racing the
        rename see the old envelope or the new one, never a mix.
        """
        path = self.path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        handle, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(_wrap(body))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.publishes += 1
        if self.local is not None:
            self.local.publish(digest, body)

    def stats(self):
        """The counter snapshot (cumulative for this store object).

        ``corrupt_rejected`` folds in the local read-through mirror's
        rejections — a corrupt local copy is booked on the mirror's own
        counter during :meth:`fetch`, and an incident is an incident
        wherever the damaged bytes lived.
        """
        corrupt = self.corrupt_rejected
        if self.local is not None:
            corrupt += self.local.corrupt_rejected
        return {
            "fetches": self.fetches,
            "hits": self.hits,
            "misses": self.misses,
            "publishes": self.publishes,
            "local_hits": self.local_hits,
            "corrupt_rejected": corrupt,
        }

    def __len__(self):
        if not os.path.isdir(self.root):
            return 0
        count = 0
        for shard in os.listdir(self.root):
            shard_path = os.path.join(self.root, shard)
            if os.path.isdir(shard_path):
                count += sum(
                    1
                    for entry in os.listdir(shard_path)
                    if entry.endswith(ENTRY_SUFFIX)
                )
        return count

    def gc(self, max_bytes=None):
        """Size-capped LRU sweep (see :meth:`ResultCache.gc`).

        Entries failing their envelope check are pruned first, then
        the oldest entries (by mtime) are evicted until the store fits
        in ``max_bytes``.
        """
        from repro.experiments.parallel import sweep_entries

        return sweep_entries(
            self.root,
            max_bytes,
            suffix=ENTRY_SUFFIX,
            verify=lambda data: _unwrap(data) is not None,
        )


def seed_from_cache(store, cache_root):
    """Publish every entry of a :class:`ResultCache` tree into ``store``.

    The cache's bare pickles become envelope-wrapped store entries
    keyed by the same job digests (the filenames).  Returns the number
    of entries published.  Unreadable files are skipped — seeding a
    cache that is concurrently being written must not fail the run.
    """
    seeded = 0
    if not os.path.isdir(cache_root):
        return seeded
    for shard in sorted(os.listdir(cache_root)):
        shard_path = os.path.join(cache_root, shard)
        if len(shard) != 2 or not os.path.isdir(shard_path):
            continue
        for entry in sorted(os.listdir(shard_path)):
            if not entry.endswith(".pkl"):
                continue
            digest = entry[: -len(".pkl")]
            try:
                with open(os.path.join(shard_path, entry), "rb") as handle:
                    body = handle.read()
                pickle.loads(body)
            except Exception:
                continue
            store.publish(digest, body)
            seeded += 1
    return seeded
