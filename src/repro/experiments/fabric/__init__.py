"""The experiment fabric: sharded execution across worker processes.

The grid scheduler of :mod:`repro.experiments.scheduler` fans chunks
out to a warm in-process fork pool — bounded by one machine's cores.
This package ships the same cost-balanced chunks to *external*
executors instead:

* :mod:`~repro.experiments.fabric.protocol` — the length-prefixed
  JSON chunk protocol (wire-version guarded) workers speak over
  stdin/stdout, including an exact JSON round-trip of the scheduler's
  packed stat tuples.
* :mod:`~repro.experiments.fabric.store` — :class:`SharedStore`, the
  content-addressed artifact store (digest-verified fetch, atomic
  publish, local read-through cache) workers and parents share.
* :mod:`~repro.experiments.fabric.transport` — the
  :class:`Transport` implementations: :class:`LocalPoolTransport`
  (today's warm pool behind the fabric interface) and
  :class:`SubprocessWorkerTransport` (worker processes launched
  locally or through an SSH command template).
* :mod:`~repro.experiments.fabric.worker` — the worker entry point
  (``python -m repro.experiments.fabric.worker``).

Placement never changes results: cells are deterministic simulations
keyed by their job digests, outcomes merge into the same keyed memo
the serial runner reads, and the placement-invariance suite asserts
byte identity across transports, worker counts, and schedules.
"""

from repro.experiments.fabric.store import SharedStore
from repro.experiments.fabric.transport import (
    FabricWorkerDied,
    LocalPoolTransport,
    SubprocessWorkerTransport,
)

__all__ = [
    "SharedStore",
    "FabricWorkerDied",
    "LocalPoolTransport",
    "SubprocessWorkerTransport",
]
