"""The fabric worker: ``python -m repro.experiments.fabric.worker``.

One worker process serves one driver over stdin/stdout, speaking the
frame protocol of :mod:`repro.experiments.fabric.protocol`.  Startup
announces a ``hello`` (wire version, pid, worker index); a background
thread heartbeats so the driver can tell a long simulation from a dead
process; then the main loop executes ``chunk`` frames until
``shutdown`` or EOF.

Chunk execution is store-first: every cell's job digest is probed
against the shared artifact store (``--store``), and held cells are
answered from the verified entry without simulating — labeled
``source=store`` so the driver books them as store hits, not runs.
The remaining cells run through the scheduler's
:func:`~repro.experiments.scheduler.execute_chunk` — the *same*
worker-side path the local pool uses, lockstep grid-batching included,
so fabric results are bit-identical to pooled and serial ones — and
each fresh result is published back to the store for the next worker.

stdout carries frames only; anything a simulation prints would corrupt
the stream, so the worker rebinds ``sys.stdout`` to stderr after
claiming the real stream.

Fault injection (tests): the ``REPRO_FABRIC_FAULT`` environment
variable injects deterministic failures, each claimed by the single
incarnation that manages to create its ``<flagfile>`` first so a
respawned (or sibling) worker survives and the retry path is
deterministic.  ``die-after-result:<flagfile>`` exits hard after the
first result; ``freeze-on-chunk:<flagfile>`` goes completely silent on
the first chunk — heartbeats included, simulating a SIGSTOP or network
partition the driver must catch by chunk timeout.
"""

import argparse
import os
import sys
import threading

from repro.experiments.fabric import protocol

#: Seconds between heartbeat frames.
HEARTBEAT_INTERVAL = 1.0

_FAULT_VARIABLE = "REPRO_FABRIC_FAULT"


def _claim_fault(kind):
    """Whether this incarnation enacts ``kind`` (one winner per flag file)."""
    spec = os.environ.get(_FAULT_VARIABLE, "")
    if not spec.startswith(kind + ":"):
        return False
    flag = spec.partition(":")[2]
    try:
        with open(flag, "x"):
            pass
    except OSError:
        return False
    return True


def _execute_chunk(frame, store, analysis_dir):
    """The ``result`` frame for one ``chunk`` frame."""
    from repro.experiments import scheduler
    from repro.experiments.fabric.store import decode_entry, entry_body
    from repro.experiments.parallel import CACHE_FORMAT_VERSION, job_digest
    from repro.polyflow.config import config_fingerprint

    scale = frame["scale"]
    cells = [protocol.decode_cell(raw) for raw in frame["cells"]]
    digests = [
        job_digest(name, spec, scale, config, profile_distance)
        for name, spec, config, profile_distance in cells
    ]
    outcomes = [None] * len(cells)
    pending = []
    for index, digest in enumerate(digests):
        body = store.fetch(digest) if store is not None else None
        if body is not None:
            try:
                stats, _ = decode_entry(body)
            except Exception:
                store.corrupt_rejected += 1
                body = None
            else:
                outcomes[index] = {
                    "packed": protocol.encode_packed(
                        scheduler.pack_stats(stats)
                    ),
                    "seconds": 0.0,
                    "blocks": {},
                    "source": "store",
                }
        if body is None:
            pending.append(index)
    if pending:
        payload = [
            cells[index] + (None,) for index in pending
        ]  # trace_file=None: fabric cells are plain
        executed = scheduler.execute_chunk(analysis_dir, scale, False, payload)
        for index, (packed, _, seconds, blocks) in zip(pending, executed):
            name, spec, config, profile_distance = cells[index]
            if store is not None:
                meta = {
                    "workload": name,
                    "spec": spec,
                    "scale": scale,
                    "config_fingerprint": config_fingerprint(config),
                    "profile_distance": profile_distance,
                    "version": CACHE_FORMAT_VERSION,
                }
                store.publish(
                    digests[index],
                    entry_body(scheduler.unpack_stats(packed), meta),
                )
            outcomes[index] = {
                "packed": protocol.encode_packed(packed),
                "seconds": seconds,
                "blocks": blocks,
                "source": "simulated",
            }
    return {
        "kind": "result",
        "id": frame["id"],
        "outcomes": outcomes,
        "store": store.stats() if store is not None else None,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(prog="polyflow-fabric-worker")
    parser.add_argument("--index", type=int, default=0)
    parser.add_argument("--store", default=None)
    parser.add_argument(
        "--local-store",
        default=None,
        help="machine-local read-through cache in front of --store",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=HEARTBEAT_INTERVAL,
    )
    arguments = parser.parse_args(argv)

    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # Anything the simulator (or a workload generator) prints must not
    # interleave with protocol frames.
    sys.stdout = sys.stderr

    write_lock = threading.Lock()

    def send(payload):
        with write_lock:
            protocol.write_frame(stdout, payload)

    send(
        {
            "kind": "hello",
            "wire_version": protocol.WIRE_VERSION,
            "pid": os.getpid(),
            "worker": arguments.index,
        }
    )

    stop = threading.Event()

    def beat():
        while not stop.wait(arguments.heartbeat):
            try:
                send({"kind": "heartbeat", "worker": arguments.index})
            except OSError:
                return

    heartbeat_thread = threading.Thread(target=beat, daemon=True)
    heartbeat_thread.start()

    store = None
    if arguments.store:
        from repro.experiments.fabric.store import SharedStore

        store = SharedStore(arguments.store, local_root=arguments.local_store)

    analysis_dir = None
    try:
        while True:
            frame = protocol.read_frame(stdin)
            if frame is None or frame["kind"] == "shutdown":
                break
            if frame["kind"] == "configure":
                analysis_dir = frame.get("analysis_dir")
                if analysis_dir:
                    from repro.analysis.pipeline import configure_disk_cache

                    configure_disk_cache(analysis_dir)
                continue
            if frame["kind"] == "chunk":
                if _claim_fault("freeze-on-chunk"):
                    # A SIGSTOP/partition stand-in: stop heartbeating
                    # and never answer; only the driver's chunk
                    # timeout can unblock the dispatch.
                    stop.set()
                    threading.Event().wait()
                send(_execute_chunk(frame, store, analysis_dir))
                if _claim_fault("die-after-result"):
                    os._exit(3)
                continue
            raise protocol.FabricProtocolError(
                "unexpected frame kind {!r}".format(frame["kind"])
            )
    finally:
        stop.set()
    return 0


if __name__ == "__main__":
    sys.exit(main())
