"""The fabric wire protocol: length-prefixed JSON frames.

A worker and its driver exchange *frames*: a 4-byte big-endian length
followed by that many bytes of canonical JSON (sorted keys, compact
separators).  Every frame is an object led by a ``kind``:

``hello``
    Worker → driver, once, immediately after start:
    ``{"kind": "hello", "wire_version": N, "pid": …, "worker": i}``.
    The driver validates ``wire_version`` against its own
    :data:`WIRE_VERSION` and kills a mismatched worker before sending
    it any work — a stale checkout on a remote host fails loudly at
    handshake, never with corrupt results.

``configure``
    Driver → worker: ``{"kind": "configure", "analysis_dir": …}``
    enables the on-disk analysis cache layer.

``chunk``
    Driver → worker: one cost-balanced chunk of grid cells,
    ``{"kind": "chunk", "id": n, "scale": s, "cells": [cell, …]}``
    where each cell is the JSON form of one job tuple (see
    :func:`encode_cell`).

``result``
    Worker → driver: the aligned outcomes of one chunk,
    ``{"kind": "result", "id": n, "outcomes": [...], "store": {...}}``.
    Each outcome carries the packed stats (see :func:`encode_packed`),
    the simulation seconds, the block-cache delta, and a ``source``
    label (``simulated`` or ``store``).

``heartbeat``
    Worker → driver, periodically from a background thread, so a
    driver can distinguish a long simulation from a dead worker.

``shutdown``
    Driver → worker: drain and exit.

The JSON round-trip of the scheduler's packed stat tuples is *exact*:
spawn categories are encoded by their enum value and restored to
:class:`~repro.spawn.points.SpawnCategory` members, and cache-stat
value pairs are restored to tuples, so ``unpack_stats`` of a decoded
payload is bit-identical to the worker's local stats object.
"""

import json
import struct

from repro.errors import ConfigurationError

#: Version of the fabric frame vocabulary.  Bump on any frame or
#: field change; drivers refuse workers that announce a different
#: version at handshake.
WIRE_VERSION = 1

#: Upper bound on one frame's body; anything larger is a protocol
#: violation (a desynchronized stream decodes garbage lengths).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FabricProtocolError(ConfigurationError):
    """A malformed frame or an incompatible worker."""


def canonical_json(payload):
    """The canonical JSON bytes of one frame body."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def write_frame(stream, payload):
    """Write one frame and flush (workers interleave with heartbeats)."""
    body = canonical_json(payload)
    stream.write(struct.pack(">I", len(body)) + body)
    stream.flush()


def _read_exact(stream, count):
    """Exactly ``count`` bytes, or ``None`` on a clean EOF at byte 0."""
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise FabricProtocolError(
                "stream truncated mid-frame ({} of {} bytes)".format(
                    count - remaining, count
                )
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream):
    """The next decoded frame, or ``None`` on a clean EOF."""
    header = _read_exact(stream, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise FabricProtocolError(
            "frame length {} exceeds the {} byte bound".format(
                length, MAX_FRAME_BYTES
            )
        )
    body = _read_exact(stream, length)
    if body is None:
        raise FabricProtocolError("stream truncated after frame header")
    try:
        frame = json.loads(body.decode("utf-8"))
    except ValueError as error:
        raise FabricProtocolError("undecodable frame: {}".format(error))
    if not isinstance(frame, dict) or "kind" not in frame:
        raise FabricProtocolError("frames must be objects with a 'kind'")
    return frame


def check_hello(frame):
    """Validate a worker's handshake frame against :data:`WIRE_VERSION`."""
    if frame is None or frame.get("kind") != "hello":
        raise FabricProtocolError(
            "worker did not announce itself (got {!r})".format(frame)
        )
    version = frame.get("wire_version")
    if version != WIRE_VERSION:
        raise FabricProtocolError(
            "worker speaks fabric wire version {!r}, driver speaks {}; "
            "refusing to ship work to a mismatched executor".format(
                version, WIRE_VERSION
            )
        )
    return frame


# -- packed-stat round-trip -------------------------------------------------------


def encode_packed(packed):
    """The JSON form of one :func:`~repro.experiments.scheduler.pack_stats`
    payload.

    Spawn-category keys travel as their enum *values* (``"loopFT"`` …)
    and cache-stat pairs as two-element arrays; :func:`decode_packed`
    restores both exactly.
    """
    plain, spawns, cache = packed
    return {
        "plain": [[name, value] for name, value in plain],
        "spawns": [[category.value, count] for category, count in spawns],
        "cache": [[level, list(counts)] for level, counts in cache],
    }


def decode_packed(payload):
    """The exact packed tuple :func:`encode_packed` serialized."""
    from repro.spawn.points import SpawnCategory

    plain = tuple((name, value) for name, value in payload["plain"])
    spawns = tuple(
        (SpawnCategory(code), count) for code, count in payload["spawns"]
    )
    cache = tuple((level, tuple(counts)) for level, counts in payload["cache"])
    return plain, spawns, cache


# -- job-cell round-trip ----------------------------------------------------------


def encode_cell(name, spec, config, profile_distance):
    """The JSON form of one job tuple.

    The machine configuration travels as its override dict relative to
    the paper configuration (the exploration service's wire idiom), so
    the default machine costs four short keys, not forty fields.
    """
    from repro.service.wire import encode_config

    return {
        "workload": name,
        "spec": spec,
        "config": encode_config(config),
        "profile_distance": profile_distance,
    }


def decode_cell(payload):
    """The ``(name, spec, config, profile_distance)`` tuple of one cell."""
    from repro.service.wire import decode_config

    return (
        payload["workload"],
        payload["spec"],
        decode_config(payload.get("config") or None),
        payload["profile_distance"],
    )
