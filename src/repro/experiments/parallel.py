"""Parallel experiment execution with an on-disk result cache.

The paper's evaluation sweeps 12 benchmarks across ~14 policy specs
plus a superscalar baseline — an embarrassingly parallel grid of
independent cycle-level simulations.  This module fans that grid out
through the batched grid scheduler of
:mod:`repro.experiments.scheduler`: grid cells are cost-estimated from
their committed-trace lengths, cheap cells run inline in the parent,
and the rest ship to a persistent warm worker pool as
longest-expected-first chunks (one pickle per chunk, compact stat
tuples back).

Results are also written to a content-addressed on-disk cache keyed by
``(workload, spec, scale, machine-config fingerprint, profile
distance)``, so repeated figure generation and CI smoke runs skip
simulations that already ran — under *any* runner, serial or parallel,
because both funnel through the same
:func:`~repro.experiments.runner.simulate_job`.

Parallel output is bit-identical to serial output: every simulation is
deterministic given its job key (workloads are built from seeded RNGs),
and results are merged into the same keyed memo the serial runner
reads, so table generation never depends on scheduling decisions or
completion order.
"""

import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import as_completed
from concurrent.futures.process import BrokenProcessPool

from repro.analysis.pipeline import configure_disk_cache
from repro.errors import ConfigurationError
from repro.experiments import scheduler
from repro.experiments.fabric.transport import (
    FabricWorkerDied,
    LocalPoolTransport,
    SubprocessWorkerTransport,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scheduler import execute_job
from repro.polyflow.config import config_fingerprint
from repro.sim import gridbatch
from repro.sim.blocks import BLOCK_CACHE_KEYS
from repro.spawn import canonical_spec

#: Bump to invalidate every existing cache entry (e.g. when the
#: simulator's timing model changes in a way the config cannot see).
#: v2: entries grew an optional per-spawn-point metrics snapshot.
CACHE_FORMAT_VERSION = 2

#: Default cache directory used by the CLI (gitignored).
DEFAULT_CACHE_DIR = ".polyflow-cache"

#: Subdirectory of the cache directory holding persisted program
#: analyses (see :mod:`repro.analysis.pipeline`).
ANALYSIS_CACHE_SUBDIR = "analysis"


def job_digest(name, spec, scale, config, profile_distance):
    """Content address of one simulation job.

    Hashes every input that can change the resulting stats: workload
    name, policy spec, workload scale, the full machine configuration
    (via :func:`config_fingerprint`), the profiling distance, and the
    cache format version.
    """
    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "workload": name,
            "spec": canonical_spec(spec),
            "scale": repr(scale),
            "config": config_fingerprint(config),
            "profile_distance": profile_distance,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _pickle_loadable(data):
    try:
        pickle.loads(data)
    except Exception:
        return False
    return True


def sweep_entries(root, max_bytes=None, suffix=".pkl", verify=_pickle_loadable):
    """Size-capped LRU sweep of one sharded content-addressed tree.

    Walks the two-hex-character shard directories under ``root`` (the
    layout both :class:`ResultCache` and the fabric's shared store
    use), removing entries in two passes:

    1. **corrupt first** — every entry failing ``verify`` (an
       unreadable pickle, a store envelope with a digest mismatch) is
       pruned unconditionally;
    2. **oldest next** — while the surviving entries exceed
       ``max_bytes``, the least-recently-written (smallest mtime) are
       evicted.  ``max_bytes=None`` skips this pass.

    Emptied shard directories are removed.  Returns a report dict
    (``removed_corrupt``, ``removed_lru``, ``removed_bytes``,
    ``kept_entries``, ``kept_bytes``).
    """
    survivors = []
    removed_corrupt = removed_lru = removed_bytes = 0
    if os.path.isdir(root):
        for shard in sorted(os.listdir(root)):
            shard_path = os.path.join(root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_path):
                continue
            for entry in sorted(os.listdir(shard_path)):
                if not entry.endswith(suffix):
                    continue
                path = os.path.join(shard_path, entry)
                try:
                    status = os.stat(path)
                    with open(path, "rb") as handle:
                        ok = verify(handle.read())
                except OSError:
                    continue
                if not ok:
                    os.unlink(path)
                    removed_corrupt += 1
                    removed_bytes += status.st_size
                else:
                    survivors.append((status.st_mtime, path, status.st_size))
    if max_bytes is not None:
        survivors.sort()
        total = sum(size for _, _, size in survivors)
        evicted = 0
        while survivors and total > max_bytes:
            _, path, size = survivors[evicted]
            try:
                os.unlink(path)
            except OSError:
                pass
            total -= size
            removed_lru += 1
            removed_bytes += size
            evicted += 1
        survivors = survivors[evicted:]
    if os.path.isdir(root):
        for shard in os.listdir(root):
            shard_path = os.path.join(root, shard)
            if len(shard) == 2 and os.path.isdir(shard_path):
                try:
                    os.rmdir(shard_path)
                except OSError:
                    pass
    return {
        "removed_corrupt": removed_corrupt,
        "removed_lru": removed_lru,
        "removed_bytes": removed_bytes,
        "kept_entries": len(survivors),
        "kept_bytes": sum(size for _, _, size in survivors),
    }


class ResultCache:
    """Content-addressed on-disk store of pickled simulation stats.

    Entries are sharded by the first two digest characters.  Writes go
    through a temporary file plus :func:`os.replace`, so concurrent
    runs sharing a cache directory never observe torn entries.

    Lookups distinguish a *clean* miss (no entry on disk, counted in
    ``misses``) from a *corrupt* one (present but unreadable, counted
    in ``corrupt`` and listed in ``corrupt_paths``): both re-simulate,
    but a corrupt entry means something damaged the cache and is
    surfaced in the run summary rather than silently absorbed.
    """

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.corrupt_paths = []
        self.stores = 0

    def path(self, digest):
        return os.path.join(self.root, digest[:2], digest + ".pkl")

    def load(self, digest):
        """The cached ``(stats, metrics)`` for ``digest``, or ``None``.

        ``metrics`` is the per-spawn-point aggregator snapshot if the
        entry was produced by a metrics-emitting run, else ``None``.
        A missing entry is a clean miss; an entry that exists but
        cannot be unpickled (truncated, garbage, or raising an
        arbitrary exception type) is counted as corrupt.  Either way
        the caller re-simulates and overwrites it.
        """
        path = self.path(digest)
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            with handle:
                entry = pickle.load(handle)
            stats = entry["stats"]
            metrics = entry.get("metrics")
        except Exception:
            self.corrupt += 1
            self.corrupt_paths.append(path)
            return None
        self.hits += 1
        return stats, metrics

    def store(self, digest, stats, meta, metrics=None):
        """Atomically persist ``stats`` (with a metadata header and an
        optional metrics snapshot) under ``digest``."""
        path = self.path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        handle, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(
                    {"meta": meta, "stats": stats, "metrics": metrics}, stream
                )
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self):
        if not os.path.isdir(self.root):
            return 0
        count = 0
        for shard in os.listdir(self.root):
            shard_path = os.path.join(self.root, shard)
            if os.path.isdir(shard_path):
                count += sum(
                    1 for entry in os.listdir(shard_path) if entry.endswith(".pkl")
                )
        return count

    def gc(self, max_bytes=None):
        """Size-capped LRU sweep: corrupt entries first, oldest next.

        Caches grow unbounded across sweeps; long-lived fabric stores
        and CI caches call this (or the ``cache-gc`` CLI) to stay
        under a byte budget.  Eviction is mtime-based — entries are
        content-addressed and immutable, so write time is the recency
        signal.  Only the two-hex-shard entry tree is touched; the
        ``analysis/`` subdirectory living alongside it is not.
        """
        return sweep_entries(self.root, max_bytes)


class RunSummary:
    """Where the time went: jobs simulated, cache hits, wall clock.

    When metrics emission is enabled the per-job aggregator snapshots
    shipped back from the workers are collected here too, so one
    summary object carries everything a run produced besides the
    stats themselves.  Scheduling telemetry (inline cells, chunks
    shipped, pool workers) and corrupt cache entries accumulate here
    as well and show up in :meth:`render`.
    """

    def __init__(self):
        self.jobs_run = 0
        self.cache_hits = 0
        #: ``[(workload, spec, seconds), ...]`` for every simulation run.
        self.job_timings = []
        self.wall_seconds = 0.0
        #: ``{spec: [aggregator snapshot, ...]}`` from metrics-emitting runs.
        self.metrics_snapshots = {}
        #: Cells the scheduler ran inline in the parent.
        self.inline_jobs = 0
        #: Chunks shipped to the worker pool.
        self.chunks_shipped = 0
        #: Worker count of the largest pool this summary used.
        self.pool_workers = 0
        #: Corrupt cache entries encountered (re-simulated, but surfaced).
        self.corrupt_entries = []
        #: Warm-pool restarts after a ``BrokenProcessPool`` (each one is
        #: an incident: a worker died and the grid was retried).
        self.pool_restarts = 0
        #: Accumulated block-cache counter movement across every
        #: simulation this summary booked (parent and workers alike).
        self.block_cache = {key: 0 for key in BLOCK_CACHE_KEYS}
        #: Cells executed through the grid-batch lockstep runner
        #: (a subset of ``jobs_run``; the rest ran per-cell).
        self.batched_jobs = 0
        #: Cells answered from the analytic estimator alone — no
        #: simulation ran, the consumer saw ``source=estimated``.
        self.estimated_cells = 0
        #: Fabric telemetry: placement, store traffic, incidents.
        #: Flat numerics only (the service merges summaries by summing
        #: one dict level); per-worker vectors live in
        #: :attr:`fabric_placement` for rendering and tests.
        self.fabric = {
            "workers": 0,
            "chunks": 0,
            "cells": 0,
            "store_cells": 0,
            "replanned_cells": 0,
            "restarts": 0,
            "straggler_seconds": 0.0,
            "store_fetches": 0,
            "store_hits": 0,
            "store_misses": 0,
            "store_publishes": 0,
            "store_local_hits": 0,
            "store_corrupt_rejected": 0,
        }
        #: The latest transport placement snapshot (per-worker cell and
        #: wall-clock vectors; not part of :meth:`as_dict`).
        self.fabric_placement = None

    def record_job(self, name, spec, seconds):
        self.jobs_run += 1
        self.job_timings.append((name, spec, seconds))

    def record_hit(self):
        self.cache_hits += 1

    def record_corrupt(self, path):
        """Note one unreadable cache entry (it will be re-simulated).

        The same entry can be probed twice before the re-simulation
        overwrites it (prefetch's parent-side load, then the serial
        fallback's), so paths are deduplicated.
        """
        if path not in self.corrupt_entries:
            self.corrupt_entries.append(path)

    def record_pool_restart(self):
        """Note one dead-pool incident (the pool was torn down)."""
        self.pool_restarts += 1

    def record_batched(self, count):
        """Note ``count`` cells that ran through the lockstep batch."""
        self.batched_jobs += count

    def record_estimated(self, count=1):
        """Note cells served analytically (``source=estimated``)."""
        self.estimated_cells += count

    def record_fabric_schedule(self, workers, chunks, cells):
        """Accumulate one fabric dispatch's shape."""
        self.fabric["workers"] = max(self.fabric["workers"], workers)
        self.fabric["chunks"] += chunks
        self.fabric["cells"] += cells

    def record_fabric_store_cells(self, count):
        """Note ``count`` cells answered from the shared store."""
        self.fabric["store_cells"] += count

    def record_fabric_replan(self, cells):
        """Note one dead-worker incident and the cells it replanned."""
        self.fabric["restarts"] += 1
        self.fabric["replanned_cells"] += cells

    def record_fabric_placement(self, placement):
        """Absorb one transport placement snapshot (straggler wall,
        per-worker vectors for :meth:`render`)."""
        self.fabric_placement = placement
        self.fabric["straggler_seconds"] = max(
            self.fabric["straggler_seconds"],
            placement.get("straggler_seconds", 0.0),
        )

    def set_fabric_store(self, stats):
        """Overwrite the store counters with a cumulative snapshot.

        Store objects count cumulatively across a run, so the latest
        snapshot *is* the total — adding would double-book.
        """
        for key, value in stats.items():
            self.fabric["store_" + key] = value

    def record_schedule(self, plan):
        """Accumulate one :class:`~repro.experiments.scheduler.GridSchedule`."""
        self.inline_jobs += len(plan.inline)
        self.chunks_shipped += len(plan.chunks)
        self.pool_workers = max(self.pool_workers, plan.workers)

    def record_metrics(self, spec, snapshot):
        """Collect one worker's aggregator snapshot under its policy spec."""
        self.metrics_snapshots.setdefault(spec, []).append(snapshot)

    def record_block_cache(self, delta):
        """Accumulate one job's block-cache counter movement."""
        if not delta:
            return
        for key, value in delta.items():
            if key in self.block_cache:
                self.block_cache[key] += value

    def merged_metrics(self):
        """Per-policy merged attribution metrics (``{spec: snapshot}``)."""
        from repro.obs import merge_metrics

        return {
            spec: merge_metrics(snapshots)
            for spec, snapshots in sorted(self.metrics_snapshots.items())
        }

    @property
    def total_sim_seconds(self):
        """Summed per-job simulation time (exceeds wall time when
        jobs overlap across workers)."""
        return sum(seconds for _, _, seconds in self.job_timings)

    def as_dict(self):
        """Every counter as structured fields (JSON-able).

        The stderr :meth:`render` is for humans; this is the machine
        surface the exploration service's ``/healthz`` endpoint and the
        fault-injection tests assert on.  Incidents — corrupt cache
        entries and pool restarts — are first-class fields here, not
        just lines in the rendered summary.
        """
        return {
            "jobs_run": self.jobs_run,
            "cache_hits": self.cache_hits,
            "inline_jobs": self.inline_jobs,
            "chunks_shipped": self.chunks_shipped,
            "pool_workers": self.pool_workers,
            "pool_restarts": self.pool_restarts,
            "corrupt_cache_entries": len(self.corrupt_entries),
            "corrupt_cache_paths": list(self.corrupt_entries),
            "block_cache": dict(self.block_cache),
            "batched_jobs": self.batched_jobs,
            "estimated_cells": self.estimated_cells,
            "fabric": dict(self.fabric),
            "wall_seconds": self.wall_seconds,
            "total_sim_seconds": self.total_sim_seconds,
        }

    def slowest(self, count=5):
        """The ``count`` slowest jobs, slowest first."""
        return sorted(self.job_timings, key=lambda item: -item[2])[:count]

    def render(self):
        lines = [
            "run summary: {} simulated, {} cache hits, "
            "{:.1f}s total sim time, {:.1f}s wall".format(
                self.jobs_run,
                self.cache_hits,
                self.total_sim_seconds,
                self.wall_seconds,
            )
        ]
        if self.jobs_run:
            lines.append(
                "  schedule: {} inline, {} chunks across {} pool workers".format(
                    self.inline_jobs, self.chunks_shipped, self.pool_workers
                )
            )
        if self.batched_jobs:
            lines.append(
                "  grid-batch: {} of {} simulated cells ran in lockstep".format(
                    self.batched_jobs, self.jobs_run
                )
            )
        if self.estimated_cells:
            lines.append(
                "  estimator: {} cells served analytically (no simulation)".format(
                    self.estimated_cells
                )
            )
        if self.pool_restarts:
            lines.append(
                "  {} worker-pool restart(s) after dead workers".format(
                    self.pool_restarts
                )
            )
        if self.fabric["cells"]:
            lines.append(
                "  fabric: {} cells in {} chunks across {} workers "
                "({} from store), straggler {:.1f}s".format(
                    self.fabric["cells"],
                    self.fabric["chunks"],
                    self.fabric["workers"],
                    self.fabric["store_cells"],
                    self.fabric["straggler_seconds"],
                )
            )
            if self.fabric_placement:
                lines.append(
                    "    cells by worker: {}".format(
                        self.fabric_placement.get("cells_by_worker")
                    )
                )
        if self.fabric["store_fetches"] or self.fabric["store_publishes"]:
            lines.append(
                "  fabric store: {} hits / {} misses, {} published, "
                "{} local hits, {} corrupt rejected".format(
                    self.fabric["store_hits"],
                    self.fabric["store_misses"],
                    self.fabric["store_publishes"],
                    self.fabric["store_local_hits"],
                    self.fabric["store_corrupt_rejected"],
                )
            )
        if self.fabric.get("worker_store_fetches") or self.fabric.get(
            "worker_store_publishes"
        ):
            lines.append(
                "  worker store traffic: {} hits / {} misses, "
                "{} published".format(
                    self.fabric.get("worker_store_hits", 0),
                    self.fabric.get("worker_store_misses", 0),
                    self.fabric.get("worker_store_publishes", 0),
                )
            )
        if self.fabric["restarts"]:
            lines.append(
                "  {} fabric worker restart(s); {} cells replanned".format(
                    self.fabric["restarts"], self.fabric["replanned_cells"]
                )
            )
        if any(self.block_cache.values()):
            lines.append(
                "  block cache: {table_hits} table hits / {table_misses} compiles, "
                "{program_hits} program hits / {program_misses} builds".format(
                    **self.block_cache
                )
            )
        if self.corrupt_entries:
            lines.append(
                "  {} corrupt cache entries re-simulated:".format(
                    len(self.corrupt_entries)
                )
            )
            for path in self.corrupt_entries[:5]:
                lines.append("    {}".format(path))
        for name, spec, seconds in self.slowest():
            lines.append("  {:>6.1f}s  {} / {}".format(seconds, name, spec))
        return "\n".join(lines)


def trace_path(trace_dir, name, spec, digest):
    """The lifecycle-trace filename for one job under ``--trace-dir``.

    The digest prefix disambiguates identical (workload, spec) pairs
    run under different machine configurations (the ablation sweeps).
    """
    filename = "{}.{}.{}.events.jsonl".format(
        name, canonical_spec(spec).replace("/", "_"), digest[:8]
    )
    return os.path.join(trace_dir, filename)


class ParallelExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` with a grid scheduler and disk cache.

    With ``jobs=1`` and no cache directory it behaves exactly like the
    serial runner (no pool is ever touched).  ``prefetch`` is where the
    parallelism lives; the individual accessors (``baseline``,
    ``run_policy`` …) stay serial but consult the disk cache.

    Scheduler knobs: ``chunk`` caps grid cells per pool chunk (``None``
    sizes chunks by estimated cost), ``schedule`` picks cost-ordered or
    FIFO chunking, ``inline_threshold`` is the trace-length floor below
    which a cell runs inline in the parent, and ``cpus`` overrides CPU
    detection (tests force the pool path on single-core machines).
    """

    #: Whether plain inline cells may run through the grid-batch
    #: lockstep runner.  Subclasses whose ``_job_bus`` must observe
    #: every inline simulation (the exploration service) set this
    #: False so each cell keeps its own bus.
    inline_batching = True

    def __init__(
        self,
        scale=1.0,
        config=None,
        workload_names=None,
        jobs=1,
        cache_dir=None,
        emit_metrics=False,
        trace_dir=None,
        chunk=None,
        schedule=scheduler.SCHEDULE_COST,
        inline_threshold=None,
        cpus=None,
        pool_retries=1,
        fabric_workers=0,
        fabric_store=None,
        fabric_transport="subprocess",
        fabric_command=None,
        fabric_chunk_timeout=None,
        fabric_throughputs=None,
        fabric_extra_env=None,
    ):
        keyword_arguments = {}
        if config is not None:
            keyword_arguments["config"] = config
        if workload_names is not None:
            keyword_arguments["workload_names"] = workload_names
        super().__init__(scale=scale, **keyword_arguments)
        if schedule not in scheduler.SCHEDULES:
            raise ConfigurationError(
                "unknown schedule {!r}; choose from {}".format(
                    schedule, scheduler.SCHEDULES
                )
            )
        self.jobs = max(1, int(jobs))
        self.chunk = chunk
        self.schedule = schedule
        self.inline_threshold = (
            scheduler.INLINE_COST_THRESHOLD
            if inline_threshold is None
            else inline_threshold
        )
        #: The fabric's inline floor.  The warm-pool threshold guards
        #: against fork/pickle overhead swamping cheap cells on *this*
        #: machine; fabric workers are explicitly provisioned capacity,
        #: so by default every pooled cell ships (callers that pass
        #: ``inline_threshold`` keep their floor on both paths).
        self.fabric_inline_threshold = (
            0 if inline_threshold is None else inline_threshold
        )
        self.cpus = cpus
        #: Times a grid is retried after a ``BrokenProcessPool`` (each
        #: retry starts a fresh pool and replans only unfinished cells).
        self.pool_retries = max(0, int(pool_retries))
        self.cache = ResultCache(cache_dir) if cache_dir else None
        #: Where persisted program analyses live; enables the shared
        #: analysis cache's disk layer in this process and in workers.
        self.analysis_dir = (
            os.path.join(cache_dir, ANALYSIS_CACHE_SUBDIR) if cache_dir else None
        )
        if self.analysis_dir is not None:
            configure_disk_cache(self.analysis_dir)
        self.summary = RunSummary()
        #: Attach a verbose MetricsAggregator to every simulation and
        #: collect the per-policy snapshots in :attr:`summary`.
        self.emit_metrics = bool(emit_metrics)
        #: Write a compact lifecycle-events JSONL per simulation here.
        self.trace_dir = trace_dir
        #: Fabric executors for pooled chunks (0 = the classic local
        #: warm-pool path).  Unlike ``jobs``, this is *not* capped at
        #: the local CPU count — fabric workers may be other machines.
        self.fabric_workers = max(0, int(fabric_workers))
        if fabric_transport not in ("subprocess", "local"):
            raise ConfigurationError(
                "unknown fabric transport {!r}; choose 'subprocess' or "
                "'local'".format(fabric_transport)
            )
        if self.fabric_workers and (self.emit_metrics or trace_dir is not None):
            raise ConfigurationError(
                "the fabric ships plain cells only; metrics emission and "
                "trace files keep the local warm-pool path (drop "
                "--fabric-workers or the instrumentation flag)"
            )
        self.fabric_transport = fabric_transport
        self.fabric_command = fabric_command
        self.fabric_chunk_timeout = fabric_chunk_timeout
        self.fabric_throughputs = fabric_throughputs
        self.fabric_extra_env = fabric_extra_env
        if isinstance(fabric_store, str):
            from repro.experiments.fabric.store import SharedStore

            fabric_store = SharedStore(fabric_store)
        #: The shared content-addressed artifact store (or ``None``).
        #: Read through in the parent (see :meth:`_load_cached`) and
        #: passed to fabric workers for fetch/publish.
        self.fabric_store = fabric_store
        self._fabric = None

    # -- cache plumbing -----------------------------------------------------------

    def _job_digest(self, name, spec, config, profile_distance):
        return job_digest(name, spec, self.scale, config, profile_distance)

    def _job_label(self, spec, config):
        """Spec label for the run summary; swept configurations (the
        ablations) are disambiguated by their fingerprint."""
        fingerprint = config_fingerprint(config)
        if fingerprint == config_fingerprint(self.config):
            return spec
        return "{} @{}".format(spec, fingerprint[:6])

    def _job_meta(self, name, spec, config, profile_distance):
        return {
            "workload": name,
            "spec": spec,
            "scale": self.scale,
            "config_fingerprint": config_fingerprint(config),
            "profile_distance": profile_distance,
            "version": CACHE_FORMAT_VERSION,
        }

    def _trace_file(self, name, spec, config, profile_distance):
        if self.trace_dir is None:
            return None
        digest = self._job_digest(name, spec, config, profile_distance)
        return trace_path(self.trace_dir, name, spec, digest)

    def _load_cached(self, name, spec, config, profile_distance):
        """Usable cached stats, or ``None`` when the job must run.

        A hit is unusable when the run must produce side channels the
        cache cannot replay: a requested trace file, or metrics the
        entry does not carry.  Metrics a usable hit *does* carry flow
        into the run summary exactly as a fresh simulation's would.
        """
        if self.trace_dir is not None:
            return None
        if self.cache is None and self.fabric_store is None:
            return None
        digest = self._job_digest(name, spec, config, profile_distance)
        if self.cache is not None:
            corrupt_before = self.cache.corrupt
            entry = self.cache.load(digest)
            if self.cache.corrupt > corrupt_before:
                self.summary.record_corrupt(self.cache.path(digest))
            if entry is not None:
                stats, metrics = entry
                if self.emit_metrics and not metrics:
                    return None
                self.summary.record_hit()
                if self.emit_metrics:
                    self.summary.record_metrics(
                        self._job_label(spec, config), metrics
                    )
                return stats
        # Shared-store read-through: a digest-verified artifact some
        # other fabric participant published.  Mirrored into the local
        # result cache so the next run hits tier 1.
        if self.fabric_store is not None and not self.emit_metrics:
            from repro.experiments.fabric.store import decode_entry

            body = self.fabric_store.fetch(digest)
            if body is not None:
                try:
                    stats, metrics = decode_entry(body)
                except Exception:
                    self.fabric_store.corrupt_rejected += 1
                    return None
                self.summary.record_fabric_store_cells(1)
                if self.cache is not None:
                    self.cache.store(
                        digest,
                        stats,
                        self._job_meta(name, spec, config, profile_distance),
                        metrics=metrics,
                    )
                return stats
        return None

    def _store_cached(self, name, spec, config, profile_distance, stats, metrics=None):
        if self.cache is None and self.fabric_store is None:
            return
        digest = self._job_digest(name, spec, config, profile_distance)
        meta = self._job_meta(name, spec, config, profile_distance)
        if self.cache is not None:
            self.cache.store(digest, stats, meta, metrics=metrics)
        # Publish fresh results to the shared store so other fabric
        # participants reuse them; subprocess workers already published
        # theirs, which the ``contains`` probe skips.
        if self.fabric_store is not None and not self.fabric_store.contains(
            digest
        ):
            from repro.experiments.fabric.store import entry_body

            self.fabric_store.publish(
                digest, entry_body(stats, meta, metrics=metrics)
            )

    def _record_result(self, name, spec, config, profile_distance, outcome):
        """Book one finished simulation: summary, metrics, disk cache."""
        stats, metrics, seconds, blocks = outcome
        self.summary.record_job(name, self._job_label(spec, config), seconds)
        self.summary.record_block_cache(blocks)
        if metrics is not None:
            self.summary.record_metrics(self._job_label(spec, config), metrics)
        self._store_cached(name, spec, config, profile_distance, stats, metrics)
        return stats

    def _job_bus(self, name, spec, config):
        """Optional per-job :class:`~repro.obs.EventBus` for *inline*
        simulations.

        The base runner attaches nothing; the exploration service's
        runner overrides this to bridge lifecycle events into its
        progress journal.  A returned bus must be fresh per call and
        non-verbose, so engine selection (and the stats) stay
        identical.
        """
        return None

    def _simulate(self, name, spec, config, profile_distance):
        stats = self._load_cached(name, spec, config, profile_distance)
        if stats is not None:
            return stats
        outcome = execute_job(
            name,
            spec,
            self.scale,
            config,
            profile_distance,
            emit_metrics=self.emit_metrics,
            trace_file=self._trace_file(name, spec, config, profile_distance),
            bus=self._job_bus(name, spec, config),
        )
        return self._record_result(name, spec, config, profile_distance, outcome)

    # -- fan-out ------------------------------------------------------------------

    def prefetch(self, jobs):
        """Materialize every job's stats through the grid scheduler.

        Disk-cached results are loaded in the parent; only genuinely
        missing simulations are scheduled — cheap ones inline, the
        rest as cost-ordered chunks on the warm worker pool.  Results
        land in the same keyed memo the serial path reads, so
        downstream table generation is identical regardless of
        scheduling decisions or completion order.  Returns the number
        of simulations actually run.
        """
        started = time.perf_counter()
        pending = []
        for name, spec, config, profile_distance in self.normalize_jobs(jobs):
            stats = self._load_cached(name, spec, config, profile_distance)
            if stats is not None:
                key = self._result_key(name, spec, config, profile_distance)
                self._results[key] = stats
            else:
                pending.append((name, spec, config, profile_distance))

        if not pending:
            if self.fabric_store is not None:
                self.summary.set_fabric_store(self.fabric_store.stats())
            self.summary.wall_seconds += time.perf_counter() - started
            return 0

        if len(pending) == 1:
            for name, spec, config, profile_distance in pending:
                self.run_with_config(name, spec, config, profile_distance)
        else:
            # Multi-cell grids always go through the scheduler: with
            # ``jobs=1`` the plan is all-inline (no pool is touched)
            # and plain cells still benefit from the lockstep batch.
            self._fan_out(pending)
        if self.fabric_store is not None:
            self.summary.set_fabric_store(self.fabric_store.stats())
        self.summary.wall_seconds += time.perf_counter() - started
        return len(pending)

    def _fan_out(self, pending):
        """Schedule ``pending`` cells, restarting a broken worker pool.

        A worker death poisons the whole persistent pool
        (``BrokenProcessPool``); instead of failing the grid, the dead
        pool is torn down, the incident is counted on the summary
        (:attr:`RunSummary.pool_restarts`), and the still-unfinished
        cells are replanned onto a fresh pool up to ``pool_retries``
        times before the error propagates.
        """
        remaining = list(pending)
        retries = self.pool_retries
        while True:
            try:
                self._dispatch(remaining)
                return
            except BrokenProcessPool:
                # A dead worker poisons the persistent pool; drop it so
                # the next attempt (or the next grid) starts fresh.
                scheduler.shutdown_pool()
                self.summary.record_pool_restart()
                if retries <= 0:
                    raise
                retries -= 1
                remaining = [
                    job
                    for job in remaining
                    if self._result_key(*job) not in self._results
                ]
                if not remaining:
                    return
            except FabricWorkerDied as incident:
                # Same contract over the fabric: tear the worker fleet
                # down, keep every result already booked, and replan
                # only the cells whose outcomes never arrived.
                self.shutdown_fabric()
                remaining = [
                    job
                    for job in remaining
                    if self._result_key(*job) not in self._results
                ]
                self.summary.record_fabric_replan(len(remaining))
                self._fabric_event(
                    "worker_died",
                    worker=incident.worker,
                    replanned_cells=len(remaining),
                )
                if retries <= 0:
                    raise
                retries -= 1
                if not remaining:
                    return

    def _dispatch(self, pending):
        """One scheduling attempt, routed to the fabric or the pool."""
        if self.fabric_workers:
            return self._dispatch_fabric(pending)
        return self._dispatch_pool(pending)

    # -- fabric path --------------------------------------------------------------

    def _fabric_event(self, kind, **fields):
        """Optional fabric telemetry hook.

        The base runner drops the event; the exploration service's
        runner overrides this to publish ``fabric.*`` events into its
        progress journal.
        """

    def _ensure_fabric(self):
        if self._fabric is None:
            if self.fabric_transport == "local":
                self._fabric = LocalPoolTransport(
                    self.fabric_workers, analysis_dir=self.analysis_dir
                )
            else:
                keyword_arguments = {}
                if self.fabric_chunk_timeout is not None:
                    keyword_arguments["chunk_timeout"] = self.fabric_chunk_timeout
                self._fabric = SubprocessWorkerTransport(
                    self.fabric_workers,
                    store_root=(
                        self.fabric_store.root
                        if self.fabric_store is not None
                        else None
                    ),
                    analysis_dir=self.analysis_dir,
                    command_template=self.fabric_command,
                    throughputs=self.fabric_throughputs,
                    extra_env=self.fabric_extra_env,
                    **keyword_arguments,
                )
        return self._fabric

    def shutdown_fabric(self):
        """Tear the fabric transport down (retries recreate it)."""
        if self._fabric is not None:
            self._fabric.close()
            self._fabric = None

    def warm_fabric(self):
        """Spawn the fabric fleet ahead of the first dispatch.

        Subprocess workers pay interpreter startup and handshake once;
        warming moves that out of the first grid's wall clock (the
        benchmark harness uses it to time steady-state dispatch).
        """
        if not self.fabric_workers:
            return
        transport = self._ensure_fabric()
        ensure = getattr(transport, "ensure_workers", None)
        if ensure is not None:
            ensure()

    def _dispatch_fabric(self, pending):
        """One fabric scheduling attempt: inline split + sharded chunks.

        Costing probes the shared store (tier 2 of
        :func:`~repro.experiments.scheduler.job_cost`), so store-held
        cells are priced as fetches.  Cheap cells still run inline in
        the parent; the rest are chunked exactly as on the pool path
        and sharded across fabric workers by the transport.  Results
        are booked as they stream back, so a mid-grid worker death
        loses only the outcomes that never arrived.
        """
        store = self.fabric_store
        costs = []
        for name, spec, config, profile_distance in pending:
            digest = (
                self._job_digest(name, spec, config, profile_distance)
                if store is not None
                else None
            )
            costs.append(
                scheduler.job_cost(name, self.scale, store=store, digest=digest)
            )
        inline, pooled, pooled_costs = scheduler.split_inline(
            pending, costs, self.fabric_workers, self.fabric_inline_threshold
        )
        chunks = scheduler.plan_chunks(
            pooled, pooled_costs, self.fabric_workers, self.chunk, self.schedule
        )
        self.summary.inline_jobs += len(inline)
        self.summary.record_fabric_schedule(
            self.fabric_workers if chunks else 0,
            len(chunks),
            sum(len(chunk) for chunk in chunks),
        )
        self._run_inline(inline)
        if not chunks:
            return
        cost_lookup = {
            self._result_key(*job): cost for job, cost in zip(pending, costs)
        }
        chunk_costs = [
            sum(cost_lookup[self._result_key(*job)] for job in chunk)
            for chunk in chunks
        ]
        transport = self._ensure_fabric()
        for index, outcomes in transport.execute(self.scale, chunks, chunk_costs):
            self._book_fabric_chunk(chunks[index], outcomes)
        placement = transport.placement()
        self.summary.record_fabric_placement(placement)
        for key, value in (placement.get("worker_store") or {}).items():
            self.summary.fabric["worker_store_" + key] = value
        self._fabric_event(
            "placement",
            workers=placement.get("workers"),
            cells_by_worker=placement.get("cells_by_worker"),
            straggler_seconds=placement.get("straggler_seconds"),
        )

    def _book_fabric_chunk(self, chunk, outcomes):
        """Book one fabric chunk's outcomes into the memo and caches."""
        for job, (packed, seconds, blocks, source) in zip(chunk, outcomes):
            name, spec, config, profile_distance = job
            stats = scheduler.unpack_stats(packed)
            key = self._result_key(name, spec, config, profile_distance)
            if source == "store":
                # A worker answered from the shared store: no
                # simulation ran, so no job is booked — but the entry
                # is mirrored into the local result cache.
                self.summary.record_fabric_store_cells(1)
                if self.cache is not None:
                    self.cache.store(
                        stats=stats,
                        digest=self._job_digest(
                            name, spec, config, profile_distance
                        ),
                        meta=self._job_meta(name, spec, config, profile_distance),
                    )
                self._results[key] = stats
            else:
                self._results[key] = self._record_result(
                    name,
                    spec,
                    config,
                    profile_distance,
                    (stats, None, seconds, blocks),
                )

    # -- pool path ----------------------------------------------------------------

    def _dispatch_pool(self, pending):
        """One scheduling attempt: inline short-circuit + warm pool.

        Costing a cell peeks the analysis cache and falls back to the
        closed-form length estimator for synthesized scenarios, so a
        cold catalog grid is planned without preparing every cell in
        the parent; workloads a fork-start pool needs are prepared by
        its initializer instead.  Plain inline cells run through the
        grid-batch lockstep runner when it is enabled (instrumented
        cells — metrics, trace files, service buses — keep the
        per-cell path).
        """
        costs = [scheduler.job_cost(name, self.scale) for name, _, _, _ in pending]
        plan = scheduler.plan_grid(
            pending,
            costs,
            self.jobs,
            max_chunk_jobs=self.chunk,
            schedule=self.schedule,
            inline_threshold=self.inline_threshold,
            cpus=self.cpus,
        )
        self.summary.record_schedule(plan)

        self._run_inline(plan.inline)
        if not plan.chunks:
            return

        warmup = sorted({name for chunk in plan.chunks for name, _, _, _ in chunk})
        pool = scheduler.warm_pool(
            plan.workers,
            analysis_dir=self.analysis_dir,
            warmup=[(name, self.scale) for name in warmup],
        )
        futures = {}
        for chunk in plan.chunks:
            payload = [
                (
                    name,
                    spec,
                    config,
                    profile_distance,
                    self._trace_file(name, spec, config, profile_distance),
                )
                for name, spec, config, profile_distance in chunk
            ]
            # Mirror the worker's batching decision for the summary:
            # plain cells of a big-enough chunk run in lockstep there.
            if gridbatch.gridbatch_enabled() and not self.emit_metrics:
                plain = sum(1 for entry in payload if entry[4] is None)
                if plain >= gridbatch.MIN_BATCH_CELLS:
                    self.summary.record_batched(plain)
            future = pool.submit(
                scheduler.execute_chunk,
                self.analysis_dir,
                self.scale,
                self.emit_metrics,
                payload,
            )
            futures[future] = chunk
        # A BrokenProcessPool raised by any future propagates to
        # ``_fan_out``, which tears the pool down and retries the
        # unfinished cells; results booked before the break are kept.
        for future in as_completed(futures):
            chunk = futures[future]
            for job, (packed, metrics, seconds, blocks) in zip(
                chunk, future.result()
            ):
                name, spec, config, profile_distance = job
                stats = scheduler.unpack_stats(packed)
                key = self._result_key(name, spec, config, profile_distance)
                self._results[key] = self._record_result(
                    name,
                    spec,
                    config,
                    profile_distance,
                    (stats, metrics, seconds, blocks),
                )

    def _run_inline(self, inline_jobs):
        """Run the plan's inline cells, batching the plain ones.

        Cells with no instruments attached (no metrics, no trace file;
        :attr:`inline_batching` vouches for ``_job_bus``) go through
        the grid-batch lockstep runner together; the rest — and
        everything when the batch would hold fewer than two cells —
        keep the per-cell ``run_with_config`` path.  Results are booked
        identically either way.
        """
        per_cell = list(inline_jobs)
        batch_jobs = []
        if (
            self.inline_batching
            and gridbatch.gridbatch_enabled()
            and not self.emit_metrics
        ):
            plain, rest = [], []
            for job in per_cell:
                name, spec, config, profile_distance = job
                trace_file = self._trace_file(name, spec, config, profile_distance)
                key = self._result_key(name, spec, config, profile_distance)
                if trace_file is None and key not in self._results:
                    plain.append(job)
                else:
                    rest.append(job)
            if len(plain) >= gridbatch.MIN_BATCH_CELLS:
                batch_jobs, per_cell = plain, rest
        if batch_jobs:
            outcomes = gridbatch.run_batch(batch_jobs, self.scale)
            self.summary.record_batched(len(batch_jobs))
            for job, outcome in zip(batch_jobs, outcomes):
                name, spec, config, profile_distance = job
                key = self._result_key(name, spec, config, profile_distance)
                self._results[key] = self._record_result(
                    name, spec, config, profile_distance, outcome
                )
        for name, spec, config, profile_distance in per_cell:
            self.run_with_config(name, spec, config, profile_distance)
