"""Parallel experiment execution with an on-disk result cache.

The paper's evaluation sweeps 12 benchmarks across ~10 spawn policies
plus a superscalar baseline — an embarrassingly parallel grid of
independent cycle-level simulations.  This module fans that grid out
across a :class:`concurrent.futures.ProcessPoolExecutor`: each worker
prepares a workload once (module-level memo in
:mod:`repro.workloads.suite`), derives the requested policy's hints,
runs the simulation, and ships the picklable
:class:`~repro.polyflow.stats.SimStats` back to the parent.

Results are also written to a content-addressed on-disk cache keyed by
``(workload, spec, scale, machine-config fingerprint, profile
distance)``, so repeated figure generation and CI smoke runs skip
simulations that already ran — under *any* runner, serial or parallel,
because both funnel through the same
:func:`~repro.experiments.runner.simulate_job`.

Parallel output is bit-identical to serial output: every simulation is
deterministic given its job key (workloads are built from seeded RNGs),
and results are merged into the same keyed memo the serial runner
reads, so table generation never depends on completion order.
"""

import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.experiments.runner import ExperimentRunner, simulate_job
from repro.polyflow.config import config_fingerprint

#: Bump to invalidate every existing cache entry (e.g. when the
#: simulator's timing model changes in a way the config cannot see).
CACHE_FORMAT_VERSION = 1

#: Default cache directory used by the CLI (gitignored).
DEFAULT_CACHE_DIR = ".polyflow-cache"


def job_digest(name, spec, scale, config, profile_distance):
    """Content address of one simulation job.

    Hashes every input that can change the resulting stats: workload
    name, policy spec, workload scale, the full machine configuration
    (via :func:`config_fingerprint`), the profiling distance, and the
    cache format version.
    """
    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "workload": name,
            "spec": spec,
            "scale": repr(scale),
            "config": config_fingerprint(config),
            "profile_distance": profile_distance,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of pickled simulation stats.

    Entries are sharded by the first two digest characters.  Writes go
    through a temporary file plus :func:`os.replace`, so concurrent
    runs sharing a cache directory never observe torn entries.
    """

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path(self, digest):
        return os.path.join(self.root, digest[:2], digest + ".pkl")

    def load(self, digest):
        """The cached stats for ``digest``, or ``None`` on a miss.

        Any unreadable entry — missing, truncated, or corrupt in a way
        that makes unpickling raise an arbitrary exception type — is a
        miss; the caller re-simulates and overwrites it.
        """
        try:
            with open(self.path(digest), "rb") as handle:
                entry = pickle.load(handle)
            stats = entry["stats"]
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def store(self, digest, stats, meta):
        """Atomically persist ``stats`` (with a metadata header) under
        ``digest``."""
        path = self.path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        handle, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump({"meta": meta, "stats": stats}, stream)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self):
        if not os.path.isdir(self.root):
            return 0
        count = 0
        for shard in os.listdir(self.root):
            shard_path = os.path.join(self.root, shard)
            if os.path.isdir(shard_path):
                count += sum(
                    1 for entry in os.listdir(shard_path) if entry.endswith(".pkl")
                )
        return count


class RunSummary:
    """Where the time went: jobs simulated, cache hits, wall clock."""

    def __init__(self):
        self.jobs_run = 0
        self.cache_hits = 0
        #: ``[(workload, spec, seconds), ...]`` for every simulation run.
        self.job_timings = []
        self.wall_seconds = 0.0

    def record_job(self, name, spec, seconds):
        self.jobs_run += 1
        self.job_timings.append((name, spec, seconds))

    def record_hit(self):
        self.cache_hits += 1

    @property
    def total_sim_seconds(self):
        """Summed per-job simulation time (exceeds wall time when
        jobs overlap across workers)."""
        return sum(seconds for _, _, seconds in self.job_timings)

    def slowest(self, count=5):
        """The ``count`` slowest jobs, slowest first."""
        return sorted(self.job_timings, key=lambda item: -item[2])[:count]

    def render(self):
        lines = [
            "run summary: {} simulated, {} cache hits, "
            "{:.1f}s total sim time, {:.1f}s wall".format(
                self.jobs_run,
                self.cache_hits,
                self.total_sim_seconds,
                self.wall_seconds,
            )
        ]
        for name, spec, seconds in self.slowest():
            lines.append("  {:>6.1f}s  {} / {}".format(seconds, name, spec))
        return "\n".join(lines)


def _execute_job(name, spec, scale, config, profile_distance):
    """Worker-side entry point: run one simulation, report its time."""
    started = time.perf_counter()
    stats = simulate_job(name, spec, scale, config, profile_distance)
    return stats, time.perf_counter() - started


class ParallelExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` with process fan-out and a disk cache.

    With ``jobs=1`` and no cache directory it behaves exactly like the
    serial runner (no executor is ever created).  ``prefetch`` is where
    the parallelism lives; the individual accessors (``baseline``,
    ``run_policy`` …) stay serial but consult the disk cache.
    """

    def __init__(
        self,
        scale=1.0,
        config=None,
        workload_names=None,
        jobs=1,
        cache_dir=None,
    ):
        keyword_arguments = {}
        if config is not None:
            keyword_arguments["config"] = config
        if workload_names is not None:
            keyword_arguments["workload_names"] = workload_names
        super().__init__(scale=scale, **keyword_arguments)
        self.jobs = max(1, int(jobs))
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.summary = RunSummary()

    # -- cache plumbing -----------------------------------------------------------

    def _job_digest(self, name, spec, config, profile_distance):
        return job_digest(name, spec, self.scale, config, profile_distance)

    def _job_label(self, spec, config):
        """Spec label for the run summary; swept configurations (the
        ablations) are disambiguated by their fingerprint."""
        fingerprint = config_fingerprint(config)
        if fingerprint == config_fingerprint(self.config):
            return spec
        return "{} @{}".format(spec, fingerprint[:6])

    def _job_meta(self, name, spec, config, profile_distance):
        return {
            "workload": name,
            "spec": spec,
            "scale": self.scale,
            "config_fingerprint": config_fingerprint(config),
            "profile_distance": profile_distance,
            "version": CACHE_FORMAT_VERSION,
        }

    def _load_cached(self, name, spec, config, profile_distance):
        if self.cache is None:
            return None
        digest = self._job_digest(name, spec, config, profile_distance)
        stats = self.cache.load(digest)
        if stats is not None:
            self.summary.record_hit()
        return stats

    def _store_cached(self, name, spec, config, profile_distance, stats):
        if self.cache is None:
            return
        digest = self._job_digest(name, spec, config, profile_distance)
        self.cache.store(
            digest, stats, self._job_meta(name, spec, config, profile_distance)
        )

    def _simulate(self, name, spec, config, profile_distance):
        stats = self._load_cached(name, spec, config, profile_distance)
        if stats is not None:
            return stats
        started = time.perf_counter()
        stats = simulate_job(name, spec, self.scale, config, profile_distance)
        self.summary.record_job(
            name, self._job_label(spec, config), time.perf_counter() - started
        )
        self._store_cached(name, spec, config, profile_distance, stats)
        return stats

    # -- fan-out ------------------------------------------------------------------

    def prefetch(self, jobs):
        """Materialize every job's stats, fanning out across workers.

        Disk-cached results are loaded in the parent; only genuinely
        missing simulations are shipped to the pool.  Results land in
        the same keyed memo the serial path reads, so downstream table
        generation is identical regardless of completion order.
        Returns the number of simulations actually run.
        """
        started = time.perf_counter()
        pending = []
        for name, spec, config, profile_distance in self.normalize_jobs(jobs):
            stats = self._load_cached(name, spec, config, profile_distance)
            if stats is not None:
                key = self._result_key(name, spec, config, profile_distance)
                self._results[key] = stats
            else:
                pending.append((name, spec, config, profile_distance))

        if not pending:
            self.summary.wall_seconds += time.perf_counter() - started
            return 0

        if self.jobs == 1 or len(pending) == 1:
            for name, spec, config, profile_distance in pending:
                self.run_with_config(name, spec, config, profile_distance)
        else:
            self._fan_out(pending)
        self.summary.wall_seconds += time.perf_counter() - started
        return len(pending)

    def _fan_out(self, pending):
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = {
                executor.submit(
                    _execute_job, name, spec, self.scale, config, profile_distance
                ): (name, spec, config, profile_distance)
                for name, spec, config, profile_distance in pending
            }
            for future in as_completed(futures):
                name, spec, config, profile_distance = futures[future]
                stats, seconds = future.result()
                key = self._result_key(name, spec, config, profile_distance)
                self._results[key] = stats
                self.summary.record_job(name, self._job_label(spec, config), seconds)
                self._store_cached(name, spec, config, profile_distance, stats)
