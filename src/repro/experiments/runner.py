"""Experiment runner: sweeps (workload, policy) pairs with caching.

One :class:`ExperimentRunner` prepares each workload once (program,
trace, CFGs, spawn analysis, profile) and then materializes any spawn
policy on demand.  The superscalar baseline and every policy run are
cached, so the per-figure generators share work.

All simulations funnel through the module-level :func:`simulate_job`,
which depends only on picklable inputs (workload name, policy spec,
scale, :class:`~repro.polyflow.config.MachineConfig`).  That makes the
same code path usable from worker processes — see
:mod:`repro.experiments.parallel` for the ``ProcessPoolExecutor``
fan-out and the on-disk result cache layered on top.
"""

from repro.polyflow import PAPER_CONFIG, PolyFlowCore, superscalar_config
from repro.polyflow.config import config_fingerprint
from repro.polyflow.stats import speedup_percent
from repro.spawn import canonical_spec
from repro.spawn.hints import HintTable
from repro.workloads import WORKLOAD_NAMES, prepare_workload

#: Policy spec used for the dynamic reconvergence predictor (Figure 12).
REC_PRED_SPEC = "rec_pred"

#: Pseudo-spec naming the superscalar baseline run.  ``simulate_job``
#: restricts the machine itself (``superscalar_config``), so callers
#: always pass the *PolyFlow* configuration alongside this spec.
SUPERSCALAR_SPEC = "superscalar"

def spawn_profile(name, scale, max_spawn_distance):
    """The spawn profile of one workload (memoized per program).

    The profile covers the union of postdominator and loop spawn
    points, so every policy's hint table can be derived from it.  The
    per-distance memo lives on the workload's shared
    :class:`~repro.analysis.pipeline.ProgramAnalyses`, so worker
    processes running several policy specs of the same workload — and
    runners at different scales that build identical program text —
    all share one profile.
    """
    return prepare_workload(name, scale).spawn_profile(max_spawn_distance)


def clear_profile_cache():
    """Drop all memoized spawn profiles (mainly for tests).

    Profiles are memoized on the shared program analyses, so this
    delegates to :func:`repro.workloads.clear_cache`.
    """
    from repro.workloads import clear_cache

    clear_cache()


def build_core(
    name,
    spec,
    scale,
    config,
    profile_distance=None,
    bus=None,
    block_engine=None,
    event_kernel=None,
):
    """Construct the :class:`PolyFlowCore` for one (workload, policy) job.

    This is the single place the experiment harness turns a picklable
    job description into a runnable core, so every caller — the serial
    runner, the process-pool workers, and the ``trace`` CLI — gets the
    identical machine.  Pass ``bus`` to attach observability sinks
    before the run starts (see :mod:`repro.obs`).

    Args:
        name: Workload name (see :data:`~repro.workloads.WORKLOAD_NAMES`).
        spec: Policy spec (aliases like ``control-equivalent`` are
            resolved), :data:`REC_PRED_SPEC`, or
            :data:`SUPERSCALAR_SPEC` for the baseline.
        scale: Workload scale factor.
        config: The PolyFlow :class:`MachineConfig`
            (:func:`superscalar_config` is applied here for the
            baseline spec).
        profile_distance: Maximum spawn distance used when *profiling*
            spawn points (defaults to ``config.max_spawn_distance``).
            Ablations sweep the machine's distance cap while keeping
            the profile fixed; this keeps those runs reproducible.
        bus: Optional :class:`~repro.obs.EventBus` carrying trace or
            metrics sinks.
        block_engine: Block-at-a-time engine override (None keeps the
            :mod:`repro.sim.blocks` process default).
        event_kernel: Event-calendar kernel override (None keeps the
            :mod:`repro.polyflow.event_kernel` process default).
    """
    spec = canonical_spec(spec)
    prepared = prepare_workload(name, scale)
    if spec == SUPERSCALAR_SPEC:
        return PolyFlowCore(
            prepared.trace,
            superscalar_config(config),
            HintTable(),
            bus=bus,
            block_engine=block_engine,
            event_kernel=event_kernel,
        )
    if spec == REC_PRED_SPEC:
        from repro.reconvergence import build_reconvergence_spawner

        core = PolyFlowCore(
            prepared.trace,
            config,
            HintTable(),
            bus=bus,
            block_engine=block_engine,
            event_kernel=event_kernel,
        )
        core.spawn_unit = build_reconvergence_spawner(prepared, config)
        return core
    if profile_distance is None:
        profile_distance = config.max_spawn_distance
    profile = spawn_profile(name, scale, profile_distance)
    policy = prepared.spawn_analysis.policy(spec)
    return PolyFlowCore(
        prepared.trace,
        config,
        profile.hint_table(policy),
        bus=bus,
        block_engine=block_engine,
        event_kernel=event_kernel,
    )


def simulate_job(name, spec, scale, config, profile_distance=None):
    """Run one (workload, policy) cycle-level simulation.

    This is the single entry point for every simulation the experiment
    harness performs; serial and parallel execution differ only in
    where it runs.  All arguments and the returned
    :class:`~repro.polyflow.stats.SimStats` are picklable.  See
    :func:`build_core` for the argument semantics.
    """
    return build_core(name, spec, scale, config, profile_distance).run()


class ExperimentRunner:
    """Caches workload preparation and simulation runs.

    Simulation results live in an in-memory memo keyed by
    ``(workload, spec, config fingerprint, profile distance)``; the
    same key shape addresses the on-disk cache of
    :class:`~repro.experiments.parallel.ParallelExperimentRunner`.
    """

    def __init__(self, scale=1.0, config=PAPER_CONFIG, workload_names=WORKLOAD_NAMES):
        self.scale = scale
        self.config = config
        self.workload_names = tuple(workload_names)
        self._workloads = {}
        self._results = {}

    # -- preparation -----------------------------------------------------------

    def workload(self, name):
        """The :class:`~repro.workloads.suite.PreparedWorkload` (memoized)."""
        if name not in self._workloads:
            self._workloads[name] = prepare_workload(name, self.scale)
        return self._workloads[name]

    def profile(self, name):
        """The spawn profile over the union of all spawn points."""
        return spawn_profile(name, self.scale, self.config.max_spawn_distance)

    def hint_table(self, name, spec):
        """The hint table for one (workload, policy spec) pair."""
        prepared = self.workload(name)
        policy = prepared.spawn_analysis.policy(spec)
        return self.profile(name).hint_table(policy)

    # -- simulation ---------------------------------------------------------------

    def _result_key(self, name, spec, config, profile_distance):
        # Aliases collapse onto their canonical spec so "control-equivalent"
        # and "postdoms" share one memo (and one disk-cache) entry.
        return (name, canonical_spec(spec), config_fingerprint(config), profile_distance)

    def _simulate(self, name, spec, config, profile_distance):
        """Run one simulation in-process (overridden by the parallel
        runner to consult the on-disk cache)."""
        return simulate_job(name, spec, self.scale, config, profile_distance)

    def run_with_config(self, name, spec, config, profile_distance=None):
        """Stats for ``name`` under ``spec`` and an arbitrary machine
        configuration (cached).

        ``profile_distance`` defaults to the *runner's* configured
        ``max_spawn_distance`` so that configuration sweeps reuse one
        profile, matching the serial harness's historical behaviour.
        """
        if profile_distance is None:
            profile_distance = self.config.max_spawn_distance
        key = self._result_key(name, spec, config, profile_distance)
        if key not in self._results:
            self._results[key] = self._simulate(name, spec, config, profile_distance)
        return self._results[key]

    def baseline(self, name):
        """Superscalar stats for ``name`` (cached)."""
        return self.run_with_config(name, SUPERSCALAR_SPEC, self.config)

    def run_policy(self, name, spec):
        """PolyFlow stats for ``name`` under policy ``spec`` (cached)."""
        return self.run_with_config(name, spec, self.config)

    def speedup(self, name, spec):
        """Speedup (%) of policy ``spec`` over the superscalar baseline."""
        return speedup_percent(self.run_policy(name, spec), self.baseline(name))

    def speedups_for_specs(self, specs):
        """Mapping ``{workload: {spec: speedup%}}`` plus an Average row."""
        self.prefetch(
            [(name, spec) for name in self.workload_names for spec in specs]
            + [(name, SUPERSCALAR_SPEC) for name in self.workload_names]
        )
        table = {}
        for name in self.workload_names:
            table[name] = {spec: self.speedup(name, spec) for spec in specs}
        table["Average"] = {
            spec: sum(table[name][spec] for name in self.workload_names)
            / len(self.workload_names)
            for spec in specs
        }
        return table

    # -- batched execution --------------------------------------------------------

    def normalize_jobs(self, jobs):
        """Deduplicated, deterministically ordered job list.

        Accepts ``(name, spec)`` pairs (run under the runner's config)
        or ``(name, spec, config)`` triples, and returns
        ``(name, spec, config, profile_distance)`` tuples sorted by
        workload then spec, with already-memoized jobs removed.
        """
        normalized = {}
        for job in jobs:
            if len(job) == 2:
                name, spec = job
                config = self.config
            else:
                name, spec, config = job
            profile_distance = self.config.max_spawn_distance
            key = self._result_key(name, spec, config, profile_distance)
            if key in self._results or key in normalized:
                continue
            normalized[key] = (name, spec, config, profile_distance)
        return sorted(normalized.values(), key=lambda job: (job[0], job[1]))

    def prefetch(self, jobs):
        """Ensure every job's stats are memoized (serially, in order).

        The parallel runner overrides this with a process-pool fan-out;
        the serial implementation exists so call sites never need to
        care which runner they hold.  Returns the number of
        simulations actually run.
        """
        pending = self.normalize_jobs(jobs)
        for name, spec, config, profile_distance in pending:
            self.run_with_config(name, spec, config, profile_distance)
        return len(pending)
