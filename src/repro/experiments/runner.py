"""Experiment runner: sweeps (workload, policy) pairs with caching.

One :class:`ExperimentRunner` prepares each workload once (program,
trace, CFGs, spawn analysis, profile) and then materializes any spawn
policy on demand.  The superscalar baseline and every policy run are
cached, so the per-figure generators share work.
"""

from repro.polyflow import PAPER_CONFIG, PolyFlowCore, superscalar_config
from repro.polyflow.stats import speedup_percent
from repro.spawn import profile_spawn_points
from repro.spawn.hints import HintTable
from repro.workloads import WORKLOAD_NAMES, prepare_workload

#: Policy spec used for the dynamic reconvergence predictor (Figure 12).
REC_PRED_SPEC = "rec_pred"


class ExperimentRunner:
    """Caches workload preparation and simulation runs."""

    def __init__(self, scale=1.0, config=PAPER_CONFIG, workload_names=WORKLOAD_NAMES):
        self.scale = scale
        self.config = config
        self.workload_names = tuple(workload_names)
        self._profiles = {}
        self._baselines = {}
        self._policy_stats = {}

    # -- preparation -----------------------------------------------------------

    def workload(self, name):
        """The :class:`~repro.workloads.suite.PreparedWorkload`."""
        return prepare_workload(name, self.scale)

    def profile(self, name):
        """The spawn profile over the union of all spawn points."""
        if name not in self._profiles:
            prepared = self.workload(name)
            analysis = prepared.spawn_analysis
            points = list(analysis.postdominator_points) + list(analysis.loop_points)
            self._profiles[name] = profile_spawn_points(
                prepared.trace, points, self.config.max_spawn_distance
            )
        return self._profiles[name]

    def hint_table(self, name, spec):
        """The hint table for one (workload, policy spec) pair."""
        prepared = self.workload(name)
        policy = prepared.spawn_analysis.policy(spec)
        return self.profile(name).hint_table(policy)

    # -- simulation ---------------------------------------------------------------

    def baseline(self, name):
        """Superscalar stats for ``name`` (cached)."""
        if name not in self._baselines:
            prepared = self.workload(name)
            core = PolyFlowCore(
                prepared.trace, superscalar_config(self.config), HintTable()
            )
            self._baselines[name] = core.run()
        return self._baselines[name]

    def run_policy(self, name, spec):
        """PolyFlow stats for ``name`` under policy ``spec`` (cached)."""
        key = (name, spec)
        if key not in self._policy_stats:
            prepared = self.workload(name)
            if spec == REC_PRED_SPEC:
                from repro.reconvergence import build_reconvergence_spawner

                core = PolyFlowCore(prepared.trace, self.config, HintTable())
                core.spawn_unit = build_reconvergence_spawner(
                    prepared, self.config
                )
            else:
                hints = self.hint_table(name, spec)
                core = PolyFlowCore(prepared.trace, self.config, hints)
            self._policy_stats[key] = core.run()
        return self._policy_stats[key]

    def speedup(self, name, spec):
        """Speedup (%) of policy ``spec`` over the superscalar baseline."""
        return speedup_percent(self.run_policy(name, spec), self.baseline(name))

    def speedups_for_specs(self, specs):
        """Mapping ``{workload: {spec: speedup%}}`` plus an Average row."""
        table = {}
        for name in self.workload_names:
            table[name] = {spec: self.speedup(name, spec) for spec in specs}
        table["Average"] = {
            spec: sum(table[name][spec] for name in self.workload_names)
            / len(self.workload_names)
            for spec in specs
        }
        return table
