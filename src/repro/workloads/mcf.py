"""Synthetic ``mcf``: memory-bound pointer chasing with hard branches.

Walks a randomized pointer chain over a ~2MB node arena (four times the
512KB L2), so the chain loads miss in L2.  Each node's value drives an
unpredictable if-then-else hammock and, occasionally, a shared-tail
("goto"-style) region whose spawn point classifies as *other*.

Character reproduced: hammock spawns jump over hard branches whose
resolution waits on L2 misses (mcf speeds up most with hammocks);
excluding the "other" category also hurts (Figure 11: ~16% loss).
"""

from repro.isa.program import DATA_BASE
from repro.workloads.builder import AsmBuilder, check_scale, scaled

_NODE_BYTES = 64
_VALUE, _NEXT = 0, 8


def build(scale=1.0):
    """Generate the mcf-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("mcf", seed=0xA3CF)
    rng = builder.random
    node_count = scaled(6144, scale, minimum=64)
    iterations = scaled(1500, scale, minimum=8)

    # A single random cycle through all nodes (Sattolo's algorithm) so
    # consecutive chain loads land on far-apart lines.
    order = list(range(node_count))
    index = node_count
    while index > 1:
        index -= 1
        swap = rng.randrange(index)
        order[index], order[swap] = order[swap], order[index]
    successor = [0] * node_count
    for position in range(node_count):
        successor[order[position]] = order[(position + 1) % node_count]

    # Each node stores its successor pointer twice (fields 'next' and
    # 'alt'): the traversal picks the field from the node's value, so
    # the chase address depends on the value load.
    node_base = DATA_BASE
    records = [
        [
            rng.randrange(0, 1 << 16),  # value
            node_base + successor[node] * _NODE_BYTES,  # next
            node_base + successor[node] * _NODE_BYTES,  # alt
        ]
        for node in range(node_count)
    ]
    builder.data_records("nodes", records, _NODE_BYTES)
    builder.data_words("buckets", [0] * 32)

    builder.label("main")
    builder.emit("la   r9, nodes")
    builder.emit("la   r27, buckets")
    builder.emit("li   r10, {}".format(iterations))

    builder.label("chase")
    builder.emit("lw   r2, {}(r9)".format(_VALUE))  # often an L2 miss
    builder.emit("andi r4, r2, 1")
    builder.emit("bne  r4, r0, arc_in")  # ~50% taken: hard hammock

    builder.label("arc_out")
    builder.emit("add  r3, r3, r2")
    builder.emit("xor  r5, r5, r2")
    builder.emit("j    arc_join")
    builder.label("arc_in")
    builder.emit("sub  r3, r3, r2")
    builder.emit("or   r5, r5, r2")
    builder.label("arc_join")

    # Complex region ("other"): the basis branch jumps into an arm of
    # the price branch, giving the price branch's region a side entry.
    builder.emit("andi r6, r2, 6")
    builder.emit("beq  r6, r0, price_deep")  # ~25% side entry
    builder.label("price")
    builder.emit("andi r7, r2, 8")
    builder.emit("bne  r7, r0, price_deep")  # region has a side entry
    builder.emit("addi r3, r3, 3")
    builder.emit("xor  r8, r8, r3")
    builder.emit("slli r7, r2, 3")
    builder.emit("add  r8, r8, r7")
    builder.emit("j    price_join")
    builder.label("price_deep")
    builder.emit("addi r3, r3, 11")
    builder.emit("or   r8, r8, r3")
    builder.emit("srli r7, r2, 3")
    builder.emit("xor  r8, r8, r7")
    builder.label("price_join")
    builder.emit("add  r8, r8, r3")

    # Bucket update: a read-modify-write on a small shared table, so
    # nearby iterations carry memory dependences (loop-iteration tasks
    # conflict and get squashed, as real mcf's potentials do).
    builder.emit("andi r14, r2, 248")
    builder.emit("add  r14, r27, r14")
    builder.emit("lw   r15, 0(r14)")
    builder.emit("add  r15, r15, r3")
    builder.emit("sw   r15, 0(r14)")

    builder.label("advance")
    # The chase address depends on the node's value: next vs alt field.
    builder.emit("andi r6, r2, 8")
    builder.emit("add  r6, r9, r6")
    builder.emit("lw   r9, {}(r6)".format(_NEXT))  # serial pointer chase
    builder.emit("addi r10, r10, -1")
    builder.emit("bne  r10, r0, chase")
    builder.emit("halt")
    return builder.source()
