"""Synthetic ``gcc``: a large, structurally diverse compiler-like body.

A generator emits dozens of small pass functions, each randomly shaped
as a hammock chain, a scan loop, a switch dispatch, or a shared-tail
region, called from a driver loop.  gcc's distinguishing feature in the
paper is its very large static spawn count spread across all four
categories, with moderate dynamic speedups.
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled

_FUNCTION_COUNT = 36


def _emit_hammock_chain(builder, tag):
    for level in range(3):
        else_label = builder.fresh_label("gcc_e{}".format(tag))
        join_label = builder.fresh_label("gcc_j{}".format(tag))
        builder.emit("andi r5, r2, {}".format(1 << (level + 1)))
        builder.emit("beq  r5, r0, {}".format(else_label))
        builder.emit("addi r1, r1, {}".format(level + 1))
        builder.emit("j    {}".format(join_label))
        builder.label(else_label)
        builder.emit("xor  r1, r1, r2")
        builder.label(join_label)
        builder.emit("add  r6, r6, r1")


def _emit_scan_loop(builder, tag, trips):
    loop = builder.fresh_label("gcc_l{}".format(tag))
    builder.emit("li   r16, {}".format(trips))
    builder.emit("move r17, r28")
    builder.label(loop)
    builder.emit("lw   r18, 0(r17)")
    builder.emit("add  r1, r1, r18")
    builder.emit("addi r17, r17, 8")
    builder.emit("addi r16, r16, -1")
    builder.emit("bne  r16, r0, {}".format(loop))


def _emit_switch(builder, tag, table_label, case_count):
    cases = [builder.fresh_label("gcc_c{}".format(tag)) for _ in range(case_count)]
    after = builder.fresh_label("gcc_a{}".format(tag))
    builder.emit("andi r5, r2, {}".format(case_count - 1))
    builder.emit("slli r5, r5, 3")
    builder.emit("la   r16, {}".format(table_label))
    builder.emit("add  r16, r16, r5")
    builder.emit("lw   r16, 0(r16)")
    builder.emit("jr   r16")
    for number, case in enumerate(cases):
        builder.label(case)
        builder.emit("addi r1, r1, {}".format(number + 1))
        builder.emit("j    {}".format(after))
    builder.label(after)
    builder.emit("add  r6, r6, r1")
    return cases


def _emit_shared_tail(builder, tag):
    # An earlier branch jumps into one arm of a later branch, giving the
    # later branch's region a side entry ("other" classification).
    arm = builder.fresh_label("gcc_t{}".format(tag))
    join = builder.fresh_label("gcc_tj{}".format(tag))
    builder.emit("andi r5, r2, 12")
    builder.emit("beq  r5, r0, {}".format(arm))
    builder.emit("andi r6, r2, 1")
    builder.emit("bne  r6, r0, {}".format(arm))  # side entry into the arm
    builder.emit("addi r1, r1, 5")
    builder.emit("xor  r7, r7, r1")
    builder.emit("j    {}".format(join))
    builder.label(arm)
    builder.emit("addi r1, r1, 9")
    builder.emit("or   r7, r7, r1")
    builder.label(join)
    builder.emit("add  r7, r7, r1")


def build(scale=1.0):
    """Generate the gcc-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("gcc", seed=0x6CC)
    rng = builder.random
    passes = scaled(16, scale, minimum=1)

    shapes = []
    switch_tables = {}
    for index in range(_FUNCTION_COUNT):
        shapes.append(rng.choice(("hammocks", "loop", "switch", "tail", "mixed")))

    builder.label("main")
    builder.emit("la   r28, pool")
    builder.emit("li   r9, {}".format(passes))
    builder.label("driver")
    for index in range(_FUNCTION_COUNT):
        builder.emit("jal  pass_{}".format(index))
        builder.emit("add  r3, r3, r1")
    builder.emit("addi r9, r9, -1")
    builder.emit("bne  r9, r0, driver")
    builder.emit("halt")

    for index, shape in enumerate(shapes):
        builder.label("pass_{}".format(index))
        builder.emit("lw   r2, {}(r28)".format(8 * (index % 64)))
        builder.emit("li   r1, 0")
        if shape == "hammocks":
            _emit_hammock_chain(builder, index)
        elif shape == "loop":
            _emit_scan_loop(builder, index, trips=4 + index % 5)
        elif shape == "switch":
            table = "table_{}".format(index)
            switch_tables[table] = _emit_switch(builder, index, table, 4)
        elif shape == "tail":
            _emit_shared_tail(builder, index)
        else:  # mixed
            _emit_hammock_chain(builder, "m{}".format(index))
            _emit_shared_tail(builder, "m{}".format(index))
        builder.emit("jr   ra")

    builder.data_words("pool", [rng.randrange(0, 1 << 14) for _ in range(64)])
    for table, cases in switch_tables.items():
        builder.data_words(table, list(cases))
    return builder.source()
