"""Synthetic ``parser``: link-grammar-style sentence processing.

An outer loop over words calls a dictionary-lookup routine (a short
hash-probe loop), then runs a linkage check with skewed (~75/25)
data-dependent branches.  A moderate mix: some procFT, some loopFT,
some hammock value, with postdoms combining them.
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled


def build(scale=1.0):
    """Generate the parser-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("parser", seed=0x9A25E2)
    rng = builder.random
    words = scaled(850, scale, minimum=4)

    builder.data_words("sentence", [rng.randrange(0, 1 << 10) for _ in range(words)])
    builder.data_words("dict", [rng.randrange(0, 1 << 10) for _ in range(128)])
    builder.data_words(
        "links", [1 if rng.random() < 0.75 else 0 for _ in range(words)]
    )

    builder.label("main")
    builder.emit("la   r9, sentence")
    builder.emit("la   r26, links")
    builder.emit("li   r10, {}".format(words))

    builder.label("next_word")
    builder.emit("lw   r2, 0(r9)")
    # The dictionary probe mixes in the running parse state, so
    # consecutive words carry a serial dependence (as the linkage
    # algorithm's disjunct state does).
    builder.emit("xor  r2, r2, r6")
    builder.emit("jal  lookup")
    builder.emit("add  r3, r3, r1")

    # Linkage check: skewed branch (75% taken).
    builder.emit("lw   r4, 0(r26)")
    builder.emit("bne  r4, r0, link_ok")
    builder.label("link_fail")
    builder.emit("addi r5, r5, 1")
    builder.emit("xor  r6, r6, r5")
    builder.emit("j    linked")
    builder.label("link_ok")
    builder.emit("addi r6, r6, 2")
    builder.label("linked")
    builder.emit("add  r7, r7, r6")

    builder.emit("addi r9, r9, 8")
    builder.emit("addi r26, r26, 8")
    builder.emit("addi r10, r10, -1")
    builder.emit("bne  r10, r0, next_word")
    builder.emit("halt")

    # Dictionary lookup: a short probe loop (3 fixed probes).
    builder.label("lookup")
    builder.emit("andi r15, r2, 127")
    builder.emit("slli r15, r15, 3")
    builder.emit("la   r16, dict")
    builder.emit("add  r16, r16, r15")
    builder.emit("li   r17, 3")
    builder.emit("li   r1, 0")
    builder.label("probe")
    builder.emit("lw   r18, 0(r16)")
    builder.emit("add  r1, r1, r18")
    builder.emit("addi r16, r16, 8")
    builder.emit("addi r17, r17, -1")
    builder.emit("bne  r17, r0, probe")
    builder.emit("jr   ra")
    return builder.source()
