"""Program-construction helpers for the synthetic workload suite.

The suite replaces the paper's SPEC2000int binaries (see DESIGN.md,
"Substitutions").  Each workload is generated as assembly text through
:class:`AsmBuilder`, with seeded randomness so every build is
bit-reproducible.

Register conventions used by the generated code:

* ``r1``-``r8``: scratch/accumulators inside kernels,
* ``r9``-``r15``: pointers and loop counters,
* ``r16``-``r25``: extra scratch for generated filler code,
* ``r28``: base of the workload's primary data arena,
* ``ra``/``sp``: standard linkage (no stack is needed; leaf calls only
  save nothing, non-leaf calls save ``ra`` to a static slot).
"""

import hashlib
import random

from repro.errors import ConfigurationError


def derive_seed(name, *extra):
    """Deterministic 64-bit RNG seed derived from a workload name.

    Every workload (and every synthesized scenario) must build from its
    own seed, never from a shared default: two builders silently
    sharing one RNG stream would emit correlated "random" data and make
    bit-reproducibility accidents invisible.  Extra components (variant
    numbers, catalog versions) are folded into the hash.
    """
    hasher = hashlib.sha256(name.encode("utf-8"))
    for item in extra:
        hasher.update(b"|")
        hasher.update(str(item).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little")


#: seed -> workload name that first built with it (process-wide).  Two
#: *different* workload names claiming the same seed is always a bug —
#: their "independent" random data would be identical streams — so
#: :class:`AsmBuilder` rejects it at construction time.
_SEED_OWNERS = {}


def seed_ledger():
    """Snapshot of the seed -> owning-workload-name ledger (for tests)."""
    return dict(_SEED_OWNERS)


class AsmBuilder:
    """Accumulates assembly text with unique labels.

    ``seed`` defaults to :func:`derive_seed` of the builder's name, so
    distinct workloads can never share an RNG stream by omission; an
    explicit seed is accepted but must not collide with a different
    workload's seed.
    """

    def __init__(self, name, seed=None):
        self.name = name
        if seed is None:
            seed = derive_seed(name)
        owner = _SEED_OWNERS.setdefault(seed, name)
        if owner != name:
            raise ConfigurationError(
                "workload {!r} reuses seed {:#x} already owned by workload "
                "{!r}; derive a distinct per-workload seed".format(
                    name, seed, owner
                )
            )
        self.seed = seed
        self.random = random.Random(seed)
        self._text = []
        self._data = []
        self._label_counter = 0

    # -- labels ------------------------------------------------------------

    def fresh_label(self, prefix="L"):
        """Return a new unique label."""
        self._label_counter += 1
        return "{}_{}".format(prefix, self._label_counter)

    # -- text segment --------------------------------------------------------

    def emit(self, line):
        """Append one instruction or raw line to the text segment."""
        self._text.append("    " + line)

    def label(self, name):
        """Place a label in the text segment."""
        self._text.append("{}:".format(name))

    def comment(self, text):
        """Append a comment line."""
        self._text.append("    # {}".format(text))

    # -- data segment ----------------------------------------------------------

    def data_words(self, label, values):
        """Emit a labelled ``.word`` array (8-byte little-endian words)."""
        self._data.append("{}:".format(label))
        for start in range(0, len(values), 8):
            chunk = values[start : start + 8]
            self._data.append("    .word " + ", ".join(str(v) for v in chunk))

    def data_space(self, label, nbytes):
        """Emit a labelled zero-initialized region (sparse)."""
        self._data.append("{}:".format(label))
        self._data.append("    .space {}".format(nbytes))

    def data_label(self, label):
        """Place a bare data label."""
        self._data.append("{}:".format(label))

    def data_records(self, label, records, record_bytes):
        """Emit an array of fixed-stride records.

        Each record is a list of leading word values; the remainder of
        the record up to ``record_bytes`` is reserved sparsely (reads as
        zero) so multi-megabyte arenas stay cheap to assemble.
        """
        self._data.append("{}:".format(label))
        for words in records:
            if words:
                self._data.append(
                    "    .word " + ", ".join(str(value) for value in words)
                )
            padding = record_bytes - 8 * len(words)
            if padding > 0:
                self._data.append("    .space {}".format(padding))

    # -- common fragments --------------------------------------------------------

    def random_bits(self, count, taken_probability):
        """A list of 0/1 words with P(1) = ``taken_probability``."""
        return [
            1 if self.random.random() < taken_probability else 0
            for _ in range(count)
        ]

    def emit_independent_alu(self, count, registers=(16, 17, 18, 19, 20, 21)):
        """Emit ``count`` fully independent ALU instructions (ILP filler).

        Every instruction reads the same two stable source registers
        (r24/r25 by convention), so the block has no internal
        dependences and the backend can drain it at full width.
        """
        ops = ("add", "xor", "or", "and")
        for index in range(count):
            rd = registers[index % len(registers)]
            self.emit("{} r{}, r24, r25".format(ops[index % len(ops)], rd))

    def emit_serial_chain(self, count, register=22):
        """Emit a ``count``-deep dependence chain (serializing filler)."""
        for _ in range(count):
            self.emit("addi r{0}, r{0}, 1".format(register))

    def source(self):
        """Render the complete assembly source."""
        parts = ["    .text"]
        parts.extend(self._text)
        if self._data:
            parts.append("    .data")
            parts.extend(self._data)
        return "\n".join(parts) + "\n"


def scaled(value, scale, minimum=1):
    """Scale an iteration count, keeping it at least ``minimum``."""
    result = int(round(value * scale))
    if result < minimum:
        return minimum
    return result


def check_scale(scale):
    """Validate a workload scale factor."""
    if scale <= 0:
        raise ConfigurationError("workload scale must be positive")
    return scale
