"""Synthetic ``gap``: computer-algebra kernels behind a call interface.

A work list dispatches direct calls to a set of arithmetic kernels
(big-integer-style limb loops and small combinatorial routines) whose
combined footprint pressures the L1 I-cache.  Procedure fall-through
spawns overlap the post-call code (and its fetch misses) with the
callee — gap responds to procFT like vortex, a bit less extremely.
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled

_KERNEL_COUNT = 16
_LIMB_COUNT = 6


def _emit_kernel(builder, index):
    """A kernel: a short limb loop plus straight-line reduction code."""
    builder.label("kernel_{}".format(index))
    builder.emit("la   r16, limbs_{}".format(index))
    builder.emit("li   r17, {}".format(_LIMB_COUNT))
    builder.emit("li   r1, 0")
    loop = builder.fresh_label("gap_limb")
    builder.label(loop)
    builder.emit("lw   r18, 0(r16)")
    builder.emit("add  r1, r1, r18")
    builder.emit("mul  r19, r18, r18")
    builder.emit("xor  r1, r1, r19")
    builder.emit("addi r16, r16, 8")
    builder.emit("addi r17, r17, -1")
    builder.emit("bne  r17, r0, {}".format(loop))
    # Independent straight-line reduction filler: builds the I-cache
    # footprint without serializing the backend.
    builder.emit_independent_alu(110, registers=(20, 21, 22, 23))
    builder.emit("jr   ra")


def build(scale=1.0):
    """Generate the gap-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("gap", seed=0x6A9)
    rng = builder.random
    rounds = scaled(12, scale, minimum=2)

    builder.label("main")
    builder.emit("li   r9, {}".format(rounds))
    builder.label("round_loop")
    for index in range(_KERNEL_COUNT):
        builder.emit("jal  kernel_{}".format(index))
        builder.emit("add  r3, r3, r1")
        # A mostly-predictable guard between calls.
        skip = builder.fresh_label("gap_skip")
        builder.emit("bgez r3, {}".format(skip))
        builder.emit("sub  r3, r0, r3")
        builder.label(skip)
    builder.emit("addi r9, r9, -1")
    builder.emit("bne  r9, r0, round_loop")
    builder.emit("halt")

    for index in range(_KERNEL_COUNT):
        _emit_kernel(builder, index)
    for index in range(_KERNEL_COUNT):
        builder.data_words(
            "limbs_{}".format(index),
            [rng.randrange(1, 1 << 16) for _ in range(_LIMB_COUNT)],
        )
    return builder.source()
