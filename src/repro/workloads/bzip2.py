"""Synthetic ``bzip2``: block-sorting compression loops.

A Burrows-Wheeler-ish kernel: an outer loop over blocks, an inner
comparison loop with a moderately-biased early-exit branch, and a
move-to-front pass with a data-dependent hammock.  Gains come from a
mix of loop fall-throughs and hammocks; postdoms combines them — the
paper's bzip2 shape (moderate speedups across categories, postdoms
best).
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled


def build(scale=1.0):
    """Generate the bzip2-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("bzip2", seed=0xB21B2)
    rng = builder.random
    blocks = scaled(900, scale, minimum=2)

    # Low-entropy bytes: rotation comparisons match fairly often,
    # giving the comparison loop a short data-dependent trip count.
    builder.data_words("block", [rng.randrange(0, 3) for _ in range(256)])
    builder.data_words("mtf", [rng.randrange(0, 2) for _ in range(256)])

    builder.label("main")
    builder.emit("la   r9, block")
    builder.emit("la   r26, mtf")
    builder.emit("li   r10, {}".format(blocks))

    builder.label("sort_block")
    # Inner comparison loop: compare rotations until mismatch (the
    # trip count is data dependent, around 6).
    builder.emit("andi r11, r10, 255")
    builder.emit("slli r11, r11, 3")
    builder.emit("add  r11, r9, r11")  # rotation cursor
    builder.emit("li   r12, 12")
    builder.label("compare")
    builder.emit("lw   r2, 0(r11)")
    builder.emit("lw   r4, 8(r11)")
    builder.emit("beq  r2, r4, keep_comparing")
    builder.emit("j    compared")  # early exit (mismatch, common)
    builder.label("keep_comparing")
    builder.emit("addi r11, r11, 8")
    builder.emit("addi r12, r12, -1")
    builder.emit("bne  r12, r0, compare")
    builder.label("compared")

    # Move-to-front pass with a data-dependent hammock (~50%).
    builder.emit("andi r13, r10, 255")
    builder.emit("slli r13, r13, 3")
    builder.emit("add  r13, r26, r13")
    builder.emit("lw   r5, 0(r13)")
    builder.emit("bne  r5, r0, mtf_hit")
    builder.label("mtf_miss")
    builder.emit("addi r6, r6, 1")
    builder.emit("xor  r7, r7, r6")
    builder.emit("j    mtf_done")
    builder.label("mtf_hit")
    builder.emit("addi r7, r7, 3")
    builder.label("mtf_done")
    builder.emit("add  r8, r8, r7")

    builder.label("next_block")
    builder.emit("addi r10, r10, -1")
    builder.emit("bne  r10, r0, sort_block")
    builder.emit("halt")
    return builder.source()
