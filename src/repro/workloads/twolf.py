"""Synthetic ``twolf``: the ``new_dbox_a`` loop nest of Figure 6.

A nested loop traversing linked lists.  The outer loop walks a list of
*terms*; for each term, an inner loop (about 3 iterations) walks a list
of *net* nodes containing an if-then-else (taken ~30% of the time) and
two if-then ABS hammocks (taken ~50%), exactly the structure the paper
analyses in Section 2.3.

Character reproduced: inner- and outer-loop parallelism (loop and
loopFT spawns help), hard-to-predict hammocks inside the inner loop
(hammock spawns compose into inner-loop spawns).
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled

#: Net-node field offsets (8-byte fields): xpos, flag, newx, nterm.
_XPOS, _FLAG, _NEWX, _NTERM = 0, 8, 16, 24
_NET_NODE_BYTES = 32
#: Term-node field offsets: netptr, nextterm.
_NETPTR, _NEXTTERM = 0, 8
_TERM_NODE_BYTES = 16


def build(scale=1.0):
    """Generate the twolf-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("twolf", seed=0x2001F)
    rng = builder.random
    term_count = scaled(420, scale, minimum=4)

    # -- data: linked lists of term and net nodes ---------------------------
    from repro.isa.program import DATA_BASE

    term_base = DATA_BASE
    net_base = term_base + term_count * _TERM_NODE_BYTES
    net_lengths = [rng.choice((1, 2, 3, 3, 4, 5)) for _ in range(term_count)]

    term_words = []
    net_cursor = net_base
    for index in range(term_count):
        term_words.append(net_cursor)  # netptr -> first net node
        if index + 1 < term_count:
            term_words.append(term_base + (index + 1) * _TERM_NODE_BYTES)
        else:
            term_words.append(0)
        net_cursor += net_lengths[index] * _NET_NODE_BYTES

    net_words = []
    net_cursor = net_base
    for index in range(term_count):
        for position in range(net_lengths[index]):
            net_words.append(rng.randrange(0, 4096))  # xpos
            net_words.append(1 if rng.random() < 0.30 else 0)  # flag
            net_words.append(rng.randrange(0, 4096))  # newx
            if position + 1 < net_lengths[index]:
                net_words.append(net_cursor + (position + 1) * _NET_NODE_BYTES)
            else:
                net_words.append(0)  # nterm
        net_cursor += net_lengths[index] * _NET_NODE_BYTES

    builder.data_words("terms", term_words)
    builder.data_words("nets", net_words)

    # -- code ------------------------------------------------------------------
    # r9 = termptr, r10 = netptr, r3 = *costptr accumulator (register
    # allocated), r11 = new_mean, r12 = old_mean.
    builder.label("main")
    builder.emit("la   r9, terms")
    # Means sit at the first quartile of the coordinate range, so the
    # ABS hammock branches are taken about 75% of the time (hard, but
    # not coin-flip hard).
    builder.emit("li   r11, 1024")
    builder.emit("li   r12, 1024")
    builder.emit("li   r3, 0")

    builder.label("outer")  # for each termptr
    builder.emit("lw   r10, {}(r9)".format(_NETPTR))
    builder.emit("beq  r10, r0, outer_latch")

    builder.label("inner")  # for each netptr
    builder.emit("lw   r2, {}(r10)".format(_XPOS))  # oldx
    builder.emit("lw   r4, {}(r10)".format(_FLAG))
    builder.emit("bne  r4, r0, flag_set")  # if (flag == 1), ~30% taken
    builder.label("flag_clear")
    builder.emit("move r5, r2")  # newx = oldx
    builder.emit("j    abs1")
    builder.label("flag_set")
    builder.emit("lw   r5, {}(r10)".format(_NEWX))  # newx = netptr->newx
    builder.emit("sw   r0, {}(r10)".format(_FLAG))  # netptr->flag = 0

    builder.label("abs1")  # t1 = ABS(newx - new_mean)
    builder.emit("sub  r6, r5, r11")
    builder.emit("bgez r6, abs2")
    builder.emit("sub  r6, r0, r6")
    builder.label("abs2")  # t2 = ABS(oldx - old_mean)
    builder.emit("sub  r7, r2, r12")
    builder.emit("bgez r7, accumulate")
    builder.emit("sub  r7, r0, r7")
    builder.label("accumulate")  # *costptr += t1 - t2
    builder.emit("sub  r8, r6, r7")
    builder.emit("add  r3, r3, r8")
    # Independent cost bookkeeping (keeps the backend busy between the
    # hard branches, as twolf's real arithmetic does).
    builder.emit_independent_alu(6, registers=(16, 17, 18))
    builder.emit("lw   r10, {}(r10)".format(_NTERM))  # netptr = netptr->nterm
    builder.emit("bne  r10, r0, inner")

    builder.label("outer_latch")  # termptr = termptr->nextterm
    builder.emit("lw   r9, {}(r9)".format(_NEXTTERM))
    builder.emit("bne  r9, r0, outer")

    builder.label("done")
    builder.emit("halt")
    return builder.source()
