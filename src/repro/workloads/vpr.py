"""Synthetic ``vpr``: FPGA placement and routing kernels.

``vpr.place``: a simulated-annealing swap loop — cost computation with
loads, an accept/reject hammock near 45% taken, and a short update
loop.  Moderate hammock and loopFT response.

``vpr.route``: a maze router — an outer loop over independent nets and
a *serial* inner wavefront-expansion loop.  The inner loop's fall
through exposes outer-loop parallelism, making loopFT the dominant
spawn type (Figure 11: ~29% loss without loopFT; a loopFT-leaning
restriction can even beat full postdoms by a hair).
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled


def build_place(scale=1.0):
    """Generate the vpr.place-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("vpr.place", seed=0x7915)
    rng = builder.random
    swaps = scaled(700, scale, minimum=4)

    builder.data_words("costs", [rng.randrange(0, 1 << 10) for _ in range(256)])
    builder.data_words(
        "accepts", [1 if rng.random() < 0.45 else 0 for _ in range(swaps)]
    )

    builder.label("main")
    builder.emit("la   r9, costs")
    builder.emit("la   r26, accepts")
    builder.emit("li   r10, {}".format(swaps))

    builder.label("try_swap")
    # The blocks tried next depend on the accumulated cost (annealing
    # walks the accepted state), so iterations carry a serial
    # dependence and only modest speedups are available.
    builder.emit("andi r11, r7, 2040")
    builder.emit("add  r11, r9, r11")
    builder.emit("lw   r2, 0(r11)")
    builder.emit("lw   r4, 8(r11)")
    builder.emit("sub  r5, r2, r4")
    # Accept/reject hammock (~45% taken, data dependent).
    builder.emit("lw   r6, 0(r26)")
    builder.emit("bne  r6, r0, accept")
    builder.label("reject")
    builder.emit("xor  r7, r7, r5")
    builder.emit("j    swap_done")
    builder.label("accept")
    builder.emit("add  r7, r7, r5")
    builder.emit("sw   r7, 0(r11)")
    builder.label("swap_done")

    # Short bounding-box update loop (3 iterations).
    builder.emit("li   r12, 3")
    builder.emit("move r13, r11")
    builder.label("update_bb")
    builder.emit("lw   r14, 0(r13)")
    builder.emit("add  r8, r8, r14")
    builder.emit("addi r13, r13, 8")
    builder.emit("addi r12, r12, -1")
    builder.emit("bne  r12, r0, update_bb")

    builder.emit("addi r26, r26, 8")
    builder.emit("addi r10, r10, -1")
    builder.emit("bne  r10, r0, try_swap")
    builder.emit("halt")
    return builder.source()


def build_route(scale=1.0):
    """Generate the vpr.route-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("vpr.route", seed=0x707E)
    rng = builder.random
    nets = scaled(300, scale, minimum=4)

    builder.data_words("netlist", [rng.randrange(0, 1 << 12) for _ in range(nets)])
    builder.data_words("grid", [rng.randrange(0, 1 << 8) for _ in range(512)])

    builder.label("main")
    builder.emit("la   r9, netlist")
    builder.emit("la   r26, grid")
    builder.emit("li   r10, {}".format(nets))

    builder.label("route_net")  # outer loop: nets are independent
    builder.emit("lw   r2, 0(r9)")
    builder.emit("li   r1, 0")
    # Three expansion waves per net; each wave's trip count is data
    # dependent (2..9 iterations), so its exit branch mispredicts — the
    # stall loop fall-through spawns jump over.
    for wave, shift in enumerate((0, 3, 6)):
        expand = builder.fresh_label("vr_expand")
        if wave == 0:
            # First wave: data-dependent trip count (2..9) whose exit
            # branch mispredicts.
            builder.emit("srli r11, r2, {}".format(shift))
            builder.emit("andi r11, r11, 7")
            builder.emit("addi r11, r11, 2")
        else:
            # Later waves: fixed trip counts the predictor learns.
            builder.emit("li   r11, {}".format(3 + wave))
        builder.emit("andi r12, r2, 504")
        builder.emit("add  r12, r26, r12")
        builder.label(expand)
        builder.emit("lw   r13, {}(r12)".format(8 * wave))
        builder.emit("add  r1, r1, r13")
        builder.emit("xor  r4, r13, r2")
        builder.emit("or   r5, r5, r13")
        builder.emit("and  r6, r13, r2")
        builder.emit("addi r12, r12, 8")
        builder.emit("addi r11, r11, -1")
        builder.emit("bne  r11, r0, {}".format(expand))

    builder.label("net_done")  # final fall-through spawn target
    builder.emit("add  r3, r3, r1")
    builder.emit("addi r9, r9, 8")
    builder.emit("addi r10, r10, -1")
    builder.emit("bne  r10, r0, route_net")
    builder.emit("halt")
    return builder.source()
