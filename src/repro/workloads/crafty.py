"""Synthetic ``crafty``: branch-dense game-tree evaluation.

An evaluation loop over positions with *nested* unpredictable hammocks
(PolyFlow spawns only the outermost branch of a nest), shared-tail
regions that classify as "other", a small attack-table loop, and a
couple of helper calls.  No single heuristic captures much; only the
full postdominator set does — the paper's crafty behaviour (hammocks
help a little, postdoms much more; rec_pred lags).
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled


def _emit_nested_hammock(builder, depth, tag):
    """Emit a nest of unpredictable if-then-else levels.

    Each arm holds a few instructions of evaluation work, so the join
    is far enough from the branch to be a worthwhile task.
    """
    join_labels = []
    for level in range(depth):
        else_label = builder.fresh_label("cr_else_{}".format(tag))
        join_label = builder.fresh_label("cr_join_{}".format(tag))
        join_labels.append(join_label)
        builder.emit("andi r5, r2, {}".format(1 << level))
        builder.emit("bne  r5, r0, {}".format(else_label))
        builder.emit("addi r3, r3, {}".format(level + 1))
        builder.emit("slli r6, r2, {}".format(level + 1))
        builder.emit("or   r4, r4, r6")
        builder.emit("add  r7, r7, r6")
        builder.emit("j    {}".format(join_label))
        builder.label(else_label)
        builder.emit("sub  r3, r3, r4")
        builder.emit("srli r6, r2, {}".format(level + 1))
        builder.emit("xor  r7, r7, r6")
        builder.emit("and  r4, r4, r2")
        builder.label(join_label)
        builder.emit("xor  r4, r4, r3")
    del join_labels


def build(scale=1.0):
    """Generate the crafty-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("crafty", seed=0xC4AF7)
    rng = builder.random
    positions = scaled(900, scale, minimum=4)

    builder.data_words(
        "board", [rng.randrange(0, 1 << 12) for _ in range(positions)]
    )
    builder.data_words(
        "attack", [rng.randrange(0, 1 << 8) for _ in range(64)]
    )
    builder.data_words(
        "piece_table", ["piece_{}".format(piece) for piece in range(4)]
    )

    builder.label("main")
    builder.emit("la   r28, board")
    builder.emit("la   r26, attack")
    builder.emit("li   r10, {}".format(positions))
    builder.emit("li   r3, 1")

    builder.label("evaluate")
    # The next position examined depends on the running score (as
    # alpha-beta search order does), so successive iterations carry a
    # serial dependence and outer-iteration pipelining buys little.
    builder.emit("andi r16, r3, 1016")
    builder.emit("add  r17, r28, r16")
    builder.emit("lw   r2, 0(r17)")  # position hash: random bits

    # Piece-type dispatch through a jump table: an unpredictable
    # indirect jump whose reconvergence is an "other" spawn point.
    builder.emit("andi r11, r2, 24")
    builder.emit("la   r12, piece_table")
    builder.emit("add  r12, r12, r11")
    builder.emit("lw   r12, 0(r12)")
    builder.emit("jr   r12")
    for piece in range(4):
        builder.label("piece_{}".format(piece))
        builder.emit("addi r3, r3, {}".format(piece + 1))
        builder.emit("slli r13, r2, {}".format(piece + 1))
        builder.emit("xor  r7, r7, r13")
        builder.emit("add  r8, r8, r13")
        builder.emit("j    piece_join")
    builder.label("piece_join")
    builder.emit("add  r7, r7, r3")

    # Helper call and the attack-table loop come first: their spawn
    # points only overlap work within the same position, so procFT and
    # loopFT alone gain little on crafty (as in the paper).
    builder.emit("jal  mobility")
    builder.emit("add  r8, r8, r1")

    builder.emit("li   r11, 8")
    builder.emit("move r12, r26")
    builder.label("attack_loop")
    builder.emit("lw   r13, 0(r12)")
    builder.emit("add  r7, r7, r13")
    builder.emit("addi r12, r12, 8")
    builder.emit("addi r11, r11, -1")
    builder.emit("bne  r11, r0, attack_loop")

    # Nested unpredictable hammocks (only the outermost is spawnable at
    # a time under tail-only spawning).
    _emit_nested_hammock(builder, depth=3, tag="eval")

    # Complex region ("other"): an earlier branch jumps straight into
    # one *arm* of the king-safety branch, so that branch's region has a
    # side entry and does not classify as a simple hammock.
    builder.emit("andi r5, r2, 48")
    builder.emit("beq  r5, r0, king_rare")  # side entry into the arm
    builder.label("king_safety")
    builder.emit("andi r6, r2, 4")
    builder.emit("bne  r6, r0, king_rare")  # region has a side entry
    builder.emit("addi r3, r3, 7")
    builder.emit("xor  r7, r7, r3")
    builder.emit("slli r6, r2, 2")
    builder.emit("add  r7, r7, r6")
    builder.emit("or   r8, r8, r6")
    builder.emit("j    king_join")
    builder.label("king_rare")
    builder.emit("addi r3, r3, 2")
    builder.emit("or   r7, r7, r3")
    builder.emit("srli r6, r2, 2")
    builder.emit("xor  r8, r8, r6")
    builder.emit("and  r7, r7, r2")
    builder.label("king_join")
    builder.emit("add  r7, r7, r3")

    builder.label("next_position")
    builder.emit("xor  r3, r3, r7")  # fold the evaluation into the score
    builder.emit("addi r10, r10, -1")
    builder.emit("bne  r10, r0, evaluate")
    builder.emit("halt")

    builder.label("mobility")
    builder.emit("srli r1, r2, 4")
    builder.emit("andi r1, r1, 63")
    # An unpredictable hammock inside the callee.
    skip = builder.fresh_label("cr_mob")
    builder.emit("andi r15, r2, 256")
    builder.emit("beq  r15, r0, {}".format(skip))
    builder.emit("addi r1, r1, 9")
    builder.label(skip)
    builder.emit("jr   ra")
    return builder.source()
