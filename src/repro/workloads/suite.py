"""The synthetic benchmark suite: the 12 programs of the paper's bars.

The paper evaluates SPEC2000int (minus eon, whose C++ did not compile
with their tool chain) with Minnesota Reduced inputs.  Each entry here
is a synthetic stand-in built to exhibit the control-flow character the
paper attributes to the corresponding benchmark; see DESIGN.md
section 5 for the per-benchmark shape targets.
"""

from repro.cfg import JumpProfile, build_program_cfgs
from repro.errors import ConfigurationError
from repro.isa import assemble
from repro.sim import run_program
from repro.spawn import SpawnAnalysis
from repro.workloads import (
    bzip2,
    crafty,
    gap,
    gcc,
    gzip,
    mcf,
    parser,
    perlbmk,
    twolf,
    vortex,
    vpr,
)

#: Benchmark order used throughout the paper's figures.
WORKLOAD_NAMES = (
    "bzip2",
    "crafty",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perlbmk",
    "twolf",
    "vortex",
    "vpr.place",
    "vpr.route",
)

_BUILDERS = {
    "bzip2": bzip2.build,
    "crafty": crafty.build,
    "gap": gap.build,
    "gcc": gcc.build,
    "gzip": gzip.build,
    "mcf": mcf.build,
    "parser": parser.build,
    "perlbmk": perlbmk.build,
    "twolf": twolf.build,
    "vortex": vortex.build,
    "vpr.place": vpr.build_place,
    "vpr.route": vpr.build_route,
}


class PreparedWorkload:
    """A fully prepared workload: program, trace, CFGs, spawn analysis."""

    def __init__(self, name, program, trace, cfgs, spawn_analysis):
        self.name = name
        self.program = program
        self.trace = trace
        self.cfgs = cfgs
        self.spawn_analysis = spawn_analysis

    @property
    def dynamic_instructions(self):
        """Committed instructions in the trace."""
        return len(self.trace)

    def __repr__(self):
        return "PreparedWorkload(name={!r}, dynamic={}, procedures={})".format(
            self.name, len(self.trace), len(self.cfgs)
        )


_PREPARED_CACHE = {}


def workload_source(name, scale=1.0):
    """The assembly source of one workload."""
    if name not in _BUILDERS:
        raise ConfigurationError(
            "unknown workload {!r}; choose from {}".format(name, WORKLOAD_NAMES)
        )
    return _BUILDERS[name](scale)


def prepare_workload(name, scale=1.0, use_cache=True):
    """Build, execute, and analyse one workload.

    The returned :class:`PreparedWorkload` has the committed trace, the
    profile-driven CFGs (indirect-jump targets resolved from the
    trace), and the :class:`~repro.spawn.policies.SpawnAnalysis` from
    which all policies derive.
    """
    key = (name, scale)
    if use_cache and key in _PREPARED_CACHE:
        return _PREPARED_CACHE[key]
    source = workload_source(name, scale)
    program = assemble(source)
    trace = run_program(program)
    jump_profile = JumpProfile.from_trace(trace)
    cfgs = build_program_cfgs(program, jump_profile=jump_profile)
    spawn_analysis = SpawnAnalysis(cfgs)
    prepared = PreparedWorkload(name, program, trace, cfgs, spawn_analysis)
    if use_cache:
        _PREPARED_CACHE[key] = prepared
    return prepared


def clear_cache():
    """Drop all cached prepared workloads (mainly for tests)."""
    _PREPARED_CACHE.clear()
