"""The synthetic benchmark suite: the 12 programs of the paper's bars.

The paper evaluates SPEC2000int (minus eon, whose C++ did not compile
with their tool chain) with Minnesota Reduced inputs.  Each entry here
is a synthetic stand-in built to exhibit the control-flow character the
paper attributes to the corresponding benchmark; see DESIGN.md
section 5 for the per-benchmark shape targets.
"""

from repro.analysis.pipeline import analyses_for_source, compute_analyses
from repro.errors import ConfigurationError
from repro.workloads import (
    bzip2,
    crafty,
    gap,
    gcc,
    gzip,
    mcf,
    parser,
    perlbmk,
    twolf,
    vortex,
    vpr,
)

#: Benchmark order used throughout the paper's figures.
WORKLOAD_NAMES = (
    "bzip2",
    "crafty",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perlbmk",
    "twolf",
    "vortex",
    "vpr.place",
    "vpr.route",
)

_BUILDERS = {
    "bzip2": bzip2.build,
    "crafty": crafty.build,
    "gap": gap.build,
    "gcc": gcc.build,
    "gzip": gzip.build,
    "mcf": mcf.build,
    "parser": parser.build,
    "perlbmk": perlbmk.build,
    "twolf": twolf.build,
    "vortex": vortex.build,
    "vpr.place": vpr.build_place,
    "vpr.route": vpr.build_route,
}


class PreparedWorkload:
    """A fully prepared workload: program, trace, CFGs, spawn analysis.

    A thin named view over one
    :class:`~repro.analysis.pipeline.ProgramAnalyses` — the analyses
    themselves are shared through the content-keyed analysis cache, so
    every policy and every machine configuration simulating the same
    program reuses one trace, one CFG set, and one spawn analysis.
    """

    def __init__(self, name, analyses):
        self.name = name
        self.analyses = analyses
        self.program = analyses.program
        self.trace = analyses.trace
        self.cfgs = analyses.cfgs
        self.spawn_analysis = analyses.spawn_analysis

    def spawn_profile(self, max_spawn_distance):
        """The workload's spawn profile at one profiling distance
        (memoized on the shared analyses)."""
        return self.analyses.spawn_profile(max_spawn_distance)

    @property
    def dynamic_instructions(self):
        """Committed instructions in the trace."""
        return len(self.trace)

    def __repr__(self):
        return "PreparedWorkload(name={!r}, dynamic={}, procedures={})".format(
            self.name, len(self.trace), len(self.cfgs)
        )


_PREPARED_CACHE = {}


def workload_source(name, scale=1.0):
    """The assembly source of one workload.

    ``synth/``-prefixed names resolve through the synthesized scenario
    catalog (:mod:`repro.workloads.synth`); everything downstream —
    analysis cache, scheduler cost model, warm worker pool, result
    cache — treats catalog scenarios exactly like the hand-built suite
    because this is the single place names become source text.
    """
    if name.startswith("synth/"):
        from repro.workloads.synth import scenario_source

        return scenario_source(name, scale)
    if name not in _BUILDERS:
        raise ConfigurationError(
            "unknown workload {!r}; choose from {} or a synth/ catalog "
            "name".format(name, WORKLOAD_NAMES)
        )
    return _BUILDERS[name](scale)


def prepare_workload(name, scale=1.0, use_cache=True):
    """Build, execute, and analyse one workload.

    The returned :class:`PreparedWorkload` has the committed trace, the
    profile-driven CFGs (indirect-jump targets resolved from the
    trace), and the :class:`~repro.spawn.policies.SpawnAnalysis` from
    which all policies derive.  The analyses come from the shared
    content-keyed :class:`~repro.analysis.pipeline.AnalysisCache`, so
    they are computed at most once per program text;
    ``use_cache=False`` bypasses both the ``(name, scale)`` memo and
    the analysis cache and recomputes everything from scratch.
    """
    key = (name, scale)
    if use_cache and key in _PREPARED_CACHE:
        return _PREPARED_CACHE[key]
    source = workload_source(name, scale)
    if use_cache:
        analyses = analyses_for_source(source)
    else:
        analyses = compute_analyses(source)
    prepared = PreparedWorkload(name, analyses)
    if use_cache:
        _PREPARED_CACHE[key] = prepared
    return prepared


def workload_trace_length(name, scale=1.0):
    """Committed-trace length of one workload (the scheduler's cost unit).

    Goes through :func:`prepare_workload`, so estimating the cost of a
    pending grid also prepares the program in the parent — which a
    fork-start worker pool then inherits for free.
    """
    return prepare_workload(name, scale).dynamic_instructions


def peek_workload_trace_length(name, scale=1.0):
    """Committed-trace length if already known, else None.

    Checks the ``(name, scale)`` preparation memo and the shared
    analysis cache's memory/disk layers; a miss returns None without
    generating the trace.  Generating the *source* text is cheap (it is
    needed to key the cache) — the expensive pipeline never runs.
    """
    key = (name, scale)
    prepared = _PREPARED_CACHE.get(key)
    if prepared is not None:
        return prepared.dynamic_instructions
    from repro.analysis.pipeline import peek_trace_length_for_source

    return peek_trace_length_for_source(workload_source(name, scale))


def clear_cache():
    """Drop all cached prepared workloads and the in-memory layer of
    the shared analysis cache (mainly for tests)."""
    from repro.analysis.pipeline import clear_shared_cache

    _PREPARED_CACHE.clear()
    clear_shared_cache()
