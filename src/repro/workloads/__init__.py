"""Synthetic SPEC2000int-like workloads (see DESIGN.md, Substitutions)."""

from repro.workloads import (  # noqa: F401  (re-exported for suite.py)
    bzip2,
    crafty,
    gap,
    gcc,
    gzip,
    mcf,
    parser,
    perlbmk,
    twolf,
    vortex,
    vpr,
)
from repro.workloads.builder import (
    AsmBuilder,
    check_scale,
    derive_seed,
    scaled,
    seed_ledger,
)
from repro.workloads.suite import (
    WORKLOAD_NAMES,
    PreparedWorkload,
    clear_cache,
    prepare_workload,
    workload_source,
    workload_trace_length,
)

__all__ = [
    "AsmBuilder",
    "derive_seed",
    "seed_ledger",
    "scaled",
    "check_scale",
    "WORKLOAD_NAMES",
    "PreparedWorkload",
    "prepare_workload",
    "workload_source",
    "workload_trace_length",
    "clear_cache",
]
