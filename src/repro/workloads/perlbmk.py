"""Synthetic ``perlbmk``: a bytecode-interpreter dispatch loop.

An indirect jump through a handler table dispatches a random opcode
stream, so the jump's target is unpredictable.  The immediate
postdominator of the dispatch jump is the loop bottom shared by all
handlers — an *other* spawn point that jumps over the unpredictable
indirect jump.  Several handlers contain their own hard hammocks.

Character reproduced: "other" spawns beat the remaining heuristics
(Figure 9), and removing hammocks costs ~21% (Figure 11).
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled

_HANDLER_COUNT = 12


def _emit_handler(builder, index):
    builder.label("op_{}".format(index))
    # A few instructions of handler work touching the VM state.
    builder.emit("addi r3, r3, {}".format(index + 1))
    builder.emit("xor  r4, r4, r3")
    builder.emit("slli r8, r3, {}".format(1 + index % 3))
    builder.emit("add  r4, r4, r8")
    if index % 3 == 0:
        # A data-dependent hammock inside the handler (hard branch on
        # the operand value).
        label = builder.fresh_label("pl_even")
        join = builder.fresh_label("pl_join")
        builder.emit("andi r5, r2, 2")
        builder.emit("beq  r5, r0, {}".format(label))
        builder.emit("add  r6, r6, r3")
        builder.emit("slli r5, r6, 1")
        builder.emit("xor  r6, r6, r5")
        builder.emit("j    {}".format(join))
        builder.label(label)
        builder.emit("sub  r6, r6, r3")
        builder.emit("srli r5, r6, 1")
        builder.emit("or   r6, r6, r5")
        builder.label(join)
    builder.emit("add  r7, r7, r6")
    builder.emit("j    dispatch_next")


def build(scale=1.0):
    """Generate the perlbmk-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("perlbmk", seed=0x9E7B)
    rng = builder.random
    stream_length = scaled(2600, scale, minimum=8)

    # Opcode stream with Markov locality: usually the opcode repeats
    # (a last-target predictor exploits this); the remaining dispatches
    # still mispredict their indirect target.
    stream = []
    opcode = 0
    for _ in range(stream_length):
        if rng.random() >= 0.65:
            opcode = rng.randrange(_HANDLER_COUNT)
        stream.append(opcode)
    builder.data_words("bytecode", stream)
    builder.data_words(
        "handlers", ["op_{}".format(index) for index in range(_HANDLER_COUNT)]
    )

    builder.label("main")
    builder.emit("la   r9, bytecode")
    builder.emit("la   r27, handlers")
    builder.emit("li   r10, {}".format(stream_length))

    builder.label("dispatch")
    builder.emit("lw   r2, 0(r9)")  # opcode
    builder.emit("slli r5, r2, 3")
    builder.emit("add  r5, r27, r5")
    builder.emit("lw   r5, 0(r5)")  # handler address
    builder.emit("jr   r5")  # unpredictable indirect jump

    for index in range(_HANDLER_COUNT):
        _emit_handler(builder, index)

    builder.label("dispatch_next")  # ipdom of the dispatch jump
    # A hard string-compare hammock in the interpreter's back end (tag
    # check on the produced value): its spawn point is distinct from
    # the dispatch reconvergence, so the hammock category carries its
    # own share of perlbmk's speedup.
    builder.emit("andi r8, r4, 1")
    builder.emit("bne  r8, r0, tag_slow")
    builder.label("tag_fast")
    builder.emit("add  r6, r6, r4")
    builder.emit("slli r8, r6, 2")
    builder.emit("xor  r6, r6, r8")
    builder.emit("or   r7, r7, r6")
    builder.emit("j    tag_done")
    builder.label("tag_slow")
    builder.emit("sub  r6, r6, r4")
    builder.emit("srli r8, r6, 2")
    builder.emit("or   r6, r6, r8")
    builder.emit("xor  r7, r7, r6")
    builder.label("tag_done")
    builder.emit("addi r9, r9, 8")
    builder.emit("addi r10, r10, -1")
    builder.emit("bne  r10, r0, dispatch")
    builder.emit("halt")
    return builder.source()
