"""The synthesizer's dial space.

A :class:`Dials` value pins one point in the structural space the
paper's results depend on: loop nesting depth, hammock density, call
fan-out, indirect-jump dispatch, branch predictability, program scale,
and whether hammock arms carry cross-task memory conflicts.  Every dial
is a small *level* index so the full factorial space stays enumerable
(and encodable in a scenario name) while each level maps onto concrete
generator parameters.
"""

import re

from repro.errors import ConfigurationError

#: Levels per dial, in canonical order.  The catalog enumerates the
#: full factorial product of these: 4*4*3*3*3*3*2 = 2592 scenarios.
LOOP_DEPTH_LEVELS = (0, 1, 2, 3)
HAMMOCK_LEVELS = (0, 1, 2, 3)
FANOUT_LEVELS = (0, 1, 2)
DISPATCH_LEVELS = (0, 1, 2)
PREDICTABILITY_LEVELS = (0, 1, 2)
SCALE_LEVELS = (0, 1, 2)
CONFLICT_LEVELS = (0, 1)

#: fanout level -> number of generated procedures (level 2 adds a
#: second call-tree layer: main calls two procedures which each call a
#: leaf).
_FANOUT_PROCEDURES = (0, 2, 4)

#: dispatch level -> ways of the indirect-jump dispatch table
#: (power-of-two so the case index is a cheap mask of a counter).
_DISPATCH_WAYS = (0, 4, 8)

#: predictability level -> taken-probability of generated branch-bit
#: arrays (biased / mixed / balanced).
_TAKEN_PROBABILITIES = (0.97, 0.8, 0.5)

#: scale level -> innermost-loop iteration base (outer loop levels stay
#: at 2-3 iterations so deep nests do not explode the trace).
_INNER_ITERATION_BASES = (3, 5, 8)

_CODE_PATTERN = re.compile(
    r"^L(?P<l>\d)H(?P<h>\d)C(?P<c>\d)I(?P<i>\d)P(?P<p>\d)S(?P<s>\d)V(?P<v>\d)$"
)


class Dials:
    """One point in the synthesizer's structural dial space."""

    __slots__ = (
        "loop_depth",
        "hammocks",
        "fanout_level",
        "dispatch_level",
        "predictability",
        "scale_level",
        "conflict",
    )

    def __init__(
        self,
        loop_depth=1,
        hammocks=1,
        fanout_level=0,
        dispatch_level=0,
        predictability=0,
        scale_level=1,
        conflict=0,
    ):
        settings = (
            ("loop_depth", loop_depth, LOOP_DEPTH_LEVELS),
            ("hammocks", hammocks, HAMMOCK_LEVELS),
            ("fanout_level", fanout_level, FANOUT_LEVELS),
            ("dispatch_level", dispatch_level, DISPATCH_LEVELS),
            ("predictability", predictability, PREDICTABILITY_LEVELS),
            ("scale_level", scale_level, SCALE_LEVELS),
            ("conflict", conflict, CONFLICT_LEVELS),
        )
        for attribute, value, levels in settings:
            if value not in levels:
                raise ConfigurationError(
                    "synth dial {} must be one of {}, got {!r}".format(
                        attribute, levels, value
                    )
                )
            object.__setattr__(self, attribute, value)

    def __setattr__(self, name, value):
        raise AttributeError("Dials is immutable")

    # -- encoding ----------------------------------------------------------

    def code(self):
        """The canonical scenario code, e.g. ``L2H1C0I1P2S0V1``."""
        return "L{}H{}C{}I{}P{}S{}V{}".format(
            self.loop_depth,
            self.hammocks,
            self.fanout_level,
            self.dispatch_level,
            self.predictability,
            self.scale_level,
            self.conflict,
        )

    @classmethod
    def from_code(cls, code):
        """Parse a scenario code produced by :meth:`code`."""
        match = _CODE_PATTERN.match(code)
        if match is None:
            raise ConfigurationError(
                "malformed synth scenario code {!r} (expected e.g. "
                "L2H1C0I1P2S0V1)".format(code)
            )
        return cls(
            loop_depth=int(match.group("l")),
            hammocks=int(match.group("h")),
            fanout_level=int(match.group("c")),
            dispatch_level=int(match.group("i")),
            predictability=int(match.group("p")),
            scale_level=int(match.group("s")),
            conflict=int(match.group("v")),
        )

    # -- derived generator parameters --------------------------------------

    @property
    def procedures(self):
        """Number of generated procedures."""
        return _FANOUT_PROCEDURES[self.fanout_level]

    @property
    def dispatch_ways(self):
        """Ways of the indirect-jump dispatch table (0 = none)."""
        return _DISPATCH_WAYS[self.dispatch_level]

    @property
    def taken_probability(self):
        """Taken-probability for generated branch-bit arrays."""
        return _TAKEN_PROBABILITIES[self.predictability]

    @property
    def inner_iteration_base(self):
        """Unscaled iteration count of the innermost loop level."""
        return _INNER_ITERATION_BASES[self.scale_level]

    # -- introspection ------------------------------------------------------

    @classmethod
    def axes(cls):
        """Ordered (dial name, levels) pairs spanning the full space."""
        return (
            ("loop_depth", LOOP_DEPTH_LEVELS),
            ("hammocks", HAMMOCK_LEVELS),
            ("fanout_level", FANOUT_LEVELS),
            ("dispatch_level", DISPATCH_LEVELS),
            ("predictability", PREDICTABILITY_LEVELS),
            ("scale_level", SCALE_LEVELS),
            ("conflict", CONFLICT_LEVELS),
        )

    def level_of(self, axis):
        """The level of ``axis`` (one of the :meth:`axes` names)."""
        return getattr(self, axis)

    def as_dict(self):
        return {name: getattr(self, name) for name, _ in self.axes()}

    def __eq__(self, other):
        if not isinstance(other, Dials):
            return NotImplemented
        return self.code() == other.code()

    def __hash__(self):
        return hash(self.code())

    def __repr__(self):
        return "Dials({})".format(
            ", ".join(
                "{}={}".format(name, getattr(self, name))
                for name, _ in self.axes()
            )
        )
