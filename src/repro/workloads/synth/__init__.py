"""Seeded workload synthesizer with ground-truth structural oracles.

See :mod:`repro.workloads.synth.generator` for the program generator,
:mod:`repro.workloads.synth.oracle` for oracle verification, and
:mod:`repro.workloads.synth.catalog` for the named 1000+-scenario
catalog and its stratified sampling helpers.
"""

from repro.workloads.synth.catalog import (
    CATALOG_PREFIX,
    CATALOG_VERSION,
    STRATUM_AXES,
    build_scenario,
    catalog_digest,
    catalog_names,
    is_catalog_name,
    scenario_dials,
    scenario_oracle,
    scenario_seed,
    scenario_source,
    stratified_sample,
    stratum_key,
)
from repro.workloads.synth.dials import Dials
from repro.workloads.synth.generator import SynthProgram, generate
from repro.workloads.synth.oracle import (
    BranchRecord,
    LoopRecord,
    ProcedureOracle,
    StructuralOracle,
    SwitchRecord,
    verify_dynamics,
    verify_oracle,
)

__all__ = [
    "CATALOG_PREFIX",
    "CATALOG_VERSION",
    "STRATUM_AXES",
    "BranchRecord",
    "Dials",
    "LoopRecord",
    "ProcedureOracle",
    "StructuralOracle",
    "SwitchRecord",
    "SynthProgram",
    "build_scenario",
    "catalog_digest",
    "catalog_names",
    "generate",
    "is_catalog_name",
    "scenario_dials",
    "scenario_oracle",
    "scenario_seed",
    "scenario_source",
    "stratified_sample",
    "stratum_key",
    "verify_dynamics",
    "verify_oracle",
]
