"""The seeded scenario catalog.

Names the full factorial dial space — 2592 scenarios — with
deterministic per-scenario seeds and stratified sampling helpers.
Catalog names look like ``synth/L2H1C0I1P2S0V1``: the ``synth/``
prefix routes them through :func:`repro.workloads.workload_source`
(so the entire experiment stack — analysis cache, scheduler, warm
worker pool, result cache — runs them exactly like the hand-built
suite), and the code after the prefix pins the scenario's
:class:`~repro.workloads.synth.dials.Dials`.

Seeds derive from the catalog version and scenario name, never from
wall clock; "rotating" samples derive their rotation token from the
catalog's own content digest, so the sampled subset changes when (and
only when) the catalog changes.
"""

import functools
import hashlib
import itertools
import random

from repro.errors import ConfigurationError
from repro.workloads.builder import derive_seed
from repro.workloads.synth.dials import Dials
from repro.workloads.synth.generator import generate

#: Every catalog name starts with this; the suite layer routes such
#: names to :func:`scenario_source`.
CATALOG_PREFIX = "synth/"

#: Bumping this reseeds every scenario (new random data everywhere)
#: without renaming anything.
CATALOG_VERSION = "v1"

#: Dial axes used as sampling strata: coarse structure (nesting,
#: hammocks, dispatch), so a stratified sample spans the shapes that
#: matter most to control-equivalent spawning.
STRATUM_AXES = ("loop_depth", "hammocks", "dispatch_level")


def is_catalog_name(name):
    """Whether ``name`` is (shaped like) a synth catalog name."""
    return name.startswith(CATALOG_PREFIX)


@functools.lru_cache(maxsize=1)
def catalog_names():
    """All scenario names, in canonical factorial order (2592 of them)."""
    axes = [levels for _, levels in Dials.axes()]
    names = []
    for combo in itertools.product(*axes):
        dials = Dials(*combo)
        names.append(CATALOG_PREFIX + dials.code())
    return tuple(names)


def scenario_dials(name):
    """The :class:`Dials` encoded in a catalog name."""
    if not is_catalog_name(name):
        raise ConfigurationError(
            "not a synth catalog name: {!r} (expected prefix {!r})".format(
                name, CATALOG_PREFIX
            )
        )
    return Dials.from_code(name[len(CATALOG_PREFIX) :])


def scenario_seed(name):
    """The deterministic seed of a catalog scenario."""
    scenario_dials(name)  # validate
    return derive_seed(name, CATALOG_VERSION)


@functools.lru_cache(maxsize=4096)
def build_scenario(name, scale=1.0):
    """Generate (and memoize) a catalog scenario's program + oracle."""
    return generate(
        name, scenario_dials(name), seed=scenario_seed(name), scale=scale
    )


def scenario_source(name, scale=1.0):
    """Assembly source of a catalog scenario."""
    return build_scenario(name, scale).source


def scenario_oracle(name, scale=1.0):
    """Structural oracle of a catalog scenario."""
    return build_scenario(name, scale).oracle


@functools.lru_cache(maxsize=1)
def catalog_digest():
    """Content digest of the catalog identity (names + version).

    Used as the default rotation token for sampled subsets: the sample
    rotates when the catalog itself changes, never with wall clock.
    """
    hasher = hashlib.sha256(CATALOG_VERSION.encode("utf-8"))
    for name in catalog_names():
        hasher.update(name.encode("utf-8"))
    return hasher.hexdigest()


def stratum_key(name):
    """The :data:`STRATUM_AXES` level tuple of one catalog scenario.

    The unit of stratified sampling and of the estimate-first sweep's
    per-stratum verdict certificates.
    """
    dials = scenario_dials(name)
    return tuple(dials.level_of(axis) for axis in STRATUM_AXES)


_stratum_key = stratum_key


def stratified_sample(count, token=None, names=None):
    """A deterministic, stratified sample of ``count`` catalog names.

    Scenarios are grouped into strata over :data:`STRATUM_AXES`; each
    stratum is shuffled by a seed derived from ``token`` (default: the
    catalog digest) and the stratum key, then picks are taken
    round-robin across strata so every structural shape is represented
    before any is repeated.  Same token, same sample — forever.
    """
    if names is None:
        names = catalog_names()
    if token is None:
        token = catalog_digest()[:16]
    strata = {}
    for name in names:
        strata.setdefault(_stratum_key(name), []).append(name)
    shuffled = []
    for key in sorted(strata):
        bucket = list(strata[key])
        rng = random.Random(derive_seed("sample", token, key))
        rng.shuffle(bucket)
        shuffled.append(bucket)
    sample = []
    for rank in range(max(len(bucket) for bucket in shuffled)):
        for bucket in shuffled:
            if rank < len(bucket):
                sample.append(bucket[rank])
                if len(sample) == count:
                    return sample
    return sample
