"""The seeded workload synthesizer.

Generates structurally parameterized ``repro.isa`` programs through
:class:`~repro.workloads.builder.AsmBuilder`, from *structured regions
only* — counted loops, two-arm hammocks, switch dispatch loops, and a
small call tree — so the generator knows, at emission time, the exact
ipdom of every branch, the reconvergence point of every indirect jump,
and the full loop forest.  That knowledge is recorded as a
:class:`~repro.workloads.synth.oracle.StructuralOracle` alongside the
assembly text, letting the repository's analyses be checked against
constructed ground truth.

Register allocation of generated code (disjoint from counters so calls
and dispatch never corrupt control flow):

* ``r1``  address scratch, ``r2`` loaded branch bit,
* ``r3``-``r5`` accumulators, ``r6`` conflict store value,
* ``r7``  conflict join load, ``r8`` conflict slot base,
* ``r10``-``r12`` main loop counters (one per nesting level),
* ``r13`` index temp, ``r14`` dispatch target temp,
* ``r15`` procedure loop counter, ``r27`` dispatch loop counter,
* ``r16``-``r22`` builder filler, ``r24``/``r25`` stable filler sources.

Switch dispatch is always wrapped in its own counted loop iterating at
least twice per table way with the case index taken from the counter:
the CFG layer resolves ``jr`` successors from the *observed* jump
profile, so every case must execute for the recorded join to be the
true ipdom of the dispatch block.
"""

from repro.workloads.builder import AsmBuilder, check_scale, derive_seed, scaled
from repro.workloads.synth.dials import Dials
from repro.workloads.synth.oracle import (
    BranchRecord,
    LoopRecord,
    ProcedureOracle,
    StructuralOracle,
    SwitchRecord,
)

_MAIN_COUNTERS = (10, 11, 12)
_PROC_COUNTER = 15
_DISPATCH_COUNTER = 27
#: Fixed iterations of non-innermost main loop levels; kept tiny so
#: deep nests scale the trace multiplicatively but boundedly.
_OUTER_ITERATIONS = (2, 3)


class SynthProgram:
    """One synthesized program: source text plus its structural oracle."""

    __slots__ = ("name", "dials", "seed", "scale", "source", "oracle")

    def __init__(self, name, dials, seed, scale, source, oracle):
        self.name = name
        self.dials = dials
        self.seed = seed
        self.scale = scale
        self.source = source
        self.oracle = oracle

    def __repr__(self):
        return "SynthProgram({!r}, seed={:#x})".format(self.name, self.seed)


class _Context:
    """Where emission currently stands: enclosing counter register,
    dynamic trip count of this code point, and enclosing loop header."""

    __slots__ = ("counter", "trips", "loop_header", "depth")

    def __init__(self, counter, trips, loop_header, depth):
        self.counter = counter
        self.trips = trips
        self.loop_header = loop_header
        self.depth = depth


class _Generator:
    def __init__(self, name, dials, seed, scale):
        self.dials = dials
        self.scale = check_scale(scale)
        self.builder = AsmBuilder(name, seed=seed)
        self.rng = self.builder.random
        self.oracle = StructuralOracle(name, dials, seed)
        self.proc = None
        self._bits = []
        self._tables = []
        self._slots = []
        self._conflict_slot = None

    # -- data helpers -------------------------------------------------------

    def _new_bits(self):
        label = self.builder.fresh_label("BITS")
        words = self.builder.random_bits(64, self.dials.taken_probability)
        self._bits.append((label, words))
        return label

    def _new_slot(self):
        label = self.builder.fresh_label("SLOT")
        self._slots.append(label)
        return label

    # -- filler -------------------------------------------------------------

    def _emit_filler(self, budget):
        builder = self.builder
        builder.emit_independent_alu(self.rng.randint(1, budget))
        if self.rng.random() < 0.4:
            builder.emit_serial_chain(self.rng.randint(1, 3))
        accumulator = self.rng.choice((3, 4, 5))
        builder.emit("add r{0}, r{0}, r24".format(accumulator))

    # -- hammocks -----------------------------------------------------------

    def _emit_bit_load(self, context):
        """Load this site's branch bit into r2 (counter-indexed)."""
        builder = self.builder
        bits = self._new_bits()
        if context.counter is not None:
            builder.emit("andi r13, r{}, 63".format(context.counter))
            builder.emit("slli r13, r13, 3")
            builder.emit("la r1, {}".format(bits))
            builder.emit("add r1, r1, r13")
        else:
            builder.emit("la r1, {}".format(bits))
        builder.emit("lw r2, 0(r1)")

    def _emit_arm(self, conflict):
        builder = self.builder
        if conflict:
            builder.emit_serial_chain(self.rng.randint(1, 3), register=6)
            builder.emit("sw r6, 0(r8)")
        else:
            self._emit_filler(3)

    def _emit_hammock(self, context, nested_allowed):
        """A two-arm (or if-then) hammock; join == ipdom by construction."""
        builder = self.builder
        conflict = self.dials.conflict == 1
        marker = builder.fresh_label("BR")
        join = builder.fresh_label("JOIN")
        has_else = conflict or self.rng.random() < 0.7
        self._emit_bit_load(context)
        builder.label(marker)
        if has_else:
            else_label = builder.fresh_label("ELSE")
            builder.emit("bne r2, r0, {}".format(else_label))
        else:
            builder.emit("bne r2, r0, {}".format(join))
        if nested_allowed and self.rng.random() < 0.6:
            self._emit_hammock(context, nested_allowed=False)
        self._emit_arm(conflict)
        if has_else:
            builder.emit("j {}".format(join))
            builder.label(else_label)
            self._emit_arm(conflict)
        builder.label(join)
        if conflict:
            builder.emit("lw r7, 0(r8)")
            builder.emit("add r3, r3, r7")
        self.proc.branches.append(BranchRecord(marker, join, "hammock"))

    # -- loops --------------------------------------------------------------

    def _emit_loop(self, context, iterations, counter, prefix, body):
        """A counted loop; the header exit test's ipdom is the exit block."""
        builder = self.builder
        head = builder.fresh_label(prefix)
        exit_label = builder.fresh_label(prefix + "X")
        builder.emit("li r{}, {}".format(counter, iterations))
        builder.label(head)
        builder.emit("blez r{}, {}".format(counter, exit_label))
        self.proc.loops.append(
            LoopRecord(head, context.loop_header, iterations, context.trips)
        )
        self.proc.branches.append(BranchRecord(head, exit_label, "loop"))
        inner = _Context(
            counter, context.trips * iterations, head, context.depth + 1
        )
        body(inner)
        builder.emit("addi r{0}, r{0}, -1".format(counter))
        builder.emit("j {}".format(head))
        builder.label(exit_label)

    # -- indirect dispatch ---------------------------------------------------

    def _emit_dispatch(self, context):
        """A ``jr``-table dispatch wrapped in a loop covering every case."""
        builder = self.builder
        ways = self.dials.dispatch_ways
        iterations = 2 * ways
        table = builder.fresh_label("DTAB")
        marker = builder.fresh_label("DBR")
        join = builder.fresh_label("DJOIN")
        cases = [builder.fresh_label("DCASE") for _ in range(ways)]
        self._tables.append((table, cases))

        def body(inner):
            builder.emit("andi r13, r{}, {}".format(inner.counter, ways - 1))
            builder.emit("slli r13, r13, 3")
            builder.emit("la r14, {}".format(table))
            builder.emit("add r14, r14, r13")
            builder.emit("lw r14, 0(r14)")
            builder.label(marker)
            builder.emit("jr r14")
            self.proc.switches.append(SwitchRecord(marker, join, ways))
            for case in cases:
                builder.label(case)
                builder.emit_independent_alu(self.rng.randint(1, 2))
                builder.emit("add r5, r5, r25")
                builder.emit("j {}".format(join))
            builder.label(join)

        self._emit_loop(context, iterations, _DISPATCH_COUNTER, "DSP", body)

    # -- program regions -----------------------------------------------------

    def _emit_innermost(self, context):
        for index in range(self.dials.hammocks):
            nested = self.dials.hammocks >= 2 and index == 0
            self._emit_hammock(context, nested_allowed=nested)
            if self.rng.random() < 0.5:
                self._emit_filler(3)
        if self.dials.hammocks == 0:
            self._emit_filler(4)

    def _emit_calls_and_dispatch(self, context, top_procs):
        builder = self.builder
        for label in top_procs:
            builder.emit("jal {}".format(label))
        if self.dials.dispatch_ways:
            self._emit_dispatch(context)

    def _emit_nest(self, context, level, top_procs):
        innermost = level == self.dials.loop_depth - 1
        if innermost:
            iterations = scaled(
                self.dials.inner_iteration_base, self.scale, minimum=2
            )
        else:
            iterations = self.rng.choice(_OUTER_ITERATIONS)

        def body(inner):
            if level == 0:
                self._emit_calls_and_dispatch(inner, top_procs)
            if innermost:
                self._emit_innermost(inner)
            else:
                self._emit_filler(2)
                self._emit_nest(inner, level + 1, top_procs)

        self._emit_loop(
            context, iterations, _MAIN_COUNTERS[level], "L{}".format(level), body
        )

    def _emit_procedure(self, label, children, trips):
        builder = self.builder
        self.proc = ProcedureOracle(label, label)
        self.oracle.procedures.append(self.proc)
        builder.label(label)
        slot = None
        if children:
            slot = self._new_slot()
            builder.emit("la r1, {}".format(slot))
            builder.emit("sw ra, 0(r1)")
        context = _Context(None, trips, None, 0)
        builder.emit_independent_alu(self.rng.randint(2, 4))
        if self.rng.random() < 0.6:

            def body(inner):
                self._emit_filler(2)
                if self.dials.hammocks:
                    self._emit_hammock(inner, nested_allowed=False)

            self._emit_loop(
                context,
                self.rng.choice(_OUTER_ITERATIONS),
                _PROC_COUNTER,
                "PL",
                body,
            )
        elif self.dials.hammocks:
            self._emit_hammock(context, nested_allowed=False)
        for child in children:
            builder.emit("jal {}".format(child))
        if children:
            builder.emit("la r1, {}".format(slot))
            builder.emit("lw ra, 0(r1)")
        builder.emit("jr ra")

    # -- driver --------------------------------------------------------------

    def generate(self):
        builder = self.builder
        dials = self.dials
        procedures = dials.procedures
        top_procs = ["PROC_{}".format(index) for index in range(min(procedures, 2))]
        leaf_procs = ["PROC_{}".format(index) for index in range(2, procedures)]

        self.proc = ProcedureOracle("main", "main")
        self.oracle.procedures.append(self.proc)
        builder.label("main")
        builder.emit("li r24, 7")
        builder.emit("li r25, 13")
        if dials.conflict:
            self._conflict_slot = self._new_slot()
            builder.emit("la r8, {}".format(self._conflict_slot))

        context = _Context(None, 1, None, 0)
        if dials.loop_depth == 0:
            self._emit_calls_and_dispatch(context, top_procs)
            self._emit_innermost(context)
            call_trips = 1
        else:
            self._emit_nest(context, 0, top_procs)
            # level-0 body trips: the calls execute once per outermost
            # iteration, recorded when the loop above was planned.
            call_trips = self.oracle.procedures[0].loops[0].iterations
        builder.emit("halt")

        for index, label in enumerate(top_procs):
            child = [leaf_procs[index]] if index < len(leaf_procs) else []
            self._emit_procedure(label, child, call_trips)
            for leaf in child:
                self._emit_procedure(leaf, [], call_trips)

        for label, words in self._bits:
            builder.data_words(label, words)
        for label in self._slots:
            builder.data_words(label, [0])
        for label, cases in self._tables:
            builder.data_words(label, cases)

        return SynthProgram(
            self.oracle.name,
            dials,
            self.builder.seed,
            self.scale,
            builder.source(),
            self.oracle,
        )


def generate(name, dials, seed=None, scale=1.0):
    """Synthesize the program for ``name`` at one dial-space point.

    ``seed`` defaults to :func:`~repro.workloads.builder.derive_seed`
    of the name, so equal names always produce byte-identical sources.
    Returns a :class:`SynthProgram`.
    """
    if not isinstance(dials, Dials):
        raise TypeError("dials must be a Dials instance")
    if seed is None:
        seed = derive_seed(name)
    return _Generator(name, dials, seed, scale).generate()
