"""Ground-truth structural oracles for synthesized programs.

The generator emits programs from structured regions only (counted
loops, hammocks, switch dispatch loops, call trees), so it *knows* the
ipdom of every branch, the reconvergence point of every indirect jump,
and the full loop-nesting forest at emission time.  It records that
knowledge here as label names; after assembly the labels resolve to
PCs, and :func:`verify_oracle` checks the repository's own analyses —
``analysis/dominance.py`` and ``analysis/loops.py`` — against the
recorded ground truth instead of against themselves.

:func:`verify_dynamics` additionally checks the committed trace against
the generator's planned trip counts, pinning the functional simulator's
control-flow behaviour to the construction plan.
"""

from collections import Counter

from repro.analysis.dominance import (
    compute_postdominator_tree,
    immediate_postdominator_block,
)
from repro.analysis.loops import find_natural_loops
from repro.cfg.builder import _is_switch_jump


class BranchRecord:
    """One conditional branch and its constructed reconvergence point.

    ``marker_label`` is placed on the branch instruction itself;
    ``join_label`` on the first instruction of the reconvergence block
    (the branch's immediate postdominator by construction).  ``kind``
    is ``"hammock"`` or ``"loop"`` (a loop-header exit branch whose
    ipdom is the loop-exit block).
    """

    __slots__ = ("marker_label", "join_label", "kind")

    def __init__(self, marker_label, join_label, kind):
        self.marker_label = marker_label
        self.join_label = join_label
        self.kind = kind

    def __repr__(self):
        return "BranchRecord({}, join={}, kind={})".format(
            self.marker_label, self.join_label, self.kind
        )


class SwitchRecord:
    """One indirect-jump dispatch and its constructed join."""

    __slots__ = ("marker_label", "join_label", "ways")

    def __init__(self, marker_label, join_label, ways):
        self.marker_label = marker_label
        self.join_label = join_label
        self.ways = ways

    def __repr__(self):
        return "SwitchRecord({}, join={}, ways={})".format(
            self.marker_label, self.join_label, self.ways
        )


class LoopRecord:
    """One counted loop: header label, parent header, planned trips.

    ``entries`` is the number of times the loop is entered dynamically
    (the product of enclosing trip counts at the point of the ``li``
    initializing the counter); ``iterations`` the per-entry trip count.
    The header branch therefore executes ``entries * (iterations + 1)``
    times — once per iteration plus the failing exit test.
    """

    __slots__ = ("header_label", "parent_label", "iterations", "entries")

    def __init__(self, header_label, parent_label, iterations, entries):
        self.header_label = header_label
        self.parent_label = parent_label
        self.iterations = iterations
        self.entries = entries

    def __repr__(self):
        return "LoopRecord({}, parent={}, iterations={}, entries={})".format(
            self.header_label,
            self.parent_label,
            self.iterations,
            self.entries,
        )


class ProcedureOracle:
    """Recorded structure of one generated procedure."""

    __slots__ = ("name", "entry_label", "branches", "switches", "loops")

    def __init__(self, name, entry_label):
        self.name = name
        self.entry_label = entry_label
        self.branches = []
        self.switches = []
        self.loops = []


class StructuralOracle:
    """The complete recorded structure of one synthesized program."""

    __slots__ = ("name", "dials", "seed", "procedures")

    def __init__(self, name, dials, seed):
        self.name = name
        self.dials = dials
        self.seed = seed
        #: :class:`ProcedureOracle` per generated procedure, main first.
        self.procedures = []

    def branch_count(self):
        return sum(len(proc.branches) for proc in self.procedures)

    def loop_count(self):
        return sum(len(proc.loops) for proc in self.procedures)


def _pc_of(program, label, mismatches):
    try:
        return program.address_of(label)
    except Exception:
        mismatches.append("label {!r} missing from program".format(label))
        return None


def _verify_procedure_entry(oracle_proc, program, cfgs, mismatches):
    entry_pc = _pc_of(program, oracle_proc.entry_label, mismatches)
    if entry_pc is None:
        return None
    try:
        return cfgs.cfg_of_entry(entry_pc)
    except KeyError:
        mismatches.append(
            "procedure {} at {:#x} has no CFG".format(
                oracle_proc.entry_label, entry_pc
            )
        )
        return None


def _verify_branches(oracle_proc, program, cfg, postdom, mismatches):
    recorded_marker_pcs = set()
    for record in oracle_proc.branches:
        marker_pc = _pc_of(program, record.marker_label, mismatches)
        join_pc = _pc_of(program, record.join_label, mismatches)
        if marker_pc is None or join_pc is None:
            continue
        recorded_marker_pcs.add(marker_pc)
        branch_block = cfg.block_containing_pc(marker_pc)
        join_block = cfg.block_starting_at(join_pc)
        if branch_block is None or join_block is None:
            mismatches.append(
                "{}: branch {} or join {} not in CFG".format(
                    oracle_proc.entry_label,
                    record.marker_label,
                    record.join_label,
                )
            )
            continue
        if branch_block.end_pc != marker_pc:
            mismatches.append(
                "{}: marker {} at {:#x} is not a block terminator".format(
                    oracle_proc.entry_label, record.marker_label, marker_pc
                )
            )
            continue
        computed = immediate_postdominator_block(
            cfg, postdom, branch_block.index
        )
        if computed != join_block.index:
            mismatches.append(
                "{}: branch {} ({}) ipdom block {} != recorded join {} "
                "(block {})".format(
                    oracle_proc.entry_label,
                    record.marker_label,
                    record.kind,
                    computed,
                    record.join_label,
                    join_block.index,
                )
            )
    return recorded_marker_pcs


def _verify_switches(oracle_proc, program, cfg, postdom, mismatches):
    recorded_switch_pcs = set()
    for record in oracle_proc.switches:
        marker_pc = _pc_of(program, record.marker_label, mismatches)
        join_pc = _pc_of(program, record.join_label, mismatches)
        if marker_pc is None or join_pc is None:
            continue
        recorded_switch_pcs.add(marker_pc)
        switch_block = cfg.block_containing_pc(marker_pc)
        join_block = cfg.block_starting_at(join_pc)
        if switch_block is None or join_block is None:
            mismatches.append(
                "{}: switch {} or join {} not in CFG".format(
                    oracle_proc.entry_label,
                    record.marker_label,
                    record.join_label,
                )
            )
            continue
        if len(switch_block.successors) != record.ways:
            mismatches.append(
                "{}: switch {} observed {} targets, expected {} (every "
                "case must execute for the profile-driven CFG)".format(
                    oracle_proc.entry_label,
                    record.marker_label,
                    len(switch_block.successors),
                    record.ways,
                )
            )
        computed = immediate_postdominator_block(
            cfg, postdom, switch_block.index
        )
        if computed != join_block.index:
            mismatches.append(
                "{}: switch {} ipdom block {} != recorded join {} "
                "(block {})".format(
                    oracle_proc.entry_label,
                    record.marker_label,
                    computed,
                    record.join_label,
                    join_block.index,
                )
            )
    return recorded_switch_pcs


def _verify_loops(oracle_proc, program, cfg, mismatches):
    recorded = set()
    for record in oracle_proc.loops:
        header_pc = _pc_of(program, record.header_label, mismatches)
        if header_pc is None:
            continue
        parent_pc = None
        if record.parent_label is not None:
            parent_pc = _pc_of(program, record.parent_label, mismatches)
        recorded.add((header_pc, parent_pc))
    forest = find_natural_loops(cfg)
    computed = set()
    for loop in forest:
        header_pc = cfg.block(loop.header).start_pc
        parent_pc = None
        if loop.parent is not None:
            parent_pc = cfg.block(loop.parent.header).start_pc
        computed.add((header_pc, parent_pc))
    if recorded != computed:
        mismatches.append(
            "{}: loop forest mismatch: recorded {} != computed {}".format(
                oracle_proc.entry_label,
                sorted(recorded),
                sorted(computed),
            )
        )


def _verify_totality(
    oracle_proc, cfg, recorded_marker_pcs, recorded_switch_pcs, mismatches
):
    """Every control decision in the CFG must have been recorded."""
    for block in cfg.blocks:
        terminator = block.terminator
        if block.ends_in_conditional_branch():
            if terminator.pc not in recorded_marker_pcs:
                mismatches.append(
                    "{}: unrecorded conditional branch at {:#x}".format(
                        oracle_proc.entry_label, terminator.pc
                    )
                )
        elif _is_switch_jump(terminator):
            if terminator.pc not in recorded_switch_pcs:
                mismatches.append(
                    "{}: unrecorded switch jump at {:#x}".format(
                        oracle_proc.entry_label, terminator.pc
                    )
                )


def verify_oracle(oracle, analyses):
    """Check computed analyses against the recorded ground truth.

    ``analyses`` is a :class:`~repro.analysis.pipeline.ProgramAnalyses`
    for the oracle's program.  Returns a list of human-readable
    mismatch strings; an empty list means the dominance analysis, the
    loop forest, and the profile-driven CFG all agree exactly with the
    structure the generator constructed.
    """
    mismatches = []
    program = analyses.program
    cfgs = analyses.cfgs
    if len(cfgs) != len(oracle.procedures):
        mismatches.append(
            "procedure count: recorded {} != discovered {}".format(
                len(oracle.procedures), len(cfgs)
            )
        )
    for oracle_proc in oracle.procedures:
        cfg = _verify_procedure_entry(oracle_proc, program, cfgs, mismatches)
        if cfg is None:
            continue
        postdom = compute_postdominator_tree(cfg)
        marker_pcs = _verify_branches(
            oracle_proc, program, cfg, postdom, mismatches
        )
        switch_pcs = _verify_switches(
            oracle_proc, program, cfg, postdom, mismatches
        )
        _verify_loops(oracle_proc, program, cfg, mismatches)
        _verify_totality(oracle_proc, cfg, marker_pcs, switch_pcs, mismatches)
    return mismatches


def verify_dynamics(oracle, program, trace):
    """Check the committed trace against the generator's trip plan.

    Every recorded loop header branch must execute exactly
    ``entries * (iterations + 1)`` times, and the program must halt
    within the trace.  Returns a list of mismatch strings.
    """
    mismatches = []
    if not trace.halted:
        mismatches.append("trace did not halt within the instruction budget")
    executions = Counter(record.inst.pc for record in trace.records)
    for oracle_proc in oracle.procedures:
        for record in oracle_proc.loops:
            header_pc = _pc_of(program, record.header_label, mismatches)
            if header_pc is None:
                continue
            expected = record.entries * (record.iterations + 1)
            actual = executions.get(header_pc, 0)
            if actual != expected:
                mismatches.append(
                    "{}: loop {} header executed {} times, planned "
                    "{}".format(
                        oracle_proc.entry_label,
                        record.header_label,
                        actual,
                        expected,
                    )
                )
    return mismatches
