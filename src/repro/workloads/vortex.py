"""Synthetic ``vortex``: call-heavy object-database transactions.

A transaction loop calls a rotation of many medium-sized procedures
whose combined text footprint exceeds the 8KB L1 I-cache, so the front
end stalls on instruction fetch as the working set rotates.  Branches
are highly predictable; the win comes from procedure fall-through
spawns that fetch the post-call (and next-call) code early, overlapping
instruction-cache misses with execution — the paper's vortex behaviour
(procFT is essential; Figure 11 shows a 56% loss without it).
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled

_PROCEDURE_COUNT = 12
_BODY_BLOCKS = 11
_BLOCK_INSTRUCTIONS = 16


def _emit_procedure(builder, index):
    """One straight-line procedure with a few predictable hammocks.

    The body is independent ALU work (the backend drains it at full
    width), so the baseline is fetch-bound: the performance limiter is
    the L1 I-cache miss stream as the procedure working set rotates.
    """
    builder.label("proc_{}".format(index))
    builder.emit("la   r16, arena_{}".format(index))
    for block in range(_BODY_BLOCKS):
        builder.emit_independent_alu(
            _BLOCK_INSTRUCTIONS, registers=(17, 18, 19, 20, 21)
        )
        builder.emit("lw   r17, {}(r16)".format(8 * block))
        if block % 4 == 1:
            # Predictable if-then (almost never taken).
            skip = builder.fresh_label("vx_skip")
            builder.emit("bgez r17, {}".format(skip))
            builder.emit("sub  r17, r0, r17")
            builder.label(skip)
    builder.emit("add  r1, r1, r17")
    builder.emit("jr   ra")


def build(scale=1.0):
    """Generate the vortex-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("vortex", seed=0x40887E8)
    # Each transaction runs all procedures (~3000 instructions).
    transactions = scaled(12, scale, minimum=2)

    builder.label("main")
    builder.emit("li   r9, {}".format(transactions))
    builder.label("txn_loop")
    for index in range(_PROCEDURE_COUNT):
        builder.emit("jal  proc_{}".format(index))
        # Independent post-call work the spawned task can run early.
        builder.emit_independent_alu(4, registers=(23, 24, 25))
    builder.emit("addi r9, r9, -1")
    builder.emit("bne  r9, r0, txn_loop")
    builder.emit("halt")

    for index in range(_PROCEDURE_COUNT):
        _emit_procedure(builder, index)

    for index in range(_PROCEDURE_COUNT):
        builder.data_words(
            "arena_{}".format(index),
            [builder.random.randrange(1, 1 << 20) for _ in range(_BODY_BLOCKS)],
        )
    return builder.source()
