"""Synthetic ``gzip``: predictable compression-style loops.

A deflate-like kernel: a hash-match loop whose branches are highly
biased (predictable), long serial dependence chains through the window
state, and loop-carried memory dependences (the window is written and
re-read in nearby iterations).  Little for any spawn policy to exploit:
speedups are small, and loop-iteration spawns can lose slightly by
creating inter-task dependences — the paper's gzip behaviour.
"""

from repro.workloads.builder import AsmBuilder, check_scale, scaled


def build(scale=1.0):
    """Generate the gzip-like assembly source."""
    check_scale(scale)
    builder = AsmBuilder("gzip", seed=0x6219)
    rng = builder.random
    iterations = scaled(2400, scale, minimum=8)

    # Input bytes: mostly-compressible stream (biased values).
    values = [rng.randrange(0, 255) for _ in range(512)]
    builder.data_words("input", values)
    builder.data_space("window", 8 * 1024)

    builder.label("main")
    builder.emit("la   r9, input")
    builder.emit("la   r26, window")
    builder.emit("li   r10, {}".format(iterations))
    builder.emit("li   r3, 5381")  # hash state

    builder.label("deflate")
    builder.emit("andi r11, r10, 511")
    builder.emit("slli r12, r11, 3")
    builder.emit("add  r12, r9, r12")
    builder.emit("lw   r2, 0(r12)")  # next input byte
    # Serial hash chain: h = h*33 ^ c (mul feeds the next steps).
    builder.emit("slli r4, r3, 5")
    builder.emit("add  r3, r4, r3")
    builder.emit("xor  r3, r3, r2")
    builder.emit("andi r5, r3, 63")
    builder.emit("slli r5, r5, 3")
    builder.emit("add  r5, r26, r5")
    builder.emit("lw   r6, 0(r5)")  # window[h]: loop-carried via stores
    builder.emit("sw   r3, 0(r5)")  # update the window
    # Highly-biased match test (almost never equal).
    builder.emit("beq  r6, r3, rare_match")
    builder.label("emit_literal")
    builder.emit("add  r7, r7, r2")
    builder.emit("j    advance")
    builder.label("rare_match")
    builder.emit("addi r8, r8, 1")
    builder.label("advance")
    builder.emit("addi r10, r10, -1")
    builder.emit("bne  r10, r0, deflate")
    builder.emit("halt")
    return builder.source()
