"""Throughput of the parallel experiment runner and its result cache.

Regenerates the Figure 9 simulation grid (12 workloads x 7 machine
runs) through :class:`ParallelExperimentRunner`: once cold with a
process-pool fan-out, once warm where every result is served from the
on-disk cache.  The cold run's summed simulation time divided by its
wall time is the effective parallel speedup on this host.
"""

from conftest import BENCHMARK_SCALE

from repro.experiments import figure9, figure_jobs
from repro.experiments.parallel import ParallelExperimentRunner


def test_parallel_fig9_fan_out(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")

    def cold_run():
        runner = ParallelExperimentRunner(
            scale=BENCHMARK_SCALE, jobs=4, cache_dir=cache_dir
        )
        runner.prefetch(figure_jobs("fig9", runner))
        return runner

    runner = benchmark.pedantic(cold_run, rounds=1, iterations=1)
    print()
    print(runner.summary.render())
    assert runner.summary.cache_hits == 0
    assert runner.summary.jobs_run == len(runner.workload_names) * 7

    # Warm pass: the same grid is now 100% cache hits and the figure
    # renders identically to a freshly simulated one.
    warm = ParallelExperimentRunner(
        scale=BENCHMARK_SCALE, jobs=4, cache_dir=cache_dir
    )
    ran = warm.prefetch(figure_jobs("fig9", warm))
    assert ran == 0
    assert warm.summary.cache_hits == runner.summary.jobs_run
    assert figure9(warm).render() == figure9(runner).render()
