"""Figure 12: spawning using dynamic reconvergence prediction."""

from repro.experiments import figure12


def test_fig12_reconvergence_prediction(benchmark, runner):
    result = benchmark.pedantic(figure12, args=(runner,), rounds=1, iterations=1)
    print()
    print(result.render())

    average = result.speedups["Average"]

    # "This dynamic scheme performs quite well and gets close to the
    # compiler-aided system": within reach of postdoms on average...
    assert average["rec_pred"] > 0.5 * average["postdoms"]
    # ... but does not beat it meaningfully.
    assert average["rec_pred"] <= average["postdoms"] + 10.0

    # "...it lags behind appreciably in several cases" — at least one
    # benchmark shows a clear gap (the paper names crafty, mcf, twolf;
    # twolf's long-loop reconvergences are the hardest to learn).
    gaps = {
        name: result.speedups[name]["postdoms"] - result.speedups[name]["rec_pred"]
        for name in runner.workload_names
    }
    assert max(gaps.values()) > 15.0
    assert gaps["twolf"] > 10.0
