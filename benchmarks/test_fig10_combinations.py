"""Figure 10: combinations of heuristics vs control-equivalent spawning."""

from repro.experiments import figure10


def test_fig10_heuristic_combinations(benchmark, runner):
    result = benchmark.pedantic(figure10, args=(runner,), rounds=1, iterations=1)
    print()
    print(result.render())

    average = result.speedups["Average"]
    best_combination = max(
        average[spec] for spec in result.specs if spec != "postdoms"
    )

    # "Using control equivalent spawning performs at least as well as
    # the best heuristic combination policy" (on average, clearly
    # better: the paper reports 33% more speedup).
    assert average["postdoms"] >= best_combination
    assert average["postdoms"] >= 1.15 * max(best_combination, 1.0)

    # Combinations beat the weakest individual heuristics: adding spawn
    # types does not collapse performance.
    assert best_combination > 0
