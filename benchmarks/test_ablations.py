"""Design-choice ablations (DESIGN.md section 6 / the paper's future work)."""

from repro.experiments.ablations import (
    mispredict_penalty_ablation,
    nested_spawn_ablation,
    rob_size_ablation,
    spawn_distance_ablation,
    task_count_ablation,
)


def test_ablation_task_contexts(benchmark, runner):
    result = benchmark.pedantic(
        task_count_ablation, args=(runner,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    for name in result.workloads:
        # No tasks, no speculation: the single-task machine is within
        # noise of the baseline, and 8 tasks beat 1 task wherever there
        # is any win at all.
        assert abs(result.speedups[name][1]) < 8.0
        assert result.speedups[name][8] >= result.speedups[name][1] - 3.0


def test_ablation_rob_size(benchmark, runner):
    result = benchmark.pedantic(
        rob_size_ablation, args=(runner,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # The paper's conclusion: a larger window exposes more outer-loop
    # parallelism on loop benchmarks (twolf).
    twolf = result.speedups["twolf"]
    assert twolf[1024] >= twolf[128] - 10.0


def test_ablation_nested_spawns(benchmark, runner):
    result = benchmark.pedantic(
        nested_spawn_ablation, args=(runner,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    gains = [
        result.speedups[name][True] - result.speedups[name][False]
        for name in result.workloads
    ]
    # The future-work extension helps somewhere and is never ruinous.
    assert max(gains) > 0.0
    assert min(gains) > -15.0


def test_ablation_mispredict_penalty(benchmark, runner):
    result = benchmark.pedantic(
        mispredict_penalty_ablation, args=(runner,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Jumping over branches is worth more when mispredicts cost more.
    for name in ("mcf", "perlbmk"):
        assert result.speedups[name][32] >= result.speedups[name][4] - 5.0


def test_ablation_spawn_distance(benchmark, runner):
    result = benchmark.pedantic(
        spawn_distance_ablation, args=(runner,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    for name in result.workloads:
        assert result.speedups[name][512] >= result.speedups[name][64] - 20.0
