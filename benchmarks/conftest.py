"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's evaluation figures end to
end (workload build, functional simulation, spawn analysis, profiling,
and all cycle-level machine runs) and prints the same rows/series the
paper reports.  Workloads run at a reduced scale so the whole suite
finishes in a few minutes; the shape assertions are the ones the
paper's claims rest on.
"""

import pytest

from repro.experiments import ExperimentRunner
from repro.workloads import clear_cache

#: Workload scale for benchmark runs (full scale = 1.0).
BENCHMARK_SCALE = 0.5


@pytest.fixture(scope="session")
def runner():
    """One shared experiment runner so figures reuse cached runs."""
    clear_cache()
    return ExperimentRunner(scale=BENCHMARK_SCALE)
