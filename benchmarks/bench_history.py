#!/usr/bin/env python
"""Append a benchmark run to the throughput history and render it.

``bench_kernel.py`` measures one commit; this helper turns those
point-in-time reports into a tracked series.  The CI benchmark job
restores the previous ``bench-history`` artifact (via the actions
cache), appends the current run's *normalized* throughput — ips
divided by the machine calibration index, so runner-speed drift does
not masquerade as a kernel trend — and re-uploads the file.  The
last-N trajectory is rendered as a Markdown table into
``$GITHUB_STEP_SUMMARY`` so the trend is visible on every run without
downloading anything.

The history file is JSON-lines: one object per run with the commit
sha, the schema number, and a normalized throughput per channel.
Unknown fields are preserved for forward compatibility; rendering
skips lines it cannot parse rather than failing the job.

Usage::

    python benchmarks/bench_history.py \
        --report bench-output/BENCH_polyflow.json \
        --history bench-history/history.jsonl \
        --sha "$GITHUB_SHA" \
        --summary-md "$GITHUB_STEP_SUMMARY" \
        --last 20
"""

import argparse
import json
import os
import sys

#: Channels whose normalized aggregate throughput is tracked, in
#: render order.  Older history lines simply lack the newer channels.
CHANNELS = ("serial", "blocks", "event_kernel")


def history_entry(report, sha=None):
    """One history line for ``report`` (a bench_kernel report dict)."""
    index = report["machine_index"]
    entry = {
        "sha": (sha or "")[:12] or None,
        "schema": report.get("schema"),
        "scale": report.get("scale"),
        "machine_index": index,
    }
    for channel in CHANNELS:
        if channel in report:
            entry[channel] = report[channel]["aggregate_ips"] / index
    if "efficiency" in report:
        entry["efficiency"] = report["efficiency"]["ratio"]
    if "gridbatch" in report:
        # The lockstep/per-cell speedup is a same-process ratio, so it
        # needs no machine-index normalization.
        entry["gridbatch"] = report["gridbatch"]["speedup"]
    if "estimator" in report:
        entry["estimator_mae"] = report["estimator"]["mean_mae"]
    if "fabric" in report:
        # Normalized so runner-speed drift doesn't read as a fabric
        # trend; the mode rides along because single-core ratios are
        # not comparable to multi-core ones.
        entry["fabric"] = report["fabric"]["cells_per_second"] / index
        entry["fabric_mode"] = report["fabric"].get("mode")
    return entry


def append_entry(history_path, entry):
    """Append ``entry`` as one JSONL line, creating parents as needed."""
    parent = os.path.dirname(history_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(history_path, "a") as handle:
        json.dump(entry, handle, sort_keys=True)
        handle.write("\n")


def load_history(history_path):
    """All parseable entries, oldest first; tolerant of corrupt lines."""
    if not os.path.exists(history_path):
        return []
    entries = []
    with open(history_path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                continue
    return entries


def render_markdown(entries, last=20):
    """The last-``last`` runs as a Markdown trajectory table."""
    window = entries[-last:]
    lines = [
        "### Benchmark trajectory (last {} of {} runs, normalized ips)".format(
            len(window), len(entries)
        ),
        "",
        "| run | sha | "
        + " | ".join(CHANNELS)
        + " | efficiency | gridbatch | est. MAE | fabric |",
        "|---:|---|" + "---:|" * (len(CHANNELS) + 4),
    ]
    first_run = len(entries) - len(window) + 1
    for offset, entry in enumerate(window):
        cells = []
        for channel in CHANNELS:
            value = entry.get(channel)
            cells.append("{:.6f}".format(value) if value is not None else "—")
        ratio = entry.get("efficiency")
        cells.append("{:.2f}x".format(ratio) if ratio is not None else "—")
        grid = entry.get("gridbatch")
        cells.append("{:.2f}x".format(grid) if grid is not None else "—")
        mae = entry.get("estimator_mae")
        cells.append("{:.1f}".format(mae) if mae is not None else "—")
        fabric = entry.get("fabric")
        cells.append(
            "{:.6f} ({})".format(fabric, entry.get("fabric_mode") or "?")
            if fabric is not None
            else "—"
        )
        lines.append(
            "| {} | {} | {} |".format(
                first_run + offset, entry.get("sha") or "—", " | ".join(cells)
            )
        )
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", required=True, help="a bench_kernel report JSON")
    parser.add_argument(
        "--history", required=True, help="the JSONL history file to append to"
    )
    parser.add_argument("--sha", default=os.environ.get("GITHUB_SHA"))
    parser.add_argument(
        "--summary-md",
        help="append the trajectory table here (CI: $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--last", type=int, default=20, help="runs to render (default 20)"
    )
    arguments = parser.parse_args(argv)

    with open(arguments.report) as handle:
        report = json.load(handle)
    append_entry(arguments.history, history_entry(report, arguments.sha))
    entries = load_history(arguments.history)
    rendered = render_markdown(entries, arguments.last)
    print(rendered, end="")
    if arguments.summary_md:
        with open(arguments.summary_md, "a") as handle:
            handle.write(rendered)
    print("history: {} runs in {}".format(len(entries), arguments.history))
    return 0


if __name__ == "__main__":
    sys.exit(main())
