"""Throughput micro-benchmarks for the simulation substrates.

Unlike the per-figure regenerations (single-shot), these measure the
steady-state speed of the hot components with proper multi-round
pytest-benchmark statistics — useful when optimizing the simulator.
"""

import random

import pytest

from repro.analysis import compute_postdominator_tree
from repro.frontend import GsharePredictor
from repro.isa import assemble
from repro.memory import Cache
from repro.polyflow import PAPER_CONFIG, PolyFlowCore
from repro.sim import FunctionalSimulator, limit_study
from repro.spawn import profile_spawn_points
from repro.workloads import prepare_workload, workload_source


@pytest.fixture(scope="module")
def gzip_workload():
    return prepare_workload("gzip", scale=0.25)


def test_assembler_throughput(benchmark):
    source = workload_source("gcc", scale=0.25)
    program = benchmark(assemble, source)
    assert len(program) > 100


def test_functional_simulator_throughput(benchmark, gzip_workload):
    program = gzip_workload.program

    def run():
        return FunctionalSimulator(program).run()

    trace = benchmark(run)
    assert trace.halted
    rate = len(trace) / benchmark.stats.stats.mean
    print("\nfunctional simulation: {:,.0f} instructions/second".format(rate))


def test_cycle_simulator_throughput(benchmark, gzip_workload):
    trace = gzip_workload.trace
    analysis = gzip_workload.spawn_analysis
    policy = analysis.policy("postdoms")
    hints = profile_spawn_points(trace, policy.points).hint_table(policy)

    def run():
        return PolyFlowCore(trace, PAPER_CONFIG, hints).run()

    stats = benchmark(run)
    assert stats.retired_instructions == len(trace)
    rate = len(trace) / benchmark.stats.stats.mean
    print("\ncycle-level simulation: {:,.0f} instructions/second".format(rate))


def test_cycle_simulator_with_no_sink_bus(benchmark, gzip_workload):
    """The guarded event dispatch must be free when nothing listens.

    Compare against ``test_cycle_simulator_throughput`` (which uses the
    core's internally created bus): the acceptance bar for the event
    bus is < 5% overhead on this pair.
    """
    from repro.obs import EventBus

    trace = gzip_workload.trace
    analysis = gzip_workload.spawn_analysis
    policy = analysis.policy("postdoms")
    hints = profile_spawn_points(trace, policy.points).hint_table(policy)

    def run():
        return PolyFlowCore(trace, PAPER_CONFIG, hints, bus=EventBus()).run()

    stats = benchmark(run)
    assert stats.retired_instructions == len(trace)
    rate = len(trace) / benchmark.stats.stats.mean
    print("\nno-sink event bus: {:,.0f} instructions/second".format(rate))


def test_cycle_simulator_with_verbose_sink(benchmark, gzip_workload):
    """Reference cost of full per-instruction tracing (not a gate —
    verbose runs are opt-in and pay for what they observe)."""
    from repro.obs import EventBus, MetricsAggregator

    trace = gzip_workload.trace
    analysis = gzip_workload.spawn_analysis
    policy = analysis.policy("postdoms")
    hints = profile_spawn_points(trace, policy.points).hint_table(policy)

    def run():
        bus = EventBus()
        bus.attach(MetricsAggregator())
        return PolyFlowCore(trace, PAPER_CONFIG, hints, bus=bus).run()

    stats = benchmark(run)
    assert stats.retired_instructions == len(trace)
    rate = len(trace) / benchmark.stats.stats.mean
    print("\nverbose-sink event bus: {:,.0f} instructions/second".format(rate))


def test_postdominator_analysis_throughput(benchmark):
    program = assemble(workload_source("gcc", scale=0.25))
    from repro.cfg import build_program_cfgs

    cfgs = build_program_cfgs(program)
    largest = max(cfgs, key=lambda cfg: len(cfg.blocks))

    result = benchmark(compute_postdominator_tree, largest)
    assert largest.exit_index in result.nodes()


def test_gshare_throughput(benchmark):
    rng = random.Random(1)
    outcomes = [(0x9000 + 4 * rng.randrange(256), rng.random() < 0.5) for _ in range(10_000)]

    def run():
        predictor = GsharePredictor()
        hits = 0
        for pc, taken in outcomes:
            hits += predictor.predict_and_update(pc, taken) == taken
        return hits

    hits = benchmark(run)
    assert 0 <= hits <= len(outcomes)


def test_cache_throughput(benchmark):
    rng = random.Random(2)
    addresses = [rng.randrange(1 << 22) for _ in range(20_000)]

    def run():
        cache = Cache(size=16 * 1024, associativity=4, line_size=64)
        for address in addresses:
            cache.access(address)
        return cache.misses

    misses = benchmark(run)
    assert misses > 0


def test_limit_study_throughput(benchmark, gzip_workload):
    trace = gzip_workload.trace
    ipdoms = {
        point.trigger_pc: point.spawn_pc
        for point in gzip_workload.spawn_analysis.postdominator_points
    }
    result = benchmark(limit_study, trace, ipdoms)
    assert result.single_flow <= result.dataflow + 1e-9
