"""Figure 5: static distribution of control-equivalent task types."""

from repro.experiments import figure5
from repro.spawn import POSTDOMINATOR_CATEGORIES, SpawnCategory


def test_fig5_static_distribution(benchmark, runner):
    result = benchmark.pedantic(figure5, args=(runner,), rounds=1, iterations=1)
    print()
    print(result.render())

    # Every benchmark has static spawns; the bar number is positive.
    for name in runner.workload_names:
        assert result.total(name) > 0

    # "Hammocks, loop fall-throughs and procedure fall-throughs are all
    # important task types" — each category is a sizable share of at
    # least one benchmark.
    for category in (
        SpawnCategory.HAMMOCK,
        SpawnCategory.LOOP_FALL_THROUGH,
        SpawnCategory.PROCEDURE_FALL_THROUGH,
        SpawnCategory.OTHER,
    ):
        best_share = max(
            result.percentages(name)[category] for name in runner.workload_names
        )
        assert best_share > 10.0 or category == SpawnCategory.OTHER

    # gcc has by far the largest static spawn count (13707 in the paper).
    totals = {name: result.total(name) for name in runner.workload_names}
    assert max(totals, key=totals.get) == "gcc"

    # Percentages add up.
    for name in runner.workload_names:
        assert abs(sum(result.percentages(name).values()) - 100.0) < 1e-6
    assert len(POSTDOMINATOR_CATEGORIES) == 4
