"""Figure 11: loss in speedup when one spawn category is excluded."""

from repro.experiments import figure11


def test_fig11_category_exclusions(benchmark, runner):
    result = benchmark.pedantic(figure11, args=(runner,), rounds=1, iterations=1)
    print()
    print(result.render())

    losses = result.losses

    # The paper's headline examples:
    # "vpr.route suffers a 29% loss when loop fall-through spawns are
    # removed."
    assert losses["vpr.route"]["postdoms-loopFT"] > 10.0
    # "Vortex takes a 56% hit when procedure fall-throughs are removed."
    assert losses["vortex"]["postdoms-procFT"] > 25.0
    # "Perlbmk and mcf lose 21% and 16% respectively when hammocks are
    # removed."
    assert losses["perlbmk"]["postdoms-hammock"] > 8.0
    assert losses["mcf"]["postdoms-hammock"] > 8.0

    # On average, no category is free to drop.
    for spec in ("postdoms-loopFT", "postdoms-procFT", "postdoms-hammock"):
        assert losses["Average"][spec] > 0.0

    # "Occasionally a spawn policy that restricts the set of spawns
    # will achieve a small improvement" — small negative losses are
    # expected, large ones are not.
    for name in runner.workload_names:
        for spec, loss in losses[name].items():
            assert loss > -25.0, (name, spec, loss)
