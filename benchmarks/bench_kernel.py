#!/usr/bin/env python
"""Timing-kernel throughput benchmark and regression gate.

Measures committed-instructions/sec of the PolyFlow cycle-level kernel
on the gzip/mcf/vortex trio, serially and under a ``--jobs 4`` process
fan-out, and emits the results as ``BENCH_polyflow.json``.  The
checked-in copy of that file at the repository root is the performance
baseline: CI re-runs this harness with ``--check BENCH_polyflow.json``
and fails when throughput regresses more than the gate tolerance
(default 15%).

Cross-machine comparability: every run also measures a fixed
pure-Python calibration loop (``machine_index``).  The ``--check`` gate
compares *normalized* throughput (ips / machine_index), so a slower CI
runner does not read as a kernel regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py --output BENCH_polyflow.json
    PYTHONPATH=src python benchmarks/bench_kernel.py --baseline old.json \
        --output BENCH_polyflow.json
    PYTHONPATH=src python benchmarks/bench_kernel.py --check BENCH_polyflow.json
"""

import argparse
import json
import os
import sys
import time

#: Schema version of the emitted JSON.
SCHEMA = 1

#: The benchmark trio (chosen in the ISSUE: one branchy compressor, one
#: pointer-chasing workload with violation squashes, one call-heavy OO
#: workload).
WORKLOADS = ("gzip", "mcf", "vortex")

#: Policy under which throughput is measured.
POLICY = "control-equivalent"

DEFAULT_SCALE = 0.5
DEFAULT_REPEATS = 5
DEFAULT_JOBS = 4
DEFAULT_TOLERANCE = 0.15

#: Iterations of the calibration loop.
_CALIBRATION_N = 2_000_000


def machine_index(repeats=3):
    """Operations/sec of a fixed pure-Python loop (best of ``repeats``).

    Used to normalize committed-instructions/sec across machines of
    different single-core speed before applying the regression gate.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        total = 0
        for i in range(_CALIBRATION_N):
            total += i * i
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return _CALIBRATION_N / best


def measure_serial(scale, repeats):
    """Best-of-``repeats`` kernel throughput per workload, in-process.

    Workload preparation (functional execution + static analyses) is
    warmed outside the timed region: the benchmark isolates the
    cycle-level timing kernel, which is what the fast path targets.
    """
    from repro.experiments.runner import build_core
    from repro.polyflow import PAPER_CONFIG
    from repro.workloads import prepare_workload

    results = {}
    for name in WORKLOADS:
        prepared = prepare_workload(name, scale)
        instructions = len(prepared.trace)
        best = float("inf")
        for _ in range(repeats):
            core = build_core(name, POLICY, scale, PAPER_CONFIG)
            started = time.perf_counter()
            stats = core.run()
            elapsed = time.perf_counter() - started
            if stats.retired_instructions != instructions:
                raise AssertionError(
                    "retired {} != trace length {}".format(
                        stats.retired_instructions, instructions
                    )
                )
            best = min(best, elapsed)
        results[name] = {
            "instructions": instructions,
            "seconds": best,
            "ips": instructions / best,
        }
    total_instructions = sum(entry["instructions"] for entry in results.values())
    total_seconds = sum(entry["seconds"] for entry in results.values())
    return {
        "per_workload": results,
        "instructions": total_instructions,
        "seconds": total_seconds,
        "aggregate_ips": total_instructions / total_seconds,
    }


def measure_jobs(scale, jobs, repeats):
    """Best-of-``repeats`` end-to-end wall throughput under a fan-out.

    Each repeat builds a fresh :class:`ParallelExperimentRunner` (no
    disk cache) and prefetches the trio, so the measurement includes
    worker startup and in-worker preparation — the figure-generation
    path as users experience it.
    """
    from repro.experiments.parallel import ParallelExperimentRunner
    from repro.workloads import prepare_workload

    total_instructions = sum(
        len(prepare_workload(name, scale).trace) for name in WORKLOADS
    )
    best = float("inf")
    for _ in range(repeats):
        runner = ParallelExperimentRunner(
            scale=scale, workload_names=WORKLOADS, jobs=jobs
        )
        started = time.perf_counter()
        simulated = runner.prefetch([(name, POLICY) for name in WORKLOADS])
        elapsed = time.perf_counter() - started
        if simulated != len(WORKLOADS):
            raise AssertionError(
                "expected {} simulations, ran {}".format(len(WORKLOADS), simulated)
            )
        best = min(best, elapsed)
    return {
        "jobs": jobs,
        "instructions": total_instructions,
        "wall_seconds": best,
        "ips": total_instructions / best,
    }


def run_benchmark(scale, repeats, jobs, jobs_repeats=3, skip_jobs=False):
    """One full measurement: calibration, serial trio, jobs fan-out."""
    report = {
        "schema": SCHEMA,
        "workloads": list(WORKLOADS),
        "policy": POLICY,
        "scale": scale,
        "repeats": repeats,
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "machine_index": machine_index(),
        "serial": measure_serial(scale, repeats),
    }
    if not skip_jobs:
        report["jobs4"] = measure_jobs(scale, jobs, jobs_repeats)
    return report


def speedup_vs_baseline(report, baseline):
    """Normalized serial/jobs4 speedups of ``report`` over ``baseline``."""
    speedups = {}
    ratio = report["machine_index"] / baseline["machine_index"]
    speedups["serial"] = (
        report["serial"]["aggregate_ips"]
        / baseline["serial"]["aggregate_ips"]
        / ratio
    )
    if "jobs4" in report and "jobs4" in baseline:
        speedups["jobs4"] = (
            report["jobs4"]["ips"] / baseline["jobs4"]["ips"] / ratio
        )
    return speedups


def check_regression(report, reference, tolerance):
    """Gate: normalized throughput must not trail ``reference`` by more
    than ``tolerance``.  Returns a list of failure strings (empty = pass).
    """
    failures = []
    ratio = report["machine_index"] / reference["machine_index"]
    checks = [
        (
            "serial",
            report["serial"]["aggregate_ips"],
            reference["serial"]["aggregate_ips"],
        )
    ]
    if "jobs4" in report and "jobs4" in reference:
        checks.append(("jobs4", report["jobs4"]["ips"], reference["jobs4"]["ips"]))
    for label, measured, expected in checks:
        normalized = measured / ratio
        floor = expected * (1.0 - tolerance)
        if normalized < floor:
            failures.append(
                "{}: normalized {:.0f} ips < floor {:.0f} ips "
                "(reference {:.0f}, tolerance {:.0%}, machine ratio {:.2f})".format(
                    label, normalized, floor, expected, tolerance, ratio
                )
            )
    return failures


def render(report):
    lines = [
        "kernel throughput (scale {}, policy {}):".format(
            report["scale"], report["policy"]
        )
    ]
    for name, entry in report["serial"]["per_workload"].items():
        lines.append(
            "  {:>8}  {:>8} instr  {:>7.3f}s  {:>9.0f} ips".format(
                name, entry["instructions"], entry["seconds"], entry["ips"]
            )
        )
    lines.append(
        "  {:>8}  {:>8} instr  {:>7.3f}s  {:>9.0f} ips".format(
            "serial",
            report["serial"]["instructions"],
            report["serial"]["seconds"],
            report["serial"]["aggregate_ips"],
        )
    )
    if "jobs4" in report:
        jobs = report["jobs4"]
        lines.append(
            "  {:>8}  {:>8} instr  {:>7.3f}s  {:>9.0f} ips (end-to-end, {} workers)".format(
                "jobs4",
                jobs["instructions"],
                jobs["wall_seconds"],
                jobs["ips"],
                jobs["jobs"],
            )
        )
    if "speedup_vs_baseline" in report:
        lines.append(
            "  vs baseline: "
            + ", ".join(
                "{} {:.2f}x".format(label, value)
                for label, value in report["speedup_vs_baseline"].items()
            )
        )
    lines.append("  machine index: {:.0f}".format(report["machine_index"]))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument(
        "--skip-jobs", action="store_true", help="skip the --jobs fan-out measurement"
    )
    parser.add_argument("--output", help="write the report JSON here")
    parser.add_argument(
        "--baseline",
        help="a previous report; its numbers are embedded under 'baseline' "
        "and normalized speedups are computed",
    )
    parser.add_argument(
        "--check",
        help="a reference report (the checked-in BENCH_polyflow.json); "
        "exit non-zero when normalized throughput regresses beyond "
        "the tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional regression for --check (default 0.15; "
        "env BENCH_GATE_TOLERANCE overrides)",
    )
    arguments = parser.parse_args(argv)

    report = run_benchmark(
        arguments.scale,
        arguments.repeats,
        arguments.jobs,
        skip_jobs=arguments.skip_jobs,
    )

    if arguments.baseline:
        with open(arguments.baseline) as handle:
            baseline = json.load(handle)
        report["baseline"] = baseline
        report["speedup_vs_baseline"] = speedup_vs_baseline(report, baseline)

    print(render(report))

    if arguments.output:
        with open(arguments.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote {}".format(arguments.output))

    if arguments.check:
        with open(arguments.check) as handle:
            reference = json.load(handle)
        failures = check_regression(report, reference, arguments.tolerance)
        if failures:
            for failure in failures:
                print("REGRESSION {}".format(failure), file=sys.stderr)
            return 1
        print(
            "gate passed (tolerance {:.0%} vs {})".format(
                arguments.tolerance, arguments.check
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
