#!/usr/bin/env python
"""Timing-kernel throughput benchmark and regression gate.

Measures committed-instructions/sec of the PolyFlow cycle-level kernel
on the gzip/mcf/vortex trio — serially with the block engine off (the
PR3 fast-path baseline), serially with the block engine on (the
``blocks`` channel), with the event-calendar time-skip kernel on top of
the block engine (the ``event_kernel`` channel), end-to-end under a
``--jobs 4`` grid-scheduler fan-out, and on the fully warm result-cache
replay path — and emits the results as ``BENCH_polyflow.json``.  The
checked-in copy of that file at the repository root is the performance
baseline: CI re-runs this harness with ``--check BENCH_polyflow.json``
and fails when throughput regresses more than the gate tolerance
(default 15%).

The gates run under ``--check``:

* the **schema gate** — the reference report must carry every channel
  the current schema produces; a baseline regenerated under an older
  schema fails with a message naming the missing channel rather than a
  ``KeyError`` deep inside a comparison;
* the **throughput gate** — normalized serial/blocks/event-kernel/
  jobs4/cache-hit throughput must not trail the reference by more than
  ``--tolerance``;
* the **block-engine gate** — the ``blocks`` channel's per-workload
  speedup over the serial (engine-off) channel must not fall below its
  *per-workload* floor (see ``DEFAULT_BLOCKS_FLOORS``).  The floors
  are set to what the cycle-exact kernel actually achieves per
  workload, not the ISSUE's aspirational 2x or a one-size 0.85:
  block-at-a-time batching removes scheduler bookkeeping but every
  instruction still retires through the exact per-cycle model, and how
  much bookkeeping there is to remove varies by workload — mcf's
  pointer-chasing spends its cycles in the memory hierarchy, which the
  block path cannot elide, so its honest floor sits below gzip's and
  far below vortex's (see EXPERIMENTS.md);
* the **event-kernel gate** — same shape for the ``event_kernel``
  channel against ``DEFAULT_EVENT_KERNEL_FLOORS`` (per-workload floors
  below the ISSUE's 2x target: >85% of simulated cycles have a
  calendar event due, so there is little idle time for the calendar to
  skip, and on some machines the calendar's heap overhead makes the
  channel a small net loss on gzip/mcf);
* the **grid-batch gate** — ``gridbatch.run_batch`` must produce
  byte-identical stats to the per-cell path on a 50-cell synth grid,
  and its cells/sec must stay within ``DEFAULT_GRIDBATCH_FLOOR`` of
  per-cell dispatch.  The floor is honest, not the ISSUE's
  aspirational 2x: ~80% of in-process per-cell wall time is the
  simulation kernel itself (``event_kernel_steps``), and the synth
  catalog's traces are so short (~1k instructions) that the warm-up
  replay batching amortizes is itself only ~0.1ms/cell — lockstep
  measures parity (0.83-0.97x, machine noise) on this grid.  The
  batch wins land elsewhere: warm-state sharing on long traces (the
  gzip/mcf/vortex grid measures ~1.05x in-process, and mcf's ~14ms
  replay is paid once per spec column instead of once per cell) and
  the scheduler's chunk path, where one lockstep call replaces a
  pickle round-trip per cell.  The gate's teeth are byte-identity
  plus a no-pessimization floor (see EXPERIMENTS.md);
* the **estimator gate** — the analytic estimator's mean
  absolute speedup error over a fixed stratified sample must stay
  under ``DEFAULT_ESTIMATOR_MAE_CEILING`` points, the estimate-first
  triage must stay within its simulation budget, and every stratum
  verdict it *certifies* must agree with the full exact sweep's
  verdict (the certificate guarantee, checked empirically here);
* the **fabric gate** — a stratified synth sweep shipped to two
  subprocess fabric workers with a cold shared artifact store must
  produce stats byte-identical to the same sweep run serially
  (placement invariance, gated in every mode), and on a multi-core
  machine its wall clock must beat serial by ``--fabric-floor``
  (default 1.5×; single-core runs record the ratio without gating
  it — two workers timesharing one core cannot win);
* the **parallel-efficiency gate** — on a multi-core machine the
  ``--jobs 4`` wall clock must beat the serial wall clock by at least
  ``--efficiency-floor`` (default 1.2×).  On a single-core machine the
  scheduler short-circuits the pool (parallelism cannot help), so the
  gate instead bounds the scheduler's overhead: jobs4 may not run more
  than 25% slower than serial.

Cross-machine comparability: every run also measures a fixed
pure-Python calibration loop (``machine_index``).  The ``--check`` gate
compares *normalized* throughput (ips / machine_index), so a slower CI
runner does not read as a kernel regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py --output BENCH_polyflow.json
    PYTHONPATH=src python benchmarks/bench_kernel.py --baseline old.json \
        --output BENCH_polyflow.json
    PYTHONPATH=src python benchmarks/bench_kernel.py --check BENCH_polyflow.json
"""

import argparse
import json
import os
import sys
import tempfile
import time

#: Schema version of the emitted JSON.  v2: jobs4 grew ``cpus``/``mode``,
#: and reports carry ``cache_hit`` and ``efficiency`` sections.  v3:
#: ``serial`` is measured with the block engine explicitly off (the PR3
#: fast path) and reports carry a ``blocks`` section — the same trio
#: with the block engine on, plus per-workload speedups over serial.
#: v4: reports carry an ``event_kernel`` section — the trio on the
#: event-calendar kernel (block engine + calendar time skip), with
#: per-workload and aggregate speedups over serial; the ``serial`` and
#: ``blocks`` channels pin ``event_kernel=False`` so they keep
#: measuring the cycle-exact engines whatever the process default is.
#: v5: reports carry a ``gridbatch`` section (lockstep batch runner
#: cells/sec vs per-cell dispatch on a stratified synth grid, with a
#: stats byte-identity check) and an ``estimator`` section (analytic
#: estimator error plus estimate-first triage budget/certificate
#: telemetry); the blocks/event-kernel gates moved from one generic
#: floor to honest per-workload floors.
#: v6: reports carry a ``fabric`` section — a stratified synth sweep
#: shipped to subprocess fabric workers with a shared artifact store,
#: measured against the same sweep run serially, with a stats
#: byte-identity check.  The speedup floor applies in multi-core mode
#: only (two worker processes timesharing one core cannot beat serial);
#: identity is gated in every mode.
SCHEMA = 6

#: The benchmark trio (chosen in the ISSUE: one branchy compressor, one
#: pointer-chasing workload with violation squashes, one call-heavy OO
#: workload).
WORKLOADS = ("gzip", "mcf", "vortex")

#: Policy under which throughput is measured.
POLICY = "control-equivalent"

DEFAULT_SCALE = 0.5
DEFAULT_REPEATS = 5
DEFAULT_JOBS = 4
DEFAULT_TOLERANCE = 0.15
#: jobs4 must beat serial wall-clock by this factor on multi-core
#: machines (env BENCH_EFFICIENCY_FLOOR overrides).
DEFAULT_EFFICIENCY_FLOOR = 1.2
#: On a single core the pool is short-circuited; jobs4 overhead over
#: the serial kernel must stay within this factor.
SINGLE_CORE_EFFICIENCY_FLOOR = 0.8
#: Per-workload floors for the blocks/serial speedup.  Measured across
#: two machines (best-of-9, scale 0.5): gzip 1.06-1.07x, mcf
#: 0.88-1.01x (pointer-chasing keeps it per-cycle-bound: the cycles go
#: to memory-hierarchy latency lookups and squash replay, which
#: block-at-a-time batching cannot elide), vortex 1.13-1.24x.  Each
#: floor sits ~0.08 of noise headroom below that workload's worst
#: measurement; the gate exists to catch the block path *losing* to
#: per-instruction, not to certify a speedup the cycle-exact kernel
#: cannot reach (the ISSUE's 2x target assumed scheduler bookkeeping
#: dominated; it does not — see EXPERIMENTS.md).  Env
#: ``BENCH_BLOCKS_FLOOR`` overrides all three with one uniform floor.
DEFAULT_BLOCKS_FLOORS = {"gzip": 0.95, "mcf": 0.80, "vortex": 1.00}
#: Per-workload floors for the event-kernel/serial speedup.  Measured
#: across two machines (best-of-9, scale 0.5): gzip 0.90-1.15x, mcf
#: 0.90-0.99x, vortex 0.97-1.22x.  The calendar's headline 2x target
#: assumed skippable idle cycles; instrumentation shows the paper trio
#: has a calendar event due on >85% of cycles (gzip: 7300 of 7324), so
#: the kernel's wins come from batched plain-run issue and leaner
#: queue rescans, not time skips — and on machines where heap
#: operations are comparatively expensive the channel is a small net
#: loss on gzip/mcf (see EXPERIMENTS.md).  Same ~0.08 noise headroom
#: below each workload's worst measurement.  Env
#: ``BENCH_EVENT_KERNEL_FLOOR`` overrides with one uniform floor.
DEFAULT_EVENT_KERNEL_FLOORS = {"gzip": 0.82, "mcf": 0.82, "vortex": 0.88}

#: Grid-batch channel: the measured grid is the shape real sweeps
#: produce — each sampled scenario crossed with the sweep's spec
#: column (champion, challenger, superscalar baseline), so warm-cache
#: sharing across same-trace cells is exercised exactly as the
#: scheduler exercises it.  17 scenarios x 3 specs = 51 cells.
GRIDBATCH_NAMES = 17
GRIDBATCH_SPECS = ("postdoms", "loop+procFT+loopFT", "superscalar")
GRIDBATCH_TOKEN = "bench-gridbatch-v1"
#: Floor for run_batch cells/sec over per-cell dispatch.  Honest, not
#: the ISSUE's 2x: profiling shows ~80% of per-cell wall time is the
#: simulation kernel itself (``event_kernel_steps``), and the synth
#: catalog's ~1k-instruction traces leave only ~0.1ms/cell of warm-up
#: for batching to amortize, so lockstep measures parity on this grid
#: (0.83-0.97x across runs, machine noise).  This floor is a
#: no-pessimization gate; the byte-identity check above it is the
#: channel's real claim.  Env ``BENCH_GRIDBATCH_FLOOR`` overrides.
DEFAULT_GRIDBATCH_FLOOR = 0.75

#: Estimator channel: sampled cells, rotation token, and the error
#: ceiling.  The 96-cell stratified sample measures ~25 points of mean
#: absolute speedup error (the full catalog measures 27.9/23.1 points
#: for postdoms/loop-combo); the ceiling leaves headroom for sample
#: rotation, not for model regressions.  Env
#: ``BENCH_ESTIMATOR_MAE_CEILING`` overrides.
ESTIMATOR_CELLS = 96
ESTIMATOR_TOKEN = "bench-estimator-v1"
DEFAULT_ESTIMATOR_MAE_CEILING = 35.0

#: Fabric channel: a stratified synth grid (scenarios crossed with the
#: sweep's champion/challenger specs) shipped to subprocess fabric
#: workers against a cold shared store, vs the same grid swept
#: serially.  Worker spawn/handshake happens outside the timed region
#: (the steady state a long sweep experiences — the jobs4 channel
#: treats pool spin-up the same way).
FABRIC_WORKERS = 2
FABRIC_NAMES = 24
FABRIC_SPECS = ("postdoms", "loop+procFT+loopFT")
FABRIC_TOKEN = "bench-fabric-v1"
#: Minimum fabric/serial wall speedup on a multi-core machine (the
#: ISSUE's acceptance floor).  In single-core mode the floor is
#: skipped — two worker processes timesharing one core cannot beat the
#: serial sweep — and the channel's teeth are the byte-identity check.
#: Env ``BENCH_FABRIC_FLOOR`` overrides.
DEFAULT_FABRIC_FLOOR = 1.5

#: Iterations of the calibration loop.
_CALIBRATION_N = 2_000_000


def _env_float(variable):
    """``float(os.environ[variable])`` or ``None`` when unset/empty."""
    value = os.environ.get(variable)
    return float(value) if value else None


def machine_index(repeats=3):
    """Operations/sec of a fixed pure-Python loop (best of ``repeats``).

    Used to normalize committed-instructions/sec across machines of
    different single-core speed before applying the regression gate.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        total = 0
        for i in range(_CALIBRATION_N):
            total += i * i
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return _CALIBRATION_N / best


def measure_kernel(scale, repeats, block_engine, event_kernel=False):
    """Best-of-``repeats`` kernel throughput per workload, in-process.

    Workload preparation (functional execution + static analyses) is
    warmed outside the timed region: the benchmark isolates the
    cycle-level timing kernel.  ``block_engine`` and ``event_kernel``
    select the measured path explicitly — ``(False, False)`` is the PR3
    per-instruction fast path (the ``serial`` channel), ``(True,
    False)`` the block-at-a-time engine (the ``blocks`` channel), and
    ``(True, True)`` the event-calendar kernel (the ``event_kernel``
    channel) — so no channel depends on the ``REPRO_BLOCK_ENGINE`` or
    ``REPRO_EVENT_KERNEL`` process defaults.
    """
    from repro.experiments.runner import build_core
    from repro.polyflow import PAPER_CONFIG
    from repro.workloads import prepare_workload

    results = {}
    for name in WORKLOADS:
        prepared = prepare_workload(name, scale)
        instructions = len(prepared.trace)
        best = float("inf")
        for _ in range(repeats):
            core = build_core(
                name,
                POLICY,
                scale,
                PAPER_CONFIG,
                block_engine=block_engine,
                event_kernel=event_kernel,
            )
            started = time.perf_counter()
            stats = core.run()
            elapsed = time.perf_counter() - started
            if stats.retired_instructions != instructions:
                raise AssertionError(
                    "retired {} != trace length {}".format(
                        stats.retired_instructions, instructions
                    )
                )
            best = min(best, elapsed)
        results[name] = {
            "instructions": instructions,
            "seconds": best,
            "ips": instructions / best,
        }
    total_instructions = sum(entry["instructions"] for entry in results.values())
    total_seconds = sum(entry["seconds"] for entry in results.values())
    return {
        "per_workload": results,
        "instructions": total_instructions,
        "seconds": total_seconds,
        "aggregate_ips": total_instructions / total_seconds,
    }


def measure_serial(scale, repeats):
    """The ``serial`` channel: block engine off (PR3 fast path)."""
    return measure_kernel(scale, repeats, block_engine=False)


def _attach_speedups(measured, serial):
    """Annotate ``measured`` with per-workload/aggregate speedups over
    the ``serial`` channel.  Both channels are timed in the same
    process on the same machine, so the ratios are immune to the
    machine index."""
    speedups = {}
    for name, entry in measured["per_workload"].items():
        baseline = serial["per_workload"][name]
        entry["speedup_vs_serial"] = entry["ips"] / baseline["ips"]
        speedups[name] = entry["speedup_vs_serial"]
    measured["speedup_vs_serial"] = speedups
    measured["aggregate_speedup_vs_serial"] = (
        measured["aggregate_ips"] / serial["aggregate_ips"]
    )
    return measured


def measure_blocks(scale, repeats, serial):
    """The ``blocks`` channel: block engine on, with speedups vs serial."""
    return _attach_speedups(
        measure_kernel(scale, repeats, block_engine=True), serial
    )


def measure_event_kernel(scale, repeats, serial):
    """The ``event_kernel`` channel: event-calendar kernel over the
    block engine, with speedups vs serial."""
    return _attach_speedups(
        measure_kernel(scale, repeats, block_engine=True, event_kernel=True),
        serial,
    )


def measure_jobs(scale, jobs, repeats):
    """Best-of-``repeats`` end-to-end wall throughput under a fan-out.

    Each repeat builds a fresh :class:`ParallelExperimentRunner` (no
    disk cache) and prefetches the trio through the grid scheduler, so
    the measurement includes chunk planning and result transport.  The
    worker pool is the module-level warm pool: the first repeat pays
    any spin-up, later repeats reuse warm workers — the steady state a
    figure-generation run experiences.  On a single-core machine the
    scheduler short-circuits the pool and runs inline; the reported
    ``mode`` records which path was measured.
    """
    from repro.experiments import scheduler
    from repro.experiments.parallel import ParallelExperimentRunner
    from repro.workloads import prepare_workload

    total_instructions = sum(
        len(prepare_workload(name, scale).trace) for name in WORKLOADS
    )
    best = float("inf")
    mode = "inline"
    for _ in range(repeats):
        runner = ParallelExperimentRunner(
            scale=scale, workload_names=WORKLOADS, jobs=jobs
        )
        started = time.perf_counter()
        simulated = runner.prefetch([(name, POLICY) for name in WORKLOADS])
        elapsed = time.perf_counter() - started
        if simulated != len(WORKLOADS):
            raise AssertionError(
                "expected {} simulations, ran {}".format(len(WORKLOADS), simulated)
            )
        if runner.summary.chunks_shipped:
            mode = "pool"
        best = min(best, elapsed)
    return {
        "jobs": jobs,
        "cpus": scheduler.usable_cpus(),
        "mode": mode,
        "instructions": total_instructions,
        "wall_seconds": best,
        "ips": total_instructions / best,
    }


def measure_cache_hits(scale, repeats):
    """Best-of-``repeats`` wall time of a fully warm result-cache replay.

    Seeds a disk cache with the trio once, then measures fresh runners
    replaying the same grid entirely from cache (0 simulations).  This
    is the path every repeated figure-generation and CI smoke run
    takes; gating it keeps cache-load regressions from hiding behind a
    fast cold kernel.
    """
    from repro.experiments.parallel import ParallelExperimentRunner

    grid = [(name, POLICY) for name in WORKLOADS]
    with tempfile.TemporaryDirectory(prefix="polyflow-bench-cache-") as cache_dir:
        seed = ParallelExperimentRunner(
            scale=scale, workload_names=WORKLOADS, jobs=1, cache_dir=cache_dir
        )
        if seed.prefetch(grid) != len(WORKLOADS):
            raise AssertionError("cache seeding expected a cold run")
        best = float("inf")
        for _ in range(repeats):
            runner = ParallelExperimentRunner(
                scale=scale, workload_names=WORKLOADS, jobs=1, cache_dir=cache_dir
            )
            started = time.perf_counter()
            simulated = runner.prefetch(grid)
            elapsed = time.perf_counter() - started
            if simulated != 0:
                raise AssertionError(
                    "warm cache replay ran {} simulations".format(simulated)
                )
            if runner.summary.cache_hits != len(WORKLOADS):
                raise AssertionError(
                    "expected {} cache hits, saw {}".format(
                        len(WORKLOADS), runner.summary.cache_hits
                    )
                )
            best = min(best, elapsed)
    return {
        "entries": len(WORKLOADS),
        "wall_seconds": best,
        "loads_per_second": len(WORKLOADS) / best,
    }


def measure_gridbatch(scale, repeats=3, names=GRIDBATCH_NAMES):
    """The ``gridbatch`` channel: lockstep batch vs per-cell dispatch.

    Runs the same stratified synth grid (scenarios crossed with the
    sweep's spec column) through the per-cell
    ``scheduler.execute_job`` loop and through
    ``gridbatch.run_batch``, best-of-``repeats`` each, and verifies
    the two paths' stats are identical cell for cell.  One untimed
    per-cell pass warms traces, analyses, and block tables first, so
    the timed region compares steady-state dispatch — the state a
    figure-generation sweep runs in.
    """
    from repro.experiments import scheduler
    from repro.polyflow import PAPER_CONFIG
    from repro.sim import gridbatch
    from repro.spawn import canonical_spec
    from repro.workloads.synth import stratified_sample

    jobs = [
        (name, canonical_spec(spec), PAPER_CONFIG, None)
        for name in stratified_sample(names, GRIDBATCH_TOKEN)
        for spec in GRIDBATCH_SPECS
    ]

    def run_percell():
        return [
            scheduler.execute_job(name, spec, scale, config, distance)[0]
            for name, spec, config, distance in jobs
        ]

    def run_batched():
        return [outcome[0] for outcome in gridbatch.run_batch(jobs, scale)]

    run_percell()  # untimed warm-up
    per_seconds = batch_seconds = float("inf")
    per_stats = batch_stats = None
    for _ in range(repeats):
        started = time.perf_counter()
        per_stats = run_percell()
        per_seconds = min(per_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        batch_stats = run_batched()
        batch_seconds = min(batch_seconds, time.perf_counter() - started)
    identical = all(
        a.as_dict() == b.as_dict() for a, b in zip(per_stats, batch_stats)
    )
    return {
        "cells": len(jobs),
        "policy": POLICY,
        "token": GRIDBATCH_TOKEN,
        "per_cell": {
            "seconds": per_seconds,
            "cells_per_second": len(jobs) / per_seconds,
        },
        "batch": {
            "seconds": batch_seconds,
            "cells_per_second": len(jobs) / batch_seconds,
        },
        "speedup": per_seconds / batch_seconds,
        "stats_identical": identical,
    }


def measure_estimator(scale, cells=ESTIMATOR_CELLS):
    """The ``estimator`` channel: analytic error + triage telemetry.

    Sweeps a fixed stratified synth sample exactly, then scores the
    analytic estimator against it — per-spec mean absolute speedup
    error and champion-vs-challenger delta error — and runs the
    estimate-first triage over the same sample (its simulations replay
    from the runner's memo, so the triage itself costs nothing extra).
    Every stratum verdict the triage *certifies* is compared against
    the full exact sweep's verdict; any disagreement is a certificate
    bug and fails the gate.
    """
    from repro.analysis.estimate import estimate_row, mean_absolute_error
    from repro.experiments import synth_sweep
    from repro.experiments.parallel import ParallelExperimentRunner
    from repro.workloads.synth import stratified_sample, stratum_key

    names = stratified_sample(cells, ESTIMATOR_TOKEN)
    specs = synth_sweep.DEFAULT_SPECS
    runner = ParallelExperimentRunner(scale=scale, jobs=1)
    exact_rows = {
        row.name: row for row in synth_sweep.sweep(runner, names, specs)
    }

    mae = {}
    delta_pairs = []
    predictions = {}
    for name in names:
        predictions[name] = {
            spec: estimate.predicted_speedup
            for spec, estimate in estimate_row(
                name, specs, scale, runner.config
            ).items()
        }
    for spec in specs:
        mae[spec] = mean_absolute_error(
            (predictions[name][spec], exact_rows[name].speedups[spec])
            for name in names
        )
    for name in names:
        predicted_delta = predictions[name][specs[0]] - max(
            predictions[name][spec] for spec in specs[1:]
        )
        delta_pairs.append((predicted_delta, exact_rows[name].delta(specs)))

    report = synth_sweep.estimate_first_sweep(runner, names, specs)
    full_counts = {}
    for row in exact_rows.values():
        counts = full_counts.setdefault(
            stratum_key(row.name),
            {outcome: 0 for outcome in synth_sweep.OUTCOMES},
        )
        counts[row.outcome(specs)] += 1
    confirmed = [
        verdict
        for verdict in report.strata.values()
        if verdict.status == synth_sweep.CONFIRMED
    ]
    agreements = sum(
        1
        for verdict in confirmed
        if synth_sweep._dominant(full_counts[verdict.key]) == verdict.verdict
    )
    return {
        "cells": len(names),
        "specs": list(specs),
        "token": ESTIMATOR_TOKEN,
        "mae": mae,
        "mean_mae": sum(mae.values()) / len(mae),
        "delta_mae": mean_absolute_error(delta_pairs),
        "triage": {
            "simulated_cells": report.simulated_cells,
            "estimated_cells": report.estimated_cells,
            "budget_cells": report.budget_cells,
            "simulated_fraction": report.simulated_cells / len(names),
            "strata": len(report.strata),
            "confirmed_strata": len(confirmed),
            "confirmed_agreement": (
                agreements / len(confirmed) if confirmed else 1.0
            ),
        },
    }


def measure_fabric(
    scale, repeats=3, workers=FABRIC_WORKERS, names=FABRIC_NAMES
):
    """The ``fabric`` channel: sharded subprocess sweep vs serial.

    Runs the same stratified synth grid serially (``jobs=1``, no
    cache) and through ``workers`` subprocess fabric workers with a
    cold shared store, best-of-``repeats`` each, and verifies the two
    paths' stats cell for cell.  Every fabric repeat gets a fresh
    store (so no repeat is answered from a warm store) and a fresh
    fleet, warmed *before* the timed region — the measurement is
    steady-state dispatch + simulation + store publish, not Python
    interpreter startup.
    """
    from repro.experiments import scheduler
    from repro.experiments.parallel import ParallelExperimentRunner
    from repro.workloads.synth import stratified_sample

    grid = [
        (name, spec)
        for name in stratified_sample(names, FABRIC_TOKEN)
        for spec in FABRIC_SPECS
    ]
    cells = len(grid)

    serial_seconds = float("inf")
    serial_runner = None
    for _ in range(repeats):
        runner = ParallelExperimentRunner(scale=scale, jobs=1)
        started = time.perf_counter()
        if runner.prefetch(grid) != cells:
            raise AssertionError("serial fabric baseline expected a cold run")
        serial_seconds = min(serial_seconds, time.perf_counter() - started)
        serial_runner = runner

    fabric_seconds = float("inf")
    identical = True
    published = 0
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(
            prefix="polyflow-bench-fabric-"
        ) as store_parent:
            runner = ParallelExperimentRunner(
                scale=scale,
                fabric_workers=workers,
                fabric_store=os.path.join(store_parent, "store"),
            )
            try:
                runner.warm_fabric()
                started = time.perf_counter()
                simulated = runner.prefetch(grid)
                elapsed = time.perf_counter() - started
            finally:
                runner.shutdown_fabric()
            if simulated != cells:
                raise AssertionError(
                    "fabric sweep expected {} simulations, ran {}".format(
                        cells, simulated
                    )
                )
            fabric_seconds = min(fabric_seconds, elapsed)
            identical = identical and all(
                scheduler.pack_stats(runner.run_policy(name, spec))
                == scheduler.pack_stats(serial_runner.run_policy(name, spec))
                for name, spec in grid
            )
            published = runner.summary.fabric.get("worker_store_publishes", 0)

    cpus = scheduler.usable_cpus()
    return {
        "workers": workers,
        "cells": cells,
        "specs": list(FABRIC_SPECS),
        "token": FABRIC_TOKEN,
        "cpus": cpus,
        "mode": "multi-core" if cpus >= 2 else "single-core",
        "serial_seconds": serial_seconds,
        "fabric_seconds": fabric_seconds,
        "cells_per_second": cells / fabric_seconds,
        "speedup_vs_serial": serial_seconds / fabric_seconds,
        "stats_identical": identical,
        "store_published": published,
    }


def run_benchmark(
    scale, repeats, jobs, jobs_repeats=3, skip_jobs=False, skip_cache=False
):
    """One full measurement: calibration, serial trio (engine off),
    blocks trio (engine on), jobs fan-out, warm-cache replay, and the
    derived parallel-efficiency ratio."""
    report = {
        "schema": SCHEMA,
        "workloads": list(WORKLOADS),
        "policy": POLICY,
        "scale": scale,
        "repeats": repeats,
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "machine_index": machine_index(),
        "serial": measure_serial(scale, repeats),
    }
    report["blocks"] = measure_blocks(scale, repeats, report["serial"])
    report["event_kernel"] = measure_event_kernel(
        scale, repeats, report["serial"]
    )
    report["gridbatch"] = measure_gridbatch(scale)
    report["estimator"] = measure_estimator(scale)
    report["fabric"] = measure_fabric(scale, jobs_repeats)
    if not skip_jobs:
        report["jobs4"] = measure_jobs(scale, jobs, jobs_repeats)
        report["efficiency"] = {
            "ratio": report["serial"]["seconds"]
            / report["jobs4"]["wall_seconds"],
            "mode": report["jobs4"]["mode"],
            "cpus": report["jobs4"]["cpus"],
        }
    if not skip_cache:
        report["cache_hit"] = measure_cache_hits(scale, jobs_repeats)
    return report


def speedup_vs_baseline(report, baseline):
    """Normalized serial/jobs4 speedups of ``report`` over ``baseline``."""
    speedups = {}
    ratio = report["machine_index"] / baseline["machine_index"]
    speedups["serial"] = (
        report["serial"]["aggregate_ips"]
        / baseline["serial"]["aggregate_ips"]
        / ratio
    )
    if "blocks" in report and "blocks" in baseline:
        speedups["blocks"] = (
            report["blocks"]["aggregate_ips"]
            / baseline["blocks"]["aggregate_ips"]
            / ratio
        )
    if "event_kernel" in report and "event_kernel" in baseline:
        speedups["event_kernel"] = (
            report["event_kernel"]["aggregate_ips"]
            / baseline["event_kernel"]["aggregate_ips"]
            / ratio
        )
    if "jobs4" in report and "jobs4" in baseline:
        speedups["jobs4"] = (
            report["jobs4"]["ips"] / baseline["jobs4"]["ips"] / ratio
        )
    if "cache_hit" in report and "cache_hit" in baseline:
        speedups["cache_hit"] = (
            report["cache_hit"]["loads_per_second"]
            / baseline["cache_hit"]["loads_per_second"]
            / ratio
        )
    if "gridbatch" in report and "gridbatch" in baseline:
        speedups["gridbatch"] = (
            report["gridbatch"]["batch"]["cells_per_second"]
            / baseline["gridbatch"]["batch"]["cells_per_second"]
            / ratio
        )
    if (
        "fabric" in report
        and "fabric" in baseline
        and report["fabric"].get("mode") == baseline["fabric"].get("mode")
    ):
        speedups["fabric"] = (
            report["fabric"]["cells_per_second"]
            / baseline["fabric"]["cells_per_second"]
            / ratio
        )
    return speedups


def check_schema(report, reference, reference_path):
    """Baseline-freshness gate.  Returns failure strings (empty = pass).

    A baseline emitted by an older harness is missing whole channels;
    comparing against it would either KeyError or silently skip gates.
    Name each missing channel and how to fix it instead.
    """
    failures = []
    reference_schema = reference.get("schema", 0)
    for channel in (
        "serial",
        "blocks",
        "event_kernel",
        "gridbatch",
        "estimator",
        "fabric",
    ):
        if channel in report and channel not in reference:
            failures.append(
                "baseline {} (schema {}) predates schema {}: it has no "
                "'{}' channel — regenerate it with "
                "'bench_kernel.py --output {}'".format(
                    reference_path,
                    reference_schema,
                    report["schema"],
                    channel,
                    reference_path,
                )
            )
    return failures


def check_regression(report, reference, tolerance):
    """Gate: normalized throughput must not trail ``reference`` by more
    than ``tolerance``.  Returns a list of failure strings (empty = pass).
    """
    failures = []
    ratio = report["machine_index"] / reference["machine_index"]
    checks = [
        (
            "serial",
            report["serial"]["aggregate_ips"],
            reference["serial"]["aggregate_ips"],
        )
    ]
    if "blocks" in report and "blocks" in reference:
        checks.append(
            (
                "blocks",
                report["blocks"]["aggregate_ips"],
                reference["blocks"]["aggregate_ips"],
            )
        )
    if "event_kernel" in report and "event_kernel" in reference:
        checks.append(
            (
                "event_kernel",
                report["event_kernel"]["aggregate_ips"],
                reference["event_kernel"]["aggregate_ips"],
            )
        )
    if "jobs4" in report and "jobs4" in reference:
        checks.append(("jobs4", report["jobs4"]["ips"], reference["jobs4"]["ips"]))
    if "cache_hit" in report and "cache_hit" in reference:
        checks.append(
            (
                "cache_hit",
                report["cache_hit"]["loads_per_second"],
                reference["cache_hit"]["loads_per_second"],
            )
        )
    if "gridbatch" in report and "gridbatch" in reference:
        checks.append(
            (
                "gridbatch",
                report["gridbatch"]["batch"]["cells_per_second"],
                reference["gridbatch"]["batch"]["cells_per_second"],
            )
        )
    if (
        "fabric" in report
        and "fabric" in reference
        and report["fabric"].get("mode") == reference["fabric"].get("mode")
    ):
        # Fabric cells/sec depends on how many cores the fleet spans;
        # the machine index measures single-core speed only, so the
        # channel is comparable only between same-mode reports.
        checks.append(
            (
                "fabric",
                report["fabric"]["cells_per_second"],
                reference["fabric"]["cells_per_second"],
            )
        )
    for label, measured, expected in checks:
        normalized = measured / ratio
        floor = expected * (1.0 - tolerance)
        if normalized < floor:
            failures.append(
                "{}: normalized {:.0f} ips < floor {:.0f} ips "
                "(reference {:.0f}, tolerance {:.0%}, machine ratio {:.2f})".format(
                    label, normalized, floor, expected, tolerance, ratio
                )
            )
    return failures


def check_efficiency(
    report,
    floor=DEFAULT_EFFICIENCY_FLOOR,
    single_core_floor=SINGLE_CORE_EFFICIENCY_FLOOR,
):
    """Parallel-efficiency gate.  Returns failure strings (empty = pass).

    ``efficiency.ratio`` is serial wall / jobs4 wall.  In ``pool`` mode
    (≥2 usable CPUs) the fan-out must beat serial by ``floor``; in
    ``inline`` mode (single core — the pool is short-circuited because
    parallelism cannot help) the scheduler's bookkeeping overhead is
    bounded by ``single_core_floor`` instead.
    """
    efficiency = report.get("efficiency")
    if efficiency is None:
        return []
    ratio = efficiency["ratio"]
    if efficiency["mode"] == "pool":
        if ratio < floor:
            return [
                "parallel efficiency: jobs4 is only {:.2f}x serial wall-clock "
                "on {} CPUs (floor {:.2f}x)".format(
                    ratio, efficiency["cpus"], floor
                )
            ]
    elif ratio < single_core_floor:
        return [
            "parallel efficiency: inline short-circuit ran {:.2f}x serial "
            "on a single core (overhead floor {:.2f}x)".format(
                ratio, single_core_floor
            )
        ]
    return []


def floor_for(floors, name):
    """The floor applying to ``name``: per-workload dict or uniform.

    A workload missing from a per-workload dict (e.g. a future trio
    change whose honest floor has not been measured yet) falls back to
    the laxest listed floor rather than silently passing.
    """
    if isinstance(floors, dict):
        return floors.get(name, min(floors.values()))
    return floors


def check_channel_speedups(report, channel, floors):
    """Per-workload speedup-vs-serial gate for one engine channel.

    Every workload's ``channel``/serial speedup must be at least its
    floor — ``floors`` is either one uniform number (the env-override
    path) or a per-workload dict of honest measured floors.  Both
    channels are measured in the same process on the same machine, so
    the ratio needs no machine-index normalization.  Returns failure
    strings (empty = pass).
    """
    measured = report.get(channel)
    if measured is None:
        return []
    failures = []
    for name, speedup in measured.get("speedup_vs_serial", {}).items():
        floor = floor_for(floors, name)
        if speedup < floor:
            failures.append(
                "{}: {} speedup {:.2f}x < floor {:.2f}x "
                "vs the per-instruction serial channel".format(
                    channel, name, speedup, floor
                )
            )
    return failures


def check_blocks(report, floor=None):
    """Block-engine gate (see :func:`check_channel_speedups`)."""
    floors = DEFAULT_BLOCKS_FLOORS if floor is None else floor
    return check_channel_speedups(report, "blocks", floors)


def check_event_kernel(report, floor=None):
    """Event-kernel gate (see :func:`check_channel_speedups`)."""
    floors = DEFAULT_EVENT_KERNEL_FLOORS if floor is None else floor
    return check_channel_speedups(report, "event_kernel", floors)


def check_gridbatch(report, floor=None):
    """Grid-batch gate: byte-identical stats and a cells/sec floor."""
    measured = report.get("gridbatch")
    if measured is None:
        return []
    if floor is None:
        floor = DEFAULT_GRIDBATCH_FLOOR
    failures = []
    if not measured.get("stats_identical", False):
        failures.append(
            "gridbatch: lockstep batch stats diverged from the per-cell "
            "path (byte-identity is the runner's core invariant)"
        )
    if measured["speedup"] < floor:
        failures.append(
            "gridbatch: batch ran {:.2f}x per-cell dispatch on {} cells "
            "(floor {:.2f}x)".format(
                measured["speedup"], measured["cells"], floor
            )
        )
    return failures


def check_fabric(report, floor=None):
    """Fabric gate: placement invariance plus a multi-core speedup floor.

    The byte-identity check applies in every mode — sharded execution
    must reproduce the serial sweep exactly, wherever the cells landed.
    The wall-clock floor applies only in multi-core mode: two worker
    processes timesharing a single core cannot beat the serial sweep,
    so single-core runs record their ratio without gating it.
    """
    measured = report.get("fabric")
    if measured is None:
        return []
    if floor is None:
        floor = DEFAULT_FABRIC_FLOOR
    failures = []
    if not measured.get("stats_identical", False):
        failures.append(
            "fabric: sharded worker results diverged from the serial "
            "sweep (placement invariance is the fabric's core claim)"
        )
    if (
        measured.get("mode") == "multi-core"
        and measured["speedup_vs_serial"] < floor
    ):
        failures.append(
            "fabric: {}-worker sweep ran {:.2f}x serial wall-clock over "
            "{} cells on {} CPUs (floor {:.2f}x)".format(
                measured["workers"],
                measured["speedup_vs_serial"],
                measured["cells"],
                measured["cpus"],
                floor,
            )
        )
    return failures


def check_estimator(report, mae_ceiling=None):
    """Estimator gate: error ceiling, triage budget, certificates."""
    measured = report.get("estimator")
    if measured is None:
        return []
    if mae_ceiling is None:
        mae_ceiling = DEFAULT_ESTIMATOR_MAE_CEILING
    failures = []
    if measured["mean_mae"] > mae_ceiling:
        failures.append(
            "estimator: mean absolute speedup error {:.1f} points > "
            "ceiling {:.1f} over {} cells".format(
                measured["mean_mae"], mae_ceiling, measured["cells"]
            )
        )
    triage = measured.get("triage", {})
    if triage.get("simulated_cells", 0) > triage.get("budget_cells", 0):
        failures.append(
            "estimator: triage simulated {} cells over its budget of "
            "{}".format(triage["simulated_cells"], triage["budget_cells"])
        )
    if triage.get("confirmed_agreement", 1.0) < 1.0:
        failures.append(
            "estimator: a certified stratum verdict disagreed with the "
            "full exact sweep ({}% agreement) — the certificate "
            "guarantee is broken".format(
                round(100 * triage["confirmed_agreement"])
            )
        )
    return failures


def render(report):
    lines = [
        "kernel throughput (scale {}, policy {}):".format(
            report["scale"], report["policy"]
        )
    ]
    for name, entry in report["serial"]["per_workload"].items():
        lines.append(
            "  {:>8}  {:>8} instr  {:>7.3f}s  {:>9.0f} ips".format(
                name, entry["instructions"], entry["seconds"], entry["ips"]
            )
        )
    lines.append(
        "  {:>8}  {:>8} instr  {:>7.3f}s  {:>9.0f} ips".format(
            "serial",
            report["serial"]["instructions"],
            report["serial"]["seconds"],
            report["serial"]["aggregate_ips"],
        )
    )
    for channel, label in (("blocks", "block engine"), ("event_kernel", "event kernel")):
        if channel not in report:
            continue
        measured = report[channel]
        for name, entry in measured["per_workload"].items():
            lines.append(
                "  {:>8}  {:>8} instr  {:>7.3f}s  {:>9.0f} ips "
                "({:.2f}x serial, {})".format(
                    name,
                    entry["instructions"],
                    entry["seconds"],
                    entry["ips"],
                    entry["speedup_vs_serial"],
                    label,
                )
            )
        lines.append(
            "  {:>8}  {:>8} instr  {:>7.3f}s  {:>9.0f} ips "
            "({:.2f}x serial aggregate)".format(
                channel,
                measured["instructions"],
                measured["seconds"],
                measured["aggregate_ips"],
                measured["aggregate_speedup_vs_serial"],
            )
        )
    if "jobs4" in report:
        jobs = report["jobs4"]
        lines.append(
            "  {:>8}  {:>8} instr  {:>7.3f}s  {:>9.0f} ips "
            "(end-to-end, --jobs {}, {} mode on {} CPUs)".format(
                "jobs4",
                jobs["instructions"],
                jobs["wall_seconds"],
                jobs["ips"],
                jobs["jobs"],
                jobs.get("mode", "pool"),
                jobs.get("cpus", "?"),
            )
        )
    if "efficiency" in report:
        lines.append(
            "  parallel efficiency: {:.2f}x serial wall-clock ({} mode)".format(
                report["efficiency"]["ratio"], report["efficiency"]["mode"]
            )
        )
    if "cache_hit" in report:
        cache = report["cache_hit"]
        lines.append(
            "  cache-hit replay: {} entries in {:.4f}s ({:.0f} loads/s)".format(
                cache["entries"], cache["wall_seconds"], cache["loads_per_second"]
            )
        )
    if "gridbatch" in report:
        grid = report["gridbatch"]
        lines.append(
            "  grid-batch: {} cells, {:.1f} cells/s lockstep vs {:.1f} "
            "per-cell ({:.2f}x, stats {})".format(
                grid["cells"],
                grid["batch"]["cells_per_second"],
                grid["per_cell"]["cells_per_second"],
                grid["speedup"],
                "identical" if grid["stats_identical"] else "DIVERGED",
            )
        )
    if "estimator" in report:
        est = report["estimator"]
        triage = est["triage"]
        lines.append(
            "  estimator: {:.1f} points mean |error| over {} cells "
            "(delta error {:.1f}); triage simulated {}/{} cells "
            "(budget {}), certified {}/{} strata at {:.0%} agreement".format(
                est["mean_mae"],
                est["cells"],
                est["delta_mae"],
                triage["simulated_cells"],
                est["cells"],
                triage["budget_cells"],
                triage["confirmed_strata"],
                triage["strata"],
                triage["confirmed_agreement"],
            )
        )
    if "fabric" in report:
        fabric = report["fabric"]
        lines.append(
            "  fabric: {} cells across {} workers in {:.3f}s vs {:.3f}s "
            "serial ({:.2f}x, {} mode, stats {}, {} published)".format(
                fabric["cells"],
                fabric["workers"],
                fabric["fabric_seconds"],
                fabric["serial_seconds"],
                fabric["speedup_vs_serial"],
                fabric["mode"],
                "identical" if fabric["stats_identical"] else "DIVERGED",
                fabric["store_published"],
            )
        )
    if "speedup_vs_baseline" in report:
        lines.append(
            "  vs baseline: "
            + ", ".join(
                "{} {:.2f}x".format(label, value)
                for label, value in report["speedup_vs_baseline"].items()
            )
        )
    lines.append("  machine index: {:.0f}".format(report["machine_index"]))
    return "\n".join(lines)


def render_markdown_summary(report):
    """Machine-index-normalized throughput as a Markdown table.

    Written to ``--summary-md`` (CI points it at ``$GITHUB_STEP_SUMMARY``)
    so every benchmark run surfaces serial and jobs4 throughput plus the
    efficiency ratio without downloading the artifact.
    """
    index = report["machine_index"]
    lines = [
        "### PolyFlow kernel benchmark (scale {}, policy {})".format(
            report["scale"], report["policy"]
        ),
        "",
        "| metric | raw | normalized (ips / machine index) |",
        "|---|---:|---:|",
        "| serial throughput (block engine off) | {:.0f} ips | {:.6f} |".format(
            report["serial"]["aggregate_ips"],
            report["serial"]["aggregate_ips"] / index,
        ),
    ]
    for channel, label in (("blocks", "block-engine"), ("event_kernel", "event-kernel")):
        if channel not in report:
            continue
        measured = report[channel]
        lines.append(
            "| {} throughput ({:.2f}x serial) | {:.0f} ips | {:.6f} |".format(
                label,
                measured["aggregate_speedup_vs_serial"],
                measured["aggregate_ips"],
                measured["aggregate_ips"] / index,
            )
        )
        for name, speedup in sorted(measured.get("speedup_vs_serial", {}).items()):
            lines.append(
                "| {} speedup: {} | {:.2f}x | — |".format(label, name, speedup)
            )
    if "jobs4" in report:
        jobs = report["jobs4"]
        lines.append(
            "| `--jobs {}` throughput ({} mode, {} CPUs) | {:.0f} ips | {:.6f} |".format(
                jobs["jobs"], jobs["mode"], jobs["cpus"], jobs["ips"], jobs["ips"] / index
            )
        )
    if "efficiency" in report:
        lines.append(
            "| parallel efficiency (serial wall / jobs4 wall) | {:.2f}x | — |".format(
                report["efficiency"]["ratio"]
            )
        )
    if "cache_hit" in report:
        cache = report["cache_hit"]
        lines.append(
            "| warm cache replay | {:.0f} loads/s | {:.6f} |".format(
                cache["loads_per_second"], cache["loads_per_second"] / index
            )
        )
    if "gridbatch" in report:
        grid = report["gridbatch"]
        lines.append(
            "| grid-batch lockstep ({:.2f}x per-cell, {} cells) "
            "| {:.1f} cells/s | {:.6f} |".format(
                grid["speedup"],
                grid["cells"],
                grid["batch"]["cells_per_second"],
                grid["batch"]["cells_per_second"] / index,
            )
        )
    if "fabric" in report:
        fabric = report["fabric"]
        lines.append(
            "| fabric sweep ({} workers, {} mode, {:.2f}x serial) "
            "| {:.1f} cells/s | {:.6f} |".format(
                fabric["workers"],
                fabric["mode"],
                fabric["speedup_vs_serial"],
                fabric["cells_per_second"],
                fabric["cells_per_second"] / index,
            )
        )
    if "estimator" in report:
        est = report["estimator"]
        lines.append(
            "| estimator error ({} cells) | {:.1f} points | — |".format(
                est["cells"], est["mean_mae"]
            )
        )
        lines.append(
            "| estimate-first triage | {}/{} cells simulated, "
            "{}/{} strata certified | — |".format(
                est["triage"]["simulated_cells"],
                est["cells"],
                est["triage"]["confirmed_strata"],
                est["triage"]["strata"],
            )
        )
    lines.append(
        "| machine index | {:.0f} ops/s | 1 |".format(index)
    )
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument(
        "--skip-jobs", action="store_true", help="skip the --jobs fan-out measurement"
    )
    parser.add_argument(
        "--skip-cache",
        action="store_true",
        help="skip the warm cache-hit replay measurement",
    )
    parser.add_argument("--output", help="write the report JSON here")
    parser.add_argument(
        "--summary-md",
        help="append a Markdown summary table here (CI: $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--efficiency-output",
        help="write the parallel-efficiency section as JSON here "
        "(uploaded as a CI artifact next to the full report)",
    )
    parser.add_argument(
        "--baseline",
        help="a previous report; its numbers are embedded under 'baseline' "
        "and normalized speedups are computed",
    )
    parser.add_argument(
        "--check",
        help="a reference report (the checked-in BENCH_polyflow.json); "
        "exit non-zero when normalized throughput regresses beyond "
        "the tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional regression for --check (default 0.15; "
        "env BENCH_GATE_TOLERANCE overrides)",
    )
    parser.add_argument(
        "--efficiency-floor",
        type=float,
        default=float(
            os.environ.get("BENCH_EFFICIENCY_FLOOR", DEFAULT_EFFICIENCY_FLOOR)
        ),
        help="jobs4 must beat serial wall-clock by this factor on "
        "multi-core machines (default 1.2; env BENCH_EFFICIENCY_FLOOR "
        "overrides)",
    )
    parser.add_argument(
        "--blocks-floor",
        type=float,
        default=_env_float("BENCH_BLOCKS_FLOOR"),
        help="uniform blocks/serial speedup floor for --check; default "
        "is the per-workload dict {} (env BENCH_BLOCKS_FLOOR "
        "overrides)".format(DEFAULT_BLOCKS_FLOORS),
    )
    parser.add_argument(
        "--event-kernel-floor",
        type=float,
        default=_env_float("BENCH_EVENT_KERNEL_FLOOR"),
        help="uniform event-kernel/serial speedup floor for --check; "
        "default is the per-workload dict {} (env "
        "BENCH_EVENT_KERNEL_FLOOR overrides)".format(
            DEFAULT_EVENT_KERNEL_FLOORS
        ),
    )
    parser.add_argument(
        "--gridbatch-floor",
        type=float,
        default=float(
            os.environ.get("BENCH_GRIDBATCH_FLOOR", DEFAULT_GRIDBATCH_FLOOR)
        ),
        help="minimum run_batch/per-cell cells/sec speedup for --check "
        "(default {}; env BENCH_GRIDBATCH_FLOOR overrides)".format(
            DEFAULT_GRIDBATCH_FLOOR
        ),
    )
    parser.add_argument(
        "--fabric-floor",
        type=float,
        default=float(
            os.environ.get("BENCH_FABRIC_FLOOR", DEFAULT_FABRIC_FLOOR)
        ),
        help="minimum fabric/serial wall speedup on multi-core machines "
        "for --check (default {}; single-core runs gate byte-identity "
        "only; env BENCH_FABRIC_FLOOR overrides)".format(
            DEFAULT_FABRIC_FLOOR
        ),
    )
    parser.add_argument(
        "--estimator-mae-ceiling",
        type=float,
        default=float(
            os.environ.get(
                "BENCH_ESTIMATOR_MAE_CEILING", DEFAULT_ESTIMATOR_MAE_CEILING
            )
        ),
        help="maximum mean absolute estimator speedup error for --check "
        "(default {}; env BENCH_ESTIMATOR_MAE_CEILING overrides)".format(
            DEFAULT_ESTIMATOR_MAE_CEILING
        ),
    )
    arguments = parser.parse_args(argv)

    report = run_benchmark(
        arguments.scale,
        arguments.repeats,
        arguments.jobs,
        skip_jobs=arguments.skip_jobs,
        skip_cache=arguments.skip_cache,
    )

    if arguments.baseline:
        with open(arguments.baseline) as handle:
            baseline = json.load(handle)
        report["baseline"] = baseline
        report["speedup_vs_baseline"] = speedup_vs_baseline(report, baseline)

    print(render(report))

    if arguments.output:
        with open(arguments.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote {}".format(arguments.output))

    if arguments.summary_md:
        with open(arguments.summary_md, "a") as handle:
            handle.write(render_markdown_summary(report))
        print("appended summary to {}".format(arguments.summary_md))

    if arguments.efficiency_output and "efficiency" in report:
        with open(arguments.efficiency_output, "w") as handle:
            json.dump(report["efficiency"], handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote {}".format(arguments.efficiency_output))

    if arguments.check:
        with open(arguments.check) as handle:
            reference = json.load(handle)
        failures = check_schema(report, reference, arguments.check)
        if not failures:
            failures = check_regression(report, reference, arguments.tolerance)
            failures.extend(check_efficiency(report, arguments.efficiency_floor))
            failures.extend(check_blocks(report, arguments.blocks_floor))
            failures.extend(
                check_event_kernel(report, arguments.event_kernel_floor)
            )
            failures.extend(check_gridbatch(report, arguments.gridbatch_floor))
            failures.extend(
                check_estimator(report, arguments.estimator_mae_ceiling)
            )
            failures.extend(check_fabric(report, arguments.fabric_floor))
        if failures:
            for failure in failures:
                print("REGRESSION {}".format(failure), file=sys.stderr)
            return 1
        print(
            "gates passed (tolerance {:.0%}, efficiency floor {:.2f}x, "
            "blocks floors {}, event-kernel floors {}, gridbatch floor "
            "{:.2f}x, estimator ceiling {:.1f}, fabric floor {:.2f}x "
            "vs {})".format(
                arguments.tolerance,
                arguments.efficiency_floor,
                arguments.blocks_floor
                if arguments.blocks_floor is not None
                else DEFAULT_BLOCKS_FLOORS,
                arguments.event_kernel_floor
                if arguments.event_kernel_floor is not None
                else DEFAULT_EVENT_KERNEL_FLOORS,
                arguments.gridbatch_floor,
                arguments.estimator_mae_ceiling,
                arguments.fabric_floor,
                arguments.check,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
