"""Figure 9: individual heuristic policies vs control-equivalent spawning."""

from repro.experiments import figure9


def test_fig9_individual_heuristics(benchmark, runner):
    result = benchmark.pedantic(figure9, args=(runner,), rounds=1, iterations=1)
    print()
    print(result.render())

    average = result.speedups["Average"]

    # Control-equivalent spawning wins on average, by a wide margin.
    best_individual = result.best_individual_average()
    assert average["postdoms"] > best_individual
    assert average["postdoms"] > 1.4 * max(best_individual, 1.0)

    # Per-benchmark winners the paper calls out:
    # vortex and gap respond to procedure fall-throughs...
    assert (
        max(result.speedups["vortex"], key=result.speedups["vortex"].get)
        in ("procFT", "postdoms")
    )
    by_gap = {s: v for s, v in result.speedups["gap"].items() if s != "postdoms"}
    assert max(by_gap, key=by_gap.get) == "procFT"
    # ... mcf speeds up with hammocks where other heuristics had little
    # impact ...
    by_mcf = {s: v for s, v in result.speedups["mcf"].items() if s != "postdoms"}
    assert max(by_mcf, key=by_mcf.get) == "hammock"
    # ... in perlbmk, "other" spawns are better than the remaining
    # heuristics are for most benchmarks ...
    assert result.speedups["perlbmk"]["other"] > 5.0
    # ... twolf contains inner- and outer-loop parallelism ...
    assert result.speedups["twolf"]["loop"] > 10.0
    assert result.speedups["twolf"]["loopFT"] > 10.0
    # ... and vpr.route is receptive to loop fall-throughs.
    by_route = {
        s: v for s, v in result.speedups["vpr.route"].items() if s != "postdoms"
    }
    assert max(by_route, key=by_route.get) == "loopFT"

    # "Control-equivalent spawning either outperforms or comes close to
    # the best individual heuristic for each individual benchmark."
    for name in runner.workload_names:
        best = max(result.speedups[name][s] for s in result.specs if s != "postdoms")
        postdoms = result.speedups[name]["postdoms"]
        assert postdoms >= best - max(10.0, 0.35 * abs(best))
