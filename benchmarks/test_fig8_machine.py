"""Figure 8: machine configuration, plus a baseline-IPC sanity table."""

from repro.experiments import figure8
from repro.experiments.paper_data import FIGURE9_SUPERSCALAR_IPC


def test_fig8_machine_configuration(benchmark, runner):
    rendered = benchmark.pedantic(figure8, rounds=1, iterations=1)
    print()
    print(rendered)
    assert "8 instrs/cycle" in rendered
    assert "512 entries" in rendered

    # Superscalar IPCs land in a plausible band around the paper's
    # (Figure 9 x-axis annotations); the substrate differs, so only the
    # broad range is checked.
    print()
    print("benchmark    measured IPC   paper IPC")
    for name in runner.workload_names:
        ipc = runner.baseline(name).ipc
        print("{:12s} {:12.2f} {:11.2f}".format(name, ipc, FIGURE9_SUPERSCALAR_IPC[name]))
        assert 0.2 < ipc < 8.0
