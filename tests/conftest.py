"""Shared pytest configuration for the repro test suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden trace files under tests/obs/golden/ "
        "instead of comparing against them",
    )
