"""Shared pytest configuration for the repro test suite.

Registers the Hypothesis profiles:

* ``dev`` (default) — the per-test tuned example budgets, random seeds;
  what tier-1 CI and local runs use.
* ``ci-long`` — the nightly sweep: every test's example budget is
  multiplied 10x (see :func:`tests.helpers.examples`), the run is
  derandomized (fixed seed derived from each test, so nightly failures
  reproduce exactly), and failing examples print their reproduction
  blob.  Select with ``HYPOTHESIS_PROFILE=ci-long``.
"""

from hypothesis import settings

from tests.helpers import HYPOTHESIS_PROFILE

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci-long",
    deadline=None,
    derandomize=True,
    print_blob=True,
)
settings.load_profile(HYPOTHESIS_PROFILE)


def _profile_banner():
    profile = settings()
    return (
        "hypothesis: profile={} derandomize={} (ci-long pins the seed "
        "per-test and scales example budgets 10x)".format(
            HYPOTHESIS_PROFILE, profile.derandomize
        )
    )


def pytest_report_header(config):
    return _profile_banner()


def pytest_configure(config):
    # The repo's addopts default to -q, which suppresses the report
    # header; a non-default profile must still be visible in CI logs,
    # so print the banner unconditionally there.
    if HYPOTHESIS_PROFILE != "dev":
        print(_profile_banner())


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden trace files under tests/obs/golden/ "
        "instead of comparing against them",
    )
