"""Tests for the spawn-point profiler and hint table."""

from repro.cfg import build_program_cfgs
from repro.isa import assemble
from repro.sim import run_program
from repro.spawn import SpawnAnalysis, profile_spawn_points

_SOURCE = """
    .text
    main:
        li   r10, 5
    loop:
        bne  r2, r0, else_arm
    then_arm:
        addi r3, r3, 1
        j    join
    else_arm:
        addi r4, r4, 2
    join:
        addi r10, r10, -1
        bne  r10, r0, loop
    done:
        halt
"""


def _setup():
    program = assemble(_SOURCE)
    trace = run_program(program)
    analysis = SpawnAnalysis(build_program_cfgs(program))
    return program, trace, analysis


def test_profile_counts_occurrences():
    program, trace, analysis = _setup()
    policy = analysis.policy("postdoms")
    profile = profile_spawn_points(trace, policy.points)
    hammock = policy.spawn_for(program.address_of("loop"))
    point_profile = profile.of_point(hammock)
    assert point_profile.occurrences == 5
    assert point_profile.reachable_occurrences == 5
    assert point_profile.reachability == 1.0


def test_profile_distances():
    program, trace, analysis = _setup()
    policy = analysis.policy("postdoms")
    profile = profile_spawn_points(trace, policy.points)
    hammock = policy.spawn_for(program.address_of("loop"))
    point_profile = profile.of_point(hammock)
    # r2 == 0 so the then arm runs: bne -> addi -> j -> join = 3.
    assert point_profile.mean_distance == 3.0


def test_profile_write_sets():
    program, trace, analysis = _setup()
    policy = analysis.policy("postdoms")
    profile = profile_spawn_points(trace, policy.points)
    hammock = policy.spawn_for(program.address_of("loop"))
    entry = profile.of_point(hammock).to_hint_entry()
    # The then arm writes r3; r4 (else arm) is never executed.
    assert entry.protects_register(3)
    assert not entry.protects_register(4)
    assert not entry.protects_register(10)


def test_loop_branch_distance_grows_with_remaining_iterations():
    program, trace, analysis = _setup()
    policy = analysis.policy("postdoms")
    profile = profile_spawn_points(trace, policy.points)
    loop_branch_pc = program.address_of("join") + 4
    loop_ft = policy.spawn_for(loop_branch_pc)
    point_profile = profile.of_point(loop_ft)
    # 'done' appears once at the end, but it is *eventually* reachable
    # from every loop-branch occurrence, at growing distance: the mean
    # distance is the average over the remaining iterations.
    assert point_profile.occurrences == 5
    assert point_profile.reachable_occurrences == 5
    # One iteration is 5 instructions; last occurrence is 1 away.
    assert point_profile.mean_distance == (1 + 6 + 11 + 16 + 21) / 5

    # A tight distance cap keeps only the final-iteration occurrence.
    capped = profile_spawn_points(trace, policy.points, max_distance=5)
    capped_profile = capped.of_point(loop_ft)
    assert capped_profile.reachable_occurrences == 1


def test_hint_table_filters_unobserved_points():
    program, trace, analysis = _setup()
    policy = analysis.policy("postdoms")
    profile = profile_spawn_points(trace, policy.points)
    table = profile.hint_table(policy)
    # The hammock point is present.
    assert table.lookup(program.address_of("loop")) is not None
    entries = table.entries()
    assert all(entry.occurrence_count >= 1 for entry in entries)


def test_max_distance_cap():
    program, trace, analysis = _setup()
    policy = analysis.policy("postdoms")
    profile = profile_spawn_points(trace, policy.points, max_distance=2)
    hammock = policy.spawn_for(program.address_of("loop"))
    point_profile = profile.of_point(hammock)
    # Distance is 3, above the cap of 2.
    assert point_profile.reachable_occurrences == 0
    table = profile.hint_table(policy)
    assert table.lookup(program.address_of("loop")) is None
