"""Tests for spawn policies and loop-iteration spawns."""

import pytest

from repro.cfg import build_program_cfgs
from repro.errors import ConfigurationError
from repro.isa import assemble
from repro.spawn import SpawnAnalysis, SpawnCategory, merge_policies

_SOURCE = """
    .text
    main:
        li   r10, 3
    outer:
        li   r11, 3
    inner:
        bne  r2, r12, else_arm
    then_arm:
        addi r3, r3, 1
        j    join1
    else_arm:
        addi r3, r3, 2
    join1:
        bgez r4, join2
        sub  r4, r0, r4
    join2:
        addi r11, r11, -1
        bne  r11, r0, inner
    after_inner:
        addi r10, r10, -1
        bne  r10, r0, outer
    after_outer:
        jal  helper
    after_call:
        halt
    helper:
        jr ra
"""


@pytest.fixture()
def analysis():
    program = assemble(_SOURCE)
    cfgs = build_program_cfgs(program)
    return program, SpawnAnalysis(cfgs)


def test_postdoms_policy_has_all_categories(analysis):
    program, spawn_analysis = analysis
    policy = spawn_analysis.policy("postdoms")
    assert policy.categories() == {
        SpawnCategory.HAMMOCK,
        SpawnCategory.LOOP_FALL_THROUGH,
        SpawnCategory.PROCEDURE_FALL_THROUGH,
    }
    assert len(policy) == 5


def test_individual_policies_partition_postdoms(analysis):
    _, spawn_analysis = analysis
    postdoms = spawn_analysis.policy("postdoms")
    total = sum(
        len(spawn_analysis.policy(spec))
        for spec in ("loopFT", "procFT", "hammock", "other")
    )
    assert total == len(postdoms)


def test_exclusion_policy_drops_one_category(analysis):
    _, spawn_analysis = analysis
    policy = spawn_analysis.policy("postdoms-hammock")
    assert SpawnCategory.HAMMOCK not in policy.categories()
    assert len(policy) == len(spawn_analysis.policy("postdoms")) - len(
        spawn_analysis.policy("hammock")
    )


def test_loop_policy_spawns_latch_from_header(analysis):
    program, spawn_analysis = analysis
    policy = spawn_analysis.policy("loop")
    assert len(policy) == 2
    # Inner loop: trigger at the header (the 'inner' block), spawning the
    # latch block (join2, which ends in the back-edge branch).
    inner_point = policy.spawn_for(program.address_of("inner"))
    assert inner_point is not None
    assert inner_point.spawn_pc == program.address_of("join2")
    outer_point = policy.spawn_for(program.address_of("outer"))
    assert outer_point is not None
    assert outer_point.spawn_pc == program.address_of("after_inner")


def test_combination_policy(analysis):
    program, spawn_analysis = analysis
    policy = spawn_analysis.policy("loop+loopFT")
    categories = policy.categories()
    assert SpawnCategory.LOOP in categories
    assert SpawnCategory.LOOP_FALL_THROUGH in categories
    assert SpawnCategory.HAMMOCK not in categories


def test_trigger_conflicts_resolved_by_spec_order(analysis):
    program, spawn_analysis = analysis
    # The 'inner' block starts with its hammock branch, so the loop
    # trigger (header start) collides with the hammock trigger.
    loop_first = spawn_analysis.policy("loop+hammock")
    point = loop_first.spawn_for(program.address_of("inner"))
    assert point.category == SpawnCategory.LOOP
    hammock_first = spawn_analysis.policy("hammock+loop")
    point = hammock_first.spawn_for(program.address_of("inner"))
    assert point.category == SpawnCategory.HAMMOCK


def test_unknown_spec_raises(analysis):
    _, spawn_analysis = analysis
    with pytest.raises(ConfigurationError):
        spawn_analysis.policy("bogus")
    with pytest.raises(ConfigurationError):
        spawn_analysis.policy("postdoms-bogus")


def test_empty_policy(analysis):
    _, spawn_analysis = analysis
    policy = spawn_analysis.empty_policy()
    assert len(policy) == 0
    assert policy.spawn_for(0x9000) is None


def test_merge_policies(analysis):
    _, spawn_analysis = analysis
    merged = merge_policies(
        "merged",
        spawn_analysis.policy("hammock"),
        spawn_analysis.policy("procFT"),
    )
    assert len(merged) == len(spawn_analysis.policy("hammock")) + len(
        spawn_analysis.policy("procFT")
    )


def test_single_block_self_loop_spawn():
    source = """
        .text
        spin:
            addi r1, r1, -1
            bne  r1, r0, spin
            halt
    """
    program = assemble(source)
    spawn_analysis = SpawnAnalysis(build_program_cfgs(program))
    policy = spawn_analysis.policy("loop")
    assert len(policy) == 1
    point = policy.points[0]
    # Degenerate single-block loop: the spawn target is the block itself.
    assert point.spawn_pc == program.address_of("spin")
    assert point.category == SpawnCategory.LOOP
